//! Semi-supervised learning by self-training.
//!
//! The paper's Fig. 1 taxonomy includes the semi-supervised case: "some
//! (usually much fewer) samples are with labels and others have no
//! label" — the everyday situation in EDA, where labels cost simulation
//! or silicon time. Self-training wraps any probabilistic classifier:
//! fit on the labeled seed, label the unlabeled samples the model is
//! most confident about, refit, repeat.

use serde::{Deserialize, Serialize};

use crate::nbayes::GaussianNb;
use crate::LearnError;

/// Parameters for self-training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfTrainParams {
    /// Posterior confidence required to adopt a pseudo-label.
    pub confidence: f64,
    /// Maximum fit/label rounds.
    pub max_rounds: usize,
}

impl Default for SelfTrainParams {
    fn default() -> Self {
        SelfTrainParams { confidence: 0.95, max_rounds: 10 }
    }
}

/// A self-trained Gaussian-naive-Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfTrainedNb {
    model: GaussianNb,
    /// Pseudo-labels adopted per unlabeled sample (`None` = never
    /// confident enough).
    pseudo_labels: Vec<Option<i32>>,
    rounds: usize,
}

impl SelfTrainedNb {
    /// Fits on labels of `Option<i32>` — `Some` for the seed, `None` for
    /// unlabeled samples (the paper's `Target::Partial` shape).
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] if no labeled seed exists or shapes
    /// disagree.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Option<i32>],
        params: SelfTrainParams,
    ) -> Result<Self, LearnError> {
        if x.len() != y.len() {
            return Err(LearnError::InvalidInput(format!(
                "{} samples but {} labels",
                x.len(),
                y.len()
            )));
        }
        if !y.iter().any(Option::is_some) {
            return Err(LearnError::InvalidInput(
                "self-training needs at least one labeled sample".into(),
            ));
        }
        let mut working: Vec<Option<i32>> = y.to_vec();
        let mut model = Self::fit_on(x, &working)?;
        let mut rounds = 0;
        for _ in 0..params.max_rounds {
            rounds += 1;
            let mut adopted = 0;
            for (i, label) in working.iter_mut().enumerate() {
                if label.is_some() {
                    continue;
                }
                let posterior = model.predict_proba(&x[i]);
                if let Some(&(l, p)) =
                    posterior.iter().max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite posterior"))
                {
                    if p >= params.confidence {
                        *label = Some(l);
                        adopted += 1;
                    }
                }
            }
            if adopted == 0 {
                break;
            }
            model = Self::fit_on(x, &working)?;
        }
        let pseudo_labels = working
            .iter()
            .zip(y)
            .map(|(&w, &orig)| if orig.is_some() { None } else { w })
            .collect();
        Ok(SelfTrainedNb { model, pseudo_labels, rounds })
    }

    fn fit_on(x: &[Vec<f64>], y: &[Option<i32>]) -> Result<GaussianNb, LearnError> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (xi, &yi) in x.iter().zip(y) {
            if let Some(l) = yi {
                xs.push(xi.clone());
                ys.push(l);
            }
        }
        GaussianNb::fit(&xs, &ys)
    }

    /// Predicts a label.
    pub fn predict(&self, x: &[f64]) -> i32 {
        self.model.predict(x)
    }

    /// The pseudo-labels adopted for originally-unlabeled samples
    /// (aligned with the training input; `None` where never confident).
    pub fn pseudo_labels(&self) -> &[Option<i32>] {
        &self.pseudo_labels
    }

    /// Self-training rounds performed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two blobs; only 2 labeled samples per blob, 50 unlabeled.
    fn blob_data(seed: u64) -> (Vec<Vec<f64>>, Vec<Option<i32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..52 {
            let n0 = edm_linalg::sample::standard_normal(&mut rng) * 0.4;
            let n1 = edm_linalg::sample::standard_normal(&mut rng) * 0.4;
            x.push(vec![n0, n1]);
            y.push(if i < 2 { Some(0) } else { None });
            let n0 = edm_linalg::sample::standard_normal(&mut rng) * 0.4;
            let n1 = edm_linalg::sample::standard_normal(&mut rng) * 0.4;
            x.push(vec![4.0 + n0, 4.0 + n1]);
            y.push(if i < 2 { Some(1) } else { None });
        }
        (x, y)
    }

    #[test]
    fn learns_from_tiny_seed_plus_unlabeled() {
        let (x, y) = blob_data(1);
        let model = SelfTrainedNb::fit(&x, &y, SelfTrainParams::default()).unwrap();
        assert_eq!(model.predict(&[0.1, -0.2]), 0);
        assert_eq!(model.predict(&[4.1, 3.9]), 1);
        // most unlabeled samples received pseudo-labels
        let adopted = model.pseudo_labels().iter().filter(|l| l.is_some()).count();
        assert!(adopted > 80, "adopted only {adopted}");
    }

    #[test]
    fn pseudo_labels_agree_with_blob_membership() {
        let (x, y) = blob_data(2);
        let model = SelfTrainedNb::fit(&x, &y, SelfTrainParams::default()).unwrap();
        let mut wrong = 0;
        for (xi, pl) in x.iter().zip(model.pseudo_labels()) {
            if let Some(l) = pl {
                let truth = i32::from(xi[0] > 2.0);
                if *l != truth {
                    wrong += 1;
                }
            }
        }
        assert!(wrong <= 2, "{wrong} wrong pseudo-labels");
    }

    #[test]
    fn strict_confidence_adopts_nothing_near_the_boundary() {
        // One unlabeled point exactly symmetric between the classes, so
        // the posterior is 0.5 regardless of variance.
        let x =
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![3.0, 3.0], vec![4.0, 4.0], vec![2.0, 2.0]];
        let y = vec![Some(0), Some(0), Some(1), Some(1), None];
        let model =
            SelfTrainedNb::fit(&x, &y, SelfTrainParams { confidence: 0.999999, max_rounds: 5 })
                .unwrap();
        assert_eq!(model.pseudo_labels()[4], None);
    }

    #[test]
    fn requires_a_seed() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![None, None];
        assert!(SelfTrainedNb::fit(&x, &y, SelfTrainParams::default()).is_err());
    }
}
