//! k-nearest-neighbor classification and regression — the paper's first
//! "basic idea" (§2.1, Fig. 2): infer a point's label from the majority
//! of the points around it.

use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

fn k_nearest(train: &[Vec<f64>], x: &[f64], k: usize) -> Vec<(f64, usize)> {
    let mut d: Vec<(f64, usize)> =
        train.iter().enumerate().map(|(i, t)| (edm_linalg::sq_dist(t, x), i)).collect();
    d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    d.truncate(k);
    d
}

/// A k-NN classifier (majority vote; distance-weighted vote optional).
///
/// # Example
///
/// ```
/// use edm_learn::knn::KnnClassifier;
///
/// let x = vec![vec![0.0], vec![0.1], vec![1.0], vec![1.1]];
/// let y = vec![0, 0, 1, 1];
/// let m = KnnClassifier::fit(3, &x, &y)?;
/// assert_eq!(m.predict(&[0.05]), 0);
/// assert_eq!(m.predict(&[1.05]), 1);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<i32>,
    weighted: bool,
}

impl KnnClassifier {
    /// Stores the training data ("training" is memorization for k-NN).
    ///
    /// Borrows the samples like every other `fit` in the workspace and
    /// clones them internally — k-NN memorizes its training set.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on empty/ragged/mismatched input;
    /// [`LearnError::InvalidParameter`] if `k == 0`.
    pub fn fit(k: usize, x: &[Vec<f64>], y: &[i32]) -> Result<Self, LearnError> {
        if k == 0 {
            return Err(LearnError::InvalidParameter {
                name: "k",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        check_xy(x, y.len())?;
        Ok(KnnClassifier { k, x: x.to_vec(), y: y.to_vec(), weighted: false })
    }

    /// Consuming variant of [`KnnClassifier::fit`], kept for callers of
    /// the pre-`edm::Predictor` signature.
    ///
    /// # Errors
    ///
    /// As for [`KnnClassifier::fit`].
    #[doc(hidden)]
    #[deprecated(since = "0.1.0", note = "use `fit(k, &x, &y)`, which borrows its input")]
    pub fn fit_owned(k: usize, x: Vec<Vec<f64>>, y: Vec<i32>) -> Result<Self, LearnError> {
        Self::fit(k, &x, &y)
    }

    /// Reassembles a classifier from persisted parts — the inverse of
    /// the accessors below, used by `edm::persist`.
    pub fn from_parts(k: usize, x: Vec<Vec<f64>>, y: Vec<i32>, weighted: bool) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(x.len(), y.len(), "one label per sample");
        KnnClassifier { k, x, y, weighted }
    }

    /// The neighbor count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The memorized training samples.
    pub fn training_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The memorized training labels.
    pub fn training_y(&self) -> &[i32] {
        &self.y
    }

    /// Whether inverse-distance weighting is enabled.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Switches to inverse-distance-weighted voting — one way of
    /// "defining majority", the trick the paper notes nearest-neighbor
    /// methods hinge on.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Predicts the label of `x` (ties break toward the smaller label).
    pub fn predict(&self, x: &[f64]) -> i32 {
        let nn = k_nearest(&self.x, x, self.k);
        let mut votes: Vec<(i32, f64)> = Vec::new();
        for &(dist, i) in &nn {
            let w = if self.weighted { 1.0 / (dist.sqrt() + 1e-12) } else { 1.0 };
            match votes.iter_mut().find(|(l, _)| *l == self.y[i]) {
                Some((_, v)) => *v += w,
                None => votes.push((self.y[i], w)),
            }
        }
        votes.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite votes").then(a.0.cmp(&b.0)));
        votes[0].0
    }

    /// Predicts a batch (parallel; bitwise identical to mapping
    /// [`KnnClassifier::predict`] over `xs`).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<i32> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }

    /// Dimensionality of the memorized training samples.
    pub fn n_features(&self) -> usize {
        self.x[0].len()
    }
}

/// A k-NN regressor (mean of the k nearest targets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl KnnRegressor {
    /// Stores the training data (borrowing, cloning internally — see
    /// [`KnnClassifier::fit`]).
    ///
    /// # Errors
    ///
    /// As for [`KnnClassifier::fit`].
    pub fn fit(k: usize, x: &[Vec<f64>], y: &[f64]) -> Result<Self, LearnError> {
        if k == 0 {
            return Err(LearnError::InvalidParameter {
                name: "k",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        check_xy(x, y.len())?;
        Ok(KnnRegressor { k, x: x.to_vec(), y: y.to_vec() })
    }

    /// Consuming variant of [`KnnRegressor::fit`], kept for callers of
    /// the pre-`edm::Predictor` signature.
    ///
    /// # Errors
    ///
    /// As for [`KnnRegressor::fit`].
    #[doc(hidden)]
    #[deprecated(since = "0.1.0", note = "use `fit(k, &x, &y)`, which borrows its input")]
    pub fn fit_owned(k: usize, x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, LearnError> {
        Self::fit(k, &x, &y)
    }

    /// Reassembles a regressor from persisted parts — the inverse of
    /// the accessors below, used by `edm::persist`.
    pub fn from_parts(k: usize, x: Vec<Vec<f64>>, y: Vec<f64>) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(x.len(), y.len(), "one target per sample");
        KnnRegressor { k, x, y }
    }

    /// The neighbor count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The memorized training samples.
    pub fn training_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The memorized training targets.
    pub fn training_y(&self) -> &[f64] {
        &self.y
    }

    /// Predicts the mean target of the k nearest neighbors.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let nn = k_nearest(&self.x, x, self.k);
        let s: f64 = nn.iter().map(|&(_, i)| self.y[i]).sum();
        s / nn.len() as f64
    }

    /// Predicts a batch (parallel; bitwise identical to mapping
    /// [`KnnRegressor::predict`] over `xs`).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }

    /// Dimensionality of the memorized training samples.
    pub fn n_features(&self) -> usize {
        self.x[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let m = KnnClassifier::fit(1, &x, &[7, 9]).unwrap();
        assert_eq!(m.predict(&x[0]), 7);
        assert_eq!(m.predict(&x[1]), 9);
    }

    #[test]
    fn majority_beats_single_near_point() {
        // Two far class-1 points, one near class-0 point; k=3 majority is 1.
        let x = vec![vec![0.1], vec![2.0], vec![2.1]];
        let y = vec![0, 1, 1];
        let m = KnnClassifier::fit(3, &x, &y).unwrap();
        assert_eq!(m.predict(&[0.0]), 1);
        // but distance weighting flips it back
        let x = vec![vec![0.1], vec![2.0], vec![2.1]];
        let m = KnnClassifier::fit(3, &x, &[0, 1, 1]).unwrap().weighted();
        assert_eq!(m.predict(&[0.0]), 0);
    }

    #[test]
    fn regressor_averages() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0]];
        let y = vec![2.0, 4.0, 100.0];
        let m = KnnRegressor::fit(2, &x, &y).unwrap();
        assert!((m.predict(&[0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_data_uses_all() {
        let m = KnnRegressor::fit(10, &[vec![0.0], vec![1.0]], &[1.0, 3.0]).unwrap();
        assert!((m.predict(&[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_k_rejected() {
        assert!(matches!(
            KnnClassifier::fit(0, &[vec![0.0]], &[0]),
            Err(LearnError::InvalidParameter { name: "k", .. })
        ));
    }
}
