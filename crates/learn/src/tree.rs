//! CART decision trees (paper ref \[7\]) — an assumed model that is "not
//! an equation" (§2.1): axis-aligned threshold splits grown greedily by
//! Gini impurity (classification) or variance reduction (regression).

use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

/// Growth limits for tree induction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples allowed in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 12, min_samples_split: 2, min_samples_leaf: 1 }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        /// Majority label (classification) or mean target (regression).
        value: f64,
        /// Class histogram for probability output; empty for regression.
        counts: Vec<(i32, usize)>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// One tree node in the pre-order flattened form used by model
/// persistence: a [`FlatNode::Split`] is always followed by its entire
/// left subtree, then its entire right subtree. This keeps the
/// recursive [`Node`] type private while letting `edm::persist` write
/// trees as a flat record stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatNode {
    /// A leaf carrying the predicted value and the class histogram
    /// (empty for regression trees).
    Leaf {
        /// Majority label (classification) or mean target (regression).
        value: f64,
        /// Class histogram as `(label, count)` pairs.
        counts: Vec<(i32, usize)>,
    },
    /// An internal split on `feature <= threshold`.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (left iff `x[feature] <= threshold`).
        threshold: f64,
    },
}

impl Node {
    fn flatten_into(&self, out: &mut Vec<FlatNode>) {
        match self {
            Node::Leaf { value, counts } => {
                out.push(FlatNode::Leaf { value: *value, counts: counts.clone() });
            }
            Node::Split { feature, threshold, left, right } => {
                out.push(FlatNode::Split { feature: *feature, threshold: *threshold });
                left.flatten_into(out);
                right.flatten_into(out);
            }
        }
    }

    fn from_flat(nodes: &[FlatNode], pos: &mut usize) -> Result<Node, LearnError> {
        let node = nodes
            .get(*pos)
            .ok_or_else(|| LearnError::InvalidInput("flattened tree ends mid-subtree".into()))?;
        *pos += 1;
        match node {
            FlatNode::Leaf { value, counts } => {
                Ok(Node::Leaf { value: *value, counts: counts.clone() })
            }
            FlatNode::Split { feature, threshold } => {
                let left = Box::new(Node::from_flat(nodes, pos)?);
                let right = Box::new(Node::from_flat(nodes, pos)?);
                Ok(Node::Split { feature: *feature, threshold: *threshold, left, right })
            }
        }
    }

    fn descend(&self, x: &[f64]) -> &Node {
        match self {
            Node::Leaf { .. } => self,
            Node::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.descend(x)
                } else {
                    right.descend(x)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }
}

fn gini(labels: &[i32], idx: &[usize]) -> f64 {
    let mut counts: Vec<(i32, usize)> = Vec::new();
    for &i in idx {
        match counts.iter_mut().find(|(l, _)| *l == labels[i]) {
            Some((_, c)) => *c += 1,
            None => counts.push((labels[i], 1)),
        }
    }
    let n = idx.len() as f64;
    1.0 - counts.iter().map(|&(_, c)| (c as f64 / n).powi(2)).sum::<f64>()
}

fn variance_of(values: &[f64], idx: &[usize]) -> f64 {
    if idx.len() < 2 {
        return 0.0;
    }
    let mean = idx.iter().map(|&i| values[i]).sum::<f64>() / idx.len() as f64;
    idx.iter().map(|&i| (values[i] - mean).powi(2)).sum::<f64>() / idx.len() as f64
}

/// Finds the best (feature, threshold) over the candidate features by
/// minimizing weighted child impurity. Returns `None` if no split
/// improves on the parent.
fn best_split(
    x: &[Vec<f64>],
    idx: &[usize],
    impurity: &dyn Fn(&[usize]) -> f64,
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let parent = impurity(idx);
    if parent <= 1e-12 {
        return None;
    }
    let n = idx.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None;
    for &f in features {
        // Candidate thresholds: midpoints between consecutive distinct values.
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        for w in vals.windows(2) {
            let thr = 0.5 * (w[0] + w[1]);
            let left: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] <= thr).collect();
            if left.len() < min_leaf || idx.len() - left.len() < min_leaf {
                continue;
            }
            let right: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] > thr).collect();
            let score =
                left.len() as f64 / n * impurity(&left) + right.len() as f64 / n * impurity(&right);
            // Ties with the parent are allowed (XOR-style targets need a
            // non-improving first cut); recursion still terminates because
            // both children are strictly smaller.
            if score <= parent + 1e-12 && best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, f, thr));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

/// Leaf payload: representative value plus (for classification) the
/// class histogram.
type LeafValue = (f64, Vec<(i32, usize)>);

fn grow(
    x: &[Vec<f64>],
    idx: &[usize],
    depth: usize,
    params: &TreeParams,
    impurity: &dyn Fn(&[usize]) -> f64,
    leaf_value: &dyn Fn(&[usize]) -> LeafValue,
    features: &[usize],
) -> Node {
    if depth >= params.max_depth || idx.len() < params.min_samples_split {
        let (value, counts) = leaf_value(idx);
        return Node::Leaf { value, counts };
    }
    match best_split(x, idx, impurity, features, params.min_samples_leaf) {
        None => {
            let (value, counts) = leaf_value(idx);
            Node::Leaf { value, counts }
        }
        Some((f, thr)) => {
            let left_idx: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] <= thr).collect();
            let right_idx: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] > thr).collect();
            Node::Split {
                feature: f,
                threshold: thr,
                left: Box::new(grow(
                    x,
                    &left_idx,
                    depth + 1,
                    params,
                    impurity,
                    leaf_value,
                    features,
                )),
                right: Box::new(grow(
                    x,
                    &right_idx,
                    depth + 1,
                    params,
                    impurity,
                    leaf_value,
                    features,
                )),
            }
        }
    }
}

/// A CART classification tree.
///
/// # Example
///
/// ```
/// use edm_learn::tree::{DecisionTreeClassifier, TreeParams};
///
/// let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![0, 0, 1, 1];
/// let m = DecisionTreeClassifier::fit(&x, &y, TreeParams::default())?;
/// assert_eq!(m.predict(&[0.5]), 0);
/// assert_eq!(m.predict(&[2.5]), 1);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    root: Node,
}

impl DecisionTreeClassifier {
    /// Grows a tree on integer-labeled data.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent or empty input.
    pub fn fit(x: &[Vec<f64>], y: &[i32], params: TreeParams) -> Result<Self, LearnError> {
        Self::fit_on_features(x, y, params, None)
    }

    /// Grows a tree restricted to a feature subset (used by random
    /// forests); `None` means all features.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent or empty input.
    pub fn fit_on_features(
        x: &[Vec<f64>],
        y: &[i32],
        params: TreeParams,
        features: Option<&[usize]>,
    ) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        let all: Vec<usize> = (0..d).collect();
        let features = features.unwrap_or(&all);
        let idx: Vec<usize> = (0..x.len()).collect();
        let impurity = |idx: &[usize]| gini(y, idx);
        let leaf_value = |idx: &[usize]| {
            let mut counts: Vec<(i32, usize)> = Vec::new();
            for &i in idx {
                match counts.iter_mut().find(|(l, _)| *l == y[i]) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((y[i], 1)),
                }
            }
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            (counts[0].0 as f64, counts)
        };
        Ok(DecisionTreeClassifier {
            root: grow(x, &idx, 0, &params, &impurity, &leaf_value, features),
        })
    }

    /// Predicts the majority label of the reached leaf.
    pub fn predict(&self, x: &[f64]) -> i32 {
        match self.root.descend(x) {
            Node::Leaf { value, .. } => *value as i32,
            Node::Split { .. } => unreachable!("descend returns leaves"),
        }
    }

    /// Leaf class proportions for `x` as `(label, fraction)`.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<(i32, f64)> {
        match self.root.descend(x) {
            Node::Leaf { counts, .. } => {
                let total: usize = counts.iter().map(|&(_, c)| c).sum();
                counts.iter().map(|&(l, c)| (l, c as f64 / total.max(1) as f64)).collect()
            }
            Node::Split { .. } => unreachable!("descend returns leaves"),
        }
    }

    /// Tree depth (root = 0).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves — a natural complexity measure for the Fig. 5
    /// story applied to trees.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }

    /// The tree in pre-order flattened form (see [`FlatNode`]) — the
    /// representation `edm::persist` writes to disk.
    pub fn flatten(&self) -> Vec<FlatNode> {
        let mut out = Vec::new();
        self.root.flatten_into(&mut out);
        out
    }

    /// Rebuilds a tree from its pre-order flattened form. Splits and
    /// leaves are restored verbatim, so the rebuilt tree predicts
    /// bitwise identically.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] if the node stream is truncated or
    /// has trailing nodes.
    pub fn from_flat(nodes: &[FlatNode]) -> Result<Self, LearnError> {
        let mut pos = 0;
        let root = Node::from_flat(nodes, &mut pos)?;
        if pos != nodes.len() {
            return Err(LearnError::InvalidInput(format!(
                "flattened tree has {} trailing nodes",
                nodes.len() - pos
            )));
        }
        Ok(DecisionTreeClassifier { root })
    }
}

/// A CART regression tree (variance-reduction splits, mean-value leaves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    root: Node,
}

impl DecisionTreeRegressor {
    /// Grows a tree on continuous targets.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent or empty input.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: TreeParams) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        let features: Vec<usize> = (0..d).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let impurity = |idx: &[usize]| variance_of(y, idx);
        let leaf_value = |idx: &[usize]| {
            let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64;
            (mean, Vec::new())
        };
        Ok(DecisionTreeRegressor {
            root: grow(x, &idx, 0, &params, &impurity, &leaf_value, &features),
        })
    }

    /// Predicts the mean target of the reached leaf.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self.root.descend(x) {
            Node::Leaf { value, .. } => *value,
            Node::Split { .. } => unreachable!("descend returns leaves"),
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_fits_xor() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let y = vec![0, 0, 1, 1];
        let m = DecisionTreeClassifier::fit(&x, &y, TreeParams::default()).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
        assert!(m.depth() >= 2, "xor needs at least two levels");
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5, 5, 5];
        let m = DecisionTreeClassifier::fit(&x, &y, TreeParams::default()).unwrap();
        assert_eq!(m.n_leaves(), 1);
        assert_eq!(m.predict(&[99.0]), 5);
    }

    #[test]
    fn depth_limit_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<i32> = (0..64).map(|i| i % 2).collect();
        let m =
            DecisionTreeClassifier::fit(&x, &y, TreeParams { max_depth: 3, ..Default::default() })
                .unwrap();
        assert!(m.depth() <= 3);
        assert!(m.n_leaves() <= 8);
    }

    #[test]
    fn proba_reflects_leaf_mixture() {
        // min_samples_leaf = 3 forces the right leaf to keep the stray 0.
        let x: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let y = vec![0, 0, 0, 1, 1, 0];
        let m = DecisionTreeClassifier::fit(
            &x,
            &y,
            TreeParams { max_depth: 1, min_samples_leaf: 3, ..Default::default() },
        )
        .unwrap();
        let p = m.predict_proba(&[10.0]);
        let p1 = p.iter().find(|&&(l, _)| l == 1).map(|&(_, v)| v).unwrap_or(0.0);
        assert!((p1 - 2.0 / 3.0).abs() < 1e-12, "got {p:?}");
    }

    #[test]
    fn regressor_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let m = DecisionTreeRegressor::fit(&x, &y, TreeParams::default()).unwrap();
        assert!((m.predict(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((m.predict(&[15.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_prevents_slivers() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<i32> = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let m = DecisionTreeClassifier::fit(
            &x,
            &y,
            TreeParams { min_samples_leaf: 3, ..Default::default() },
        )
        .unwrap();
        // The lone positive cannot be isolated into its own leaf.
        assert_eq!(m.predict(&[9.0]), 0);
    }
}
