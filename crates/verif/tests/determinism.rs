//! Regression tests pinning cross-process determinism of the LSU
//! simulator (the fixed unordered-iteration site in `lsu.rs`).
//!
//! The simulated memory image is kept in a `BTreeMap` and digested into
//! `SimOutcome::memory_fingerprint` in iteration order; with a
//! `HashMap` that digest would follow the per-process hash-seeded
//! order and differ between runs. The test simulates seeded random
//! programs in two child processes launched with different
//! `RUST_HASH_SEED` environments and asserts the fingerprints match.

use edm_verif::lsu::LsuSimulator;
use edm_verif::template::TestTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHILD_VAR: &str = "EDM_DETERMINISM_CHILD";

fn fnv1a(fp: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(fp, |fp, &b| (fp ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// Outcomes of seeded template programs, folded order-sensitively.
fn fingerprint() -> u64 {
    let template = TestTemplate::default();
    let sim = LsuSimulator::default_config();
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for seed in 0..16u64 {
        let program = template.generate(&mut StdRng::seed_from_u64(seed));
        let out = sim.simulate(&program);
        fp = fnv1a(fp, &out.cycles.to_le_bytes());
        fp = fnv1a(fp, &(out.instructions_executed as u64).to_le_bytes());
        fp = fnv1a(fp, &out.memory_fingerprint.to_le_bytes());
    }
    fp
}

fn child_fingerprint(test_name: &str, seed: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([test_name, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_VAR, "1")
        .env("RUST_HASH_SEED", seed)
        .output()
        .expect("spawn child test process");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the marker shares a line with libtest's own
    // "test ... ok" output, so search within lines.
    stdout
        .split("fingerprint=")
        .nth(1)
        .map(|rest| rest.chars().take_while(char::is_ascii_hexdigit).collect::<String>())
        .unwrap_or_else(|| panic!("no fingerprint in child output: {stdout}"))
}

#[test]
fn lsu_outcome_bitwise_stable_across_processes() {
    if std::env::var(CHILD_VAR).is_ok() {
        println!("fingerprint={:016x}", fingerprint());
        return;
    }
    let first = child_fingerprint("lsu_outcome_bitwise_stable_across_processes", "1");
    let second = child_fingerprint("lsu_outcome_bitwise_stable_across_processes", "2");
    assert_eq!(first, second, "LSU outcome varies across processes");
    assert_eq!(first, format!("{:016x}", fingerprint()), "parent disagrees with children");
}

/// The memory fingerprint is part of outcome equality and repeats
/// within a process.
#[test]
fn memory_fingerprint_repeatable_in_process() {
    let template = TestTemplate::default();
    let sim = LsuSimulator::default_config();
    let program = template.generate(&mut StdRng::seed_from_u64(7));
    let first = sim.simulate(&program);
    for _ in 0..4 {
        let again = sim.simulate(&program);
        assert_eq!(again, first);
        assert_eq!(again.memory_fingerprint, first.memory_fingerprint);
    }
}
