//! Assembly test programs: the *samples* of the verification mining
//! flows. A program is simultaneously
//!
//! * a token sequence (for the spectrum kernel of the Fig. 7 novelty
//!   filter),
//! * a named feature vector (for the CN2-SD rule learning of Table 1),
//! * and an executable input to the LSU simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::isa::Instruction;

/// An assembly test program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Wraps an instruction sequence.
    pub fn new(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Opcode-class token stream for sequence kernels.
    pub fn tokens(&self) -> Vec<u8> {
        self.instructions.iter().map(Instruction::token).collect()
    }

    /// Named features for rule learning. Order matches
    /// [`Program::feature_names`].
    ///
    /// The features encode exactly the template knobs an engineer can
    /// act on (the paper's "actionable knowledge" requirement): opcode
    /// mix, dependency structure, address locality, alignment.
    pub fn features(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        let mut n_load = 0.0_f64;
        let mut n_store = 0.0;
        let mut n_byte_mem = 0.0;
        let mut n_alu = 0.0;
        let mut n_fence = 0.0;
        let mut max_consec_stores = 0usize;
        let mut consec_stores = 0usize;
        let mut max_consec_mem = 0usize;
        let mut consec_mem = 0usize;
        let mut base_reg_reuse = 0.0;
        let mut small_offsets = 0.0;
        let mut unaligned_imm = 0.0;
        let mut last_mem_base: Option<(u8, i32)> = None;
        let mut same_base_near = 0.0;
        for inst in &self.instructions {
            if inst.is_memory() {
                consec_mem += 1;
                max_consec_mem = max_consec_mem.max(consec_mem);
            } else {
                consec_mem = 0;
            }
            match inst {
                Instruction::Load { rs1, imm, width, .. } => {
                    n_load += 1.0;
                    if width.bytes() < 4 {
                        n_byte_mem += 1.0;
                    }
                    if imm.abs() < 64 {
                        small_offsets += 1.0;
                    }
                    if imm.rem_euclid(width.bytes() as i32) != 0 {
                        unaligned_imm += 1.0;
                    }
                    if let Some((b, i)) = last_mem_base {
                        if b == rs1.0 {
                            base_reg_reuse += 1.0;
                            if (i - imm).abs() < 64 {
                                same_base_near += 1.0;
                            }
                        }
                    }
                    last_mem_base = Some((rs1.0, *imm));
                    consec_stores = 0;
                }
                Instruction::Store { rs1, imm, width, .. } => {
                    n_store += 1.0;
                    if width.bytes() < 4 {
                        n_byte_mem += 1.0;
                    }
                    if imm.abs() < 64 {
                        small_offsets += 1.0;
                    }
                    if imm.rem_euclid(width.bytes() as i32) != 0 {
                        unaligned_imm += 1.0;
                    }
                    if let Some((b, i)) = last_mem_base {
                        if b == rs1.0 {
                            base_reg_reuse += 1.0;
                            if (i - imm).abs() < 64 {
                                same_base_near += 1.0;
                            }
                        }
                    }
                    last_mem_base = Some((rs1.0, *imm));
                    consec_stores += 1;
                    max_consec_stores = max_consec_stores.max(consec_stores);
                }
                Instruction::Alu { .. } | Instruction::AddImm { .. } => {
                    n_alu += 1.0;
                    consec_stores = 0;
                }
                Instruction::Fence => {
                    n_fence += 1.0;
                    consec_stores = 0;
                }
                _ => {
                    consec_stores = 0;
                }
            }
        }
        let n_mem = (n_load + n_store).max(1.0);
        vec![
            n_load / n,
            n_store / n,
            n_alu / n,
            n_fence / n,
            n_byte_mem / n_mem,
            max_consec_stores as f64,
            max_consec_mem as f64,
            base_reg_reuse / n_mem,
            same_base_near / n_mem,
            small_offsets / n_mem,
            unaligned_imm / n_mem,
            self.len() as f64,
        ]
    }

    /// Names for [`Program::features`], in order.
    pub fn feature_names() -> Vec<String> {
        [
            "load_frac",
            "store_frac",
            "alu_frac",
            "fence_frac",
            "subword_frac",
            "max_consec_stores",
            "max_consec_mem",
            "base_reuse_frac",
            "near_addr_frac",
            "small_offset_frac",
            "unaligned_frac",
            "length",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Reg, Width};

    fn program() -> Program {
        Program::new(vec![
            Instruction::AddImm { rd: Reg(1), rs1: Reg(0), imm: 256 },
            Instruction::Store { rs2: Reg(2), rs1: Reg(1), imm: 0, width: Width::Word },
            Instruction::Store { rs2: Reg(3), rs1: Reg(1), imm: 4, width: Width::Byte },
            Instruction::Load { rd: Reg(4), rs1: Reg(1), imm: 0, width: Width::Word },
            Instruction::Alu { op: AluOp::Add, rd: Reg(5), rs1: Reg(4), rs2: Reg(2) },
            Instruction::Fence,
        ])
    }

    #[test]
    fn tokens_match_instruction_count() {
        let p = program();
        assert_eq!(p.tokens().len(), p.len());
        assert_eq!(p.tokens()[1], 5); // sw
        assert_eq!(p.tokens()[2], 3); // sb
    }

    #[test]
    fn features_are_named_and_sized_consistently() {
        let p = program();
        assert_eq!(p.features().len(), Program::feature_names().len());
    }

    #[test]
    fn feature_values_reflect_structure() {
        let p = program();
        let f = p.features();
        let names = Program::feature_names();
        let get = |n: &str| f[names.iter().position(|x| x == n).unwrap()];
        assert!((get("store_frac") - 2.0 / 6.0).abs() < 1e-12);
        assert!((get("load_frac") - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(get("max_consec_stores"), 2.0);
        assert_eq!(get("length"), 6.0);
        // all three memory ops share base register r1
        assert!((get("base_reuse_frac") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_numbered_assembly() {
        let text = program().to_string();
        assert!(text.contains("0: addi r1, r0, 256"));
        assert!(text.contains("5: fence"));
    }

    #[test]
    fn empty_program_features_are_finite() {
        let p = Program::new(vec![]);
        assert!(p.is_empty());
        assert!(p.features().iter().all(|v| v.is_finite()));
    }
}
