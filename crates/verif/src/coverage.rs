//! Coverage points of the load-store unit — the `A0..A7` of the paper's
//! Table 1.
//!
//! Each point is a microarchitectural event; the substrate is tuned so
//! that `A0`/`A1` are common under any template while `A2..A7` require
//! specific operand/dependency distributions — exactly the structure the
//! template-refinement experiment needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of coverage points.
pub const NUM_POINTS: usize = 8;

/// A load-store-unit coverage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoveragePoint {
    /// A0 — cache hit.
    CacheHit,
    /// A1 — cache miss (fill from memory).
    CacheMiss,
    /// A2 — load fully forwarded from the store buffer.
    StoreForward,
    /// A3 — dirty line evicted by a conflicting fill.
    DirtyEviction,
    /// A4 — access crossing a cache-line boundary.
    UnalignedCross,
    /// A5 — store buffer filled to capacity.
    StoreBufferFull,
    /// A6 — load overlapping a buffered store of a different footprint
    /// (partial forward, forces a drain).
    PartialForward,
    /// A7 — a miss issued within two instructions of another miss
    /// (miss-under-miss window).
    MissBurst,
}

impl CoveragePoint {
    /// All points in `A0..A7` order.
    pub const ALL: [CoveragePoint; NUM_POINTS] = [
        CoveragePoint::CacheHit,
        CoveragePoint::CacheMiss,
        CoveragePoint::StoreForward,
        CoveragePoint::DirtyEviction,
        CoveragePoint::UnalignedCross,
        CoveragePoint::StoreBufferFull,
        CoveragePoint::PartialForward,
        CoveragePoint::MissBurst,
    ];

    /// Index `0..8` (the `k` of `Ak`).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("point is in ALL")
    }

    /// The paper-style short name `A0..A7`.
    pub fn short_name(self) -> String {
        format!("A{}", self.index())
    }
}

impl fmt::Display for CoveragePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let long = match self {
            CoveragePoint::CacheHit => "cache_hit",
            CoveragePoint::CacheMiss => "cache_miss",
            CoveragePoint::StoreForward => "store_forward",
            CoveragePoint::DirtyEviction => "dirty_eviction",
            CoveragePoint::UnalignedCross => "unaligned_cross",
            CoveragePoint::StoreBufferFull => "store_buffer_full",
            CoveragePoint::PartialForward => "partial_forward",
            CoveragePoint::MissBurst => "miss_burst",
        };
        write!(f, "{} ({long})", self.short_name())
    }
}

/// Hit counts per coverage point (the "# of cycles the coverage point
/// was hit" of Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMap {
    counts: [u64; NUM_POINTS],
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one hit.
    pub fn record(&mut self, point: CoveragePoint) {
        self.counts[point.index()] += 1;
    }

    /// Hit count for a point.
    pub fn count(&self, point: CoveragePoint) -> u64 {
        self.counts[point.index()]
    }

    /// Whether a point has been hit at least once.
    pub fn covered(&self, point: CoveragePoint) -> bool {
        self.count(point) > 0
    }

    /// Number of distinct points hit.
    pub fn n_covered(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total hits across all points.
    pub fn total_hits(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulates another map into this one.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Whether `other` hits any point this map has not hit — the novelty
    /// criterion "does this test add coverage".
    pub fn would_gain(&self, other: &CoverageMap) -> bool {
        self.counts.iter().zip(&other.counts).any(|(&mine, &theirs)| mine == 0 && theirs > 0)
    }

    /// Counts in `A0..A7` order.
    pub fn as_row(&self) -> [u64; NUM_POINTS] {
        self.counts
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "A{i}={c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_order() {
        for (i, p) in CoveragePoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.short_name(), format!("A{i}"));
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = CoverageMap::new();
        a.record(CoveragePoint::CacheHit);
        a.record(CoveragePoint::CacheHit);
        a.record(CoveragePoint::MissBurst);
        assert_eq!(a.count(CoveragePoint::CacheHit), 2);
        assert_eq!(a.n_covered(), 2);
        assert_eq!(a.total_hits(), 3);

        let mut b = CoverageMap::new();
        b.record(CoveragePoint::CacheHit);
        b.record(CoveragePoint::StoreForward);
        a.merge(&b);
        assert_eq!(a.count(CoveragePoint::CacheHit), 3);
        assert!(a.covered(CoveragePoint::StoreForward));
        assert_eq!(a.n_covered(), 3);
    }

    #[test]
    fn would_gain_detects_new_points_only() {
        let mut seen = CoverageMap::new();
        seen.record(CoveragePoint::CacheHit);
        let mut same = CoverageMap::new();
        same.record(CoveragePoint::CacheHit);
        same.record(CoveragePoint::CacheHit);
        assert!(!seen.would_gain(&same));
        let mut fresh = CoverageMap::new();
        fresh.record(CoveragePoint::DirtyEviction);
        assert!(seen.would_gain(&fresh));
    }

    #[test]
    fn display_is_compact() {
        let mut m = CoverageMap::new();
        m.record(CoveragePoint::CacheMiss);
        let s = m.to_string();
        assert!(s.starts_with("A0=0 A1=1"));
    }
}
