//! The mini RISC ISA: 16 registers, byte/half/word loads and stores,
//! ALU ops, conditional skips, and a memory fence.
//!
//! Deliberately small — the point is to exercise a load-store unit, not
//! to be a general CPU — but rich enough that operand distributions
//! (sizes, alignments, dependencies) create genuinely rare
//! microarchitectural events.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

/// An architectural register `r0..r15` (`r0` reads as zero and ignores
/// writes, RISC-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Creates a register id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 16`.
    pub fn new(id: u8) -> Self {
        assert!((id as usize) < NUM_REGS, "register id {id} out of range");
        Reg(id)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// Instruction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// `rd = mem[rs1 + imm]` with the given width.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        rs1: Reg,
        /// Signed byte offset.
        imm: i32,
        /// Access width.
        width: Width,
    },
    /// `mem[rs1 + imm] = rs2` with the given width.
    Store {
        /// Source (data) register.
        rs2: Reg,
        /// Base-address register.
        rs1: Reg,
        /// Signed byte offset.
        imm: i32,
        /// Access width.
        width: Width,
    },
    /// Register-register ALU operation `rd = rs1 <op> rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First operand register.
        rs1: Reg,
        /// Second operand register.
        rs2: Reg,
    },
    /// `rd = rs1 + imm` (also the idiom for loading small constants via
    /// `r0`).
    AddImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed immediate.
        imm: i32,
    },
    /// Skip the next instruction if `rs1 == rs2` (structured forward
    /// branch; keeps programs loop-free so simulation always terminates).
    SkipEq {
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
    },
    /// Skip the next instruction if `rs1 != rs2`.
    SkipNe {
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
    },
    /// Memory fence: drains the store buffer.
    Fence,
    /// No operation.
    Nop,
}

/// Register-register ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

impl Instruction {
    /// A compact opcode class id, used as the token alphabet for the
    /// spectrum kernel (paper Fig. 4: the kernel sees instruction-class
    /// sequences, not vectors).
    pub fn token(&self) -> u8 {
        match self {
            Instruction::Load { width: Width::Byte, .. } => 0,
            Instruction::Load { width: Width::Half, .. } => 1,
            Instruction::Load { width: Width::Word, .. } => 2,
            Instruction::Store { width: Width::Byte, .. } => 3,
            Instruction::Store { width: Width::Half, .. } => 4,
            Instruction::Store { width: Width::Word, .. } => 5,
            Instruction::Alu { op: AluOp::Add, .. } => 6,
            Instruction::Alu { op: AluOp::Sub, .. } => 7,
            Instruction::Alu { op: AluOp::And, .. } => 8,
            Instruction::Alu { op: AluOp::Or, .. } => 9,
            Instruction::Alu { op: AluOp::Xor, .. } => 10,
            Instruction::AddImm { .. } => 11,
            Instruction::SkipEq { .. } => 12,
            Instruction::SkipNe { .. } => 13,
            Instruction::Fence => 14,
            Instruction::Nop => 15,
        }
    }

    /// Whether this is a load or store.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::Store { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Load { rd, rs1, imm, width } => {
                let m = match width {
                    Width::Byte => "lb",
                    Width::Half => "lh",
                    Width::Word => "lw",
                };
                write!(f, "{m} {rd}, {imm}({rs1})")
            }
            Instruction::Store { rs2, rs1, imm, width } => {
                let m = match width {
                    Width::Byte => "sb",
                    Width::Half => "sh",
                    Width::Word => "sw",
                };
                write!(f, "{m} {rs2}, {imm}({rs1})")
            }
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instruction::AddImm { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instruction::SkipEq { rs1, rs2 } => write!(f, "skeq {rs1}, {rs2}"),
            Instruction::SkipNe { rs1, rs2 } => write!(f, "skne {rs1}, {rs2}"),
            Instruction::Fence => write!(f, "fence"),
            Instruction::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_distinct_per_class() {
        let insts = [
            Instruction::Load { rd: Reg(1), rs1: Reg(2), imm: 0, width: Width::Byte },
            Instruction::Load { rd: Reg(1), rs1: Reg(2), imm: 0, width: Width::Word },
            Instruction::Store { rs2: Reg(1), rs1: Reg(2), imm: 0, width: Width::Half },
            Instruction::Alu { op: AluOp::Xor, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) },
            Instruction::Fence,
            Instruction::Nop,
        ];
        let mut tokens: Vec<u8> = insts.iter().map(|i| i.token()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), insts.len());
    }

    #[test]
    fn token_ignores_operands() {
        let a = Instruction::Load { rd: Reg(1), rs1: Reg(2), imm: 8, width: Width::Word };
        let b = Instruction::Load { rd: Reg(9), rs1: Reg(0), imm: -4, width: Width::Word };
        assert_eq!(a.token(), b.token());
    }

    #[test]
    fn display_is_assembly_like() {
        let i = Instruction::Store { rs2: Reg(3), rs1: Reg(4), imm: 16, width: Width::Word };
        assert_eq!(i.to_string(), "sw r3, 16(r4)");
        let j = Instruction::AddImm { rd: Reg(5), rs1: Reg(0), imm: -2 };
        assert_eq!(j.to_string(), "addi r5, r0, -2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        let _ = Reg::new(16);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
    }
}
