//! The load-store-unit simulator: a direct-mapped write-back cache plus
//! a small forwarding store buffer, executed functionally over a
//! [`Program`] with cycle accounting and coverage recording.
//!
//! This is the "simulation" whose server-farm hours the Fig. 7 flow
//! saves: `cycles` is the cost proxy, [`CoverageMap`] the value produced.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::coverage::{CoverageMap, CoveragePoint};
use crate::isa::{AluOp, Instruction, NUM_REGS};
use crate::program::Program;

/// Cache and pipeline geometry plus cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LsuConfig {
    /// Number of direct-mapped sets.
    pub n_sets: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Store-buffer depth (entries).
    pub store_buffer_depth: usize,
    /// Cycles charged per cache miss.
    pub miss_penalty: u64,
    /// Extra cycles for writing back a dirty victim.
    pub eviction_penalty: u64,
    /// Cycles for a forced store-buffer drain.
    pub drain_penalty: u64,
    /// Extra cycles for a line-crossing access.
    pub unaligned_penalty: u64,
}

impl Default for LsuConfig {
    fn default() -> Self {
        LsuConfig {
            n_sets: 32,
            line_bytes: 64,
            store_buffer_depth: 4,
            miss_penalty: 12,
            eviction_penalty: 8,
            drain_penalty: 6,
            unaligned_penalty: 2,
        }
    }
}

/// Result of simulating one test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Coverage-point hits.
    pub coverage: CoverageMap,
    /// Simulated cycles (the cost the Fig. 7 flow saves).
    pub cycles: u64,
    /// Instructions executed (skips reduce this below program length).
    pub instructions_executed: usize,
    /// Order-sensitive FNV-1a digest of the final memory image. Memory
    /// is kept in a `BTreeMap`, so this is identical across processes;
    /// the determinism suite pins it across runs with different hash
    /// seeds.
    pub memory_fingerprint: u64,
}

/// The load-store-unit simulator.
#[derive(Debug, Clone)]
pub struct LsuSimulator {
    config: LsuConfig,
}

#[derive(Clone, Copy)]
struct LineState {
    tag: u32,
    dirty: bool,
}

#[derive(Clone, Copy)]
struct StoreEntry {
    addr: u32,
    bytes: u32,
}

impl LsuSimulator {
    /// Creates a simulator with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `n_sets == 0`, `line_bytes` is not a power of two, or
    /// the store buffer has zero depth.
    pub fn new(config: LsuConfig) -> Self {
        assert!(config.n_sets > 0, "cache needs at least one set");
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.store_buffer_depth > 0, "store buffer needs depth >= 1");
        LsuSimulator { config }
    }

    /// A simulator with the default configuration (32 × 64 B = 2 KiB
    /// cache, 4-entry store buffer).
    pub fn default_config() -> Self {
        LsuSimulator::new(LsuConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &LsuConfig {
        &self.config
    }

    /// Executes `program` and returns coverage + cycle cost.
    ///
    /// Fully deterministic: the same program always produces the same
    /// outcome.
    pub fn simulate(&self, program: &Program) -> SimOutcome {
        let cfg = &self.config;
        let mut regs = [0u32; NUM_REGS];
        // BTreeMap, not HashMap: the final image is folded into
        // `memory_fingerprint` in iteration order, which must not
        // depend on a per-process hash seed.
        let mut memory: BTreeMap<u32, u8> = BTreeMap::new();
        let mut cache: Vec<Option<LineState>> = vec![None; cfg.n_sets];
        let mut store_buffer: Vec<StoreEntry> = Vec::new();
        let mut coverage = CoverageMap::new();
        let mut cycles: u64 = 0;
        let mut executed = 0usize;
        let mut miss_run = 0usize;

        let line_of = |addr: u32| addr / cfg.line_bytes;
        let set_of = |addr: u32| (line_of(addr) as usize) % cfg.n_sets;
        let tag_of = |addr: u32| line_of(addr) / cfg.n_sets as u32;

        // Accesses one cache line; returns extra cycles.
        let access_line = |addr: u32,
                           write: bool,
                           cache: &mut Vec<Option<LineState>>,
                           coverage: &mut CoverageMap,
                           miss_run: &mut usize,
                           store_buffer: &[StoreEntry]|
         -> u64 {
            let set = set_of(addr);
            let tag = tag_of(addr);
            match cache[set] {
                Some(ref mut line) if line.tag == tag => {
                    coverage.record(CoveragePoint::CacheHit);
                    if write {
                        line.dirty = true;
                    }
                    *miss_run = 0;
                    1
                }
                ref mut slot => {
                    coverage.record(CoveragePoint::CacheMiss);
                    *miss_run += 1;
                    if *miss_run >= 4 {
                        coverage.record(CoveragePoint::MissBurst);
                    }
                    let mut extra = self.config.miss_penalty;
                    if let Some(old) = slot {
                        if old.dirty {
                            extra += self.config.eviction_penalty;
                            // A3 is the rare case: the victim still has an
                            // in-flight store sitting in the store buffer.
                            let victim_line_lo = (old.tag * self.config.n_sets as u32 + set as u32)
                                * self.config.line_bytes;
                            let victim_line_hi = victim_line_lo + self.config.line_bytes;
                            if store_buffer
                                .iter()
                                .any(|e| e.addr >= victim_line_lo && e.addr < victim_line_hi)
                            {
                                coverage.record(CoveragePoint::DirtyEviction);
                            }
                        }
                    }
                    *slot = Some(LineState { tag, dirty: write });
                    extra
                }
            }
        };

        let insts = program.instructions();
        let mut pc = 0usize;
        while pc < insts.len() {
            let inst = insts[pc];
            pc += 1;
            executed += 1;
            cycles += 1;
            match inst {
                Instruction::AddImm { rd, rs1, imm } => {
                    if rd.0 != 0 {
                        regs[rd.0 as usize] = regs[rs1.0 as usize].wrapping_add(imm as u32);
                    }
                    if !store_buffer.is_empty() {
                        store_buffer.remove(0);
                    }
                    miss_run = 0;
                }
                Instruction::Alu { op, rd, rs1, rs2 } => {
                    let a = regs[rs1.0 as usize];
                    let b = regs[rs2.0 as usize];
                    let v = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                    };
                    if rd.0 != 0 {
                        regs[rd.0 as usize] = v;
                    }
                    if !store_buffer.is_empty() {
                        store_buffer.remove(0);
                    }
                    miss_run = 0;
                }
                Instruction::SkipEq { rs1, rs2 } => {
                    if regs[rs1.0 as usize] == regs[rs2.0 as usize] {
                        pc += 1;
                    }
                    if !store_buffer.is_empty() {
                        store_buffer.remove(0);
                    }
                    miss_run = 0;
                }
                Instruction::SkipNe { rs1, rs2 } => {
                    if regs[rs1.0 as usize] != regs[rs2.0 as usize] {
                        pc += 1;
                    }
                    if !store_buffer.is_empty() {
                        store_buffer.remove(0);
                    }
                    miss_run = 0;
                }
                Instruction::Fence => {
                    if !store_buffer.is_empty() {
                        cycles += cfg.drain_penalty;
                        store_buffer.clear();
                    }
                    miss_run = 0;
                }
                Instruction::Nop => {
                    if !store_buffer.is_empty() {
                        store_buffer.remove(0);
                    }
                    miss_run = 0;
                }
                Instruction::Load { rd, rs1, imm, width } => {
                    let addr = regs[rs1.0 as usize].wrapping_add(imm as u32);
                    let bytes = width.bytes();
                    let crosses = line_of(addr) != line_of(addr + bytes - 1);
                    if crosses {
                        coverage.record(CoveragePoint::UnalignedCross);
                        cycles += cfg.unaligned_penalty;
                    }
                    // Store-buffer lookup, newest entry first.
                    let mut forwarded = false;
                    let mut partial = false;
                    for e in store_buffer.iter().rev() {
                        let covers = e.addr <= addr && addr + bytes <= e.addr + e.bytes;
                        let overlaps = e.addr < addr + bytes && addr < e.addr + e.bytes;
                        if covers {
                            forwarded = true;
                            break;
                        }
                        if overlaps {
                            partial = true;
                            break;
                        }
                    }
                    if forwarded {
                        coverage.record(CoveragePoint::StoreForward);
                        miss_run = 0;
                    } else {
                        if partial {
                            coverage.record(CoveragePoint::PartialForward);
                            cycles += cfg.drain_penalty;
                            store_buffer.clear();
                        }
                        cycles += access_line(
                            addr,
                            false,
                            &mut cache,
                            &mut coverage,
                            &mut miss_run,
                            &store_buffer,
                        );
                        if crosses {
                            cycles += access_line(
                                addr + bytes - 1,
                                false,
                                &mut cache,
                                &mut coverage,
                                &mut miss_run,
                                &store_buffer,
                            );
                        }
                    }
                    // Functional read (little-endian).
                    let mut v: u32 = 0;
                    for b in 0..bytes {
                        v |= (*memory.get(&(addr + b)).unwrap_or(&0) as u32) << (8 * b);
                    }
                    if rd.0 != 0 {
                        regs[rd.0 as usize] = v;
                    }
                }
                Instruction::Store { rs2, rs1, imm, width } => {
                    let addr = regs[rs1.0 as usize].wrapping_add(imm as u32);
                    let bytes = width.bytes();
                    let crosses = line_of(addr) != line_of(addr + bytes - 1);
                    if crosses {
                        coverage.record(CoveragePoint::UnalignedCross);
                        cycles += cfg.unaligned_penalty;
                    }
                    if store_buffer.len() == cfg.store_buffer_depth {
                        coverage.record(CoveragePoint::StoreBufferFull);
                        cycles += cfg.drain_penalty;
                        store_buffer.clear();
                    }
                    cycles += access_line(
                        addr,
                        true,
                        &mut cache,
                        &mut coverage,
                        &mut miss_run,
                        &store_buffer,
                    );
                    if crosses {
                        cycles += access_line(
                            addr + bytes - 1,
                            true,
                            &mut cache,
                            &mut coverage,
                            &mut miss_run,
                            &store_buffer,
                        );
                    }
                    store_buffer.push(StoreEntry { addr, bytes });
                    // Functional write (little-endian).
                    let v = regs[rs2.0 as usize];
                    for b in 0..bytes {
                        memory.insert(addr + b, ((v >> (8 * b)) & 0xff) as u8);
                    }
                }
            }
        }
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for (&addr, &byte) in &memory {
            for b in addr.to_le_bytes().into_iter().chain([byte]) {
                fp = (fp ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        SimOutcome { coverage, cycles, instructions_executed: executed, memory_fingerprint: fp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Reg, Width};

    fn addi(rd: u8, imm: i32) -> Instruction {
        Instruction::AddImm { rd: Reg(rd), rs1: Reg(0), imm }
    }

    fn lw(rd: u8, base: u8, imm: i32) -> Instruction {
        Instruction::Load { rd: Reg(rd), rs1: Reg(base), imm, width: Width::Word }
    }

    fn sw(rs2: u8, base: u8, imm: i32) -> Instruction {
        Instruction::Store { rs2: Reg(rs2), rs1: Reg(base), imm, width: Width::Word }
    }

    #[test]
    fn load_roundtrips_store_value() {
        let p = Program::new(vec![
            addi(1, 0x1000),
            addi(8, 1234),
            sw(8, 1, 8),
            Instruction::Fence,
            lw(9, 1, 8),
        ]);
        let sim = LsuSimulator::default_config();
        let out = sim.simulate(&p);
        assert_eq!(out.instructions_executed, 5);
        assert!(out.coverage.covered(CoveragePoint::CacheHit)); // reload hits
    }

    #[test]
    fn store_then_load_same_addr_forwards() {
        let p = Program::new(vec![addi(1, 0x1000), sw(8, 1, 0), lw(9, 1, 0)]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::StoreForward), 1);
    }

    #[test]
    fn partial_overlap_triggers_partial_forward() {
        let p = Program::new(vec![
            addi(1, 0x1000),
            Instruction::Store { rs2: Reg(8), rs1: Reg(1), imm: 0, width: Width::Byte },
            lw(9, 1, 0), // word load overlapping the byte store
        ]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::PartialForward), 1);
        assert_eq!(out.coverage.count(CoveragePoint::StoreForward), 0);
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let p = Program::new(vec![addi(1, 0x2000), lw(8, 1, 0), lw(9, 1, 4), lw(10, 1, 0)]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::CacheMiss), 1);
        assert_eq!(out.coverage.count(CoveragePoint::CacheHit), 2);
    }

    #[test]
    fn aliased_dirty_line_evicts() {
        // 32 sets * 64 B = 2 KiB: addresses 0x1000 and 0x1000 + 0x800
        // share a set with different tags.
        let p = Program::new(vec![
            addi(1, 0x1000),
            addi(2, 0x1800),
            sw(8, 1, 0), // make the line dirty
            lw(9, 2, 0), // conflicting fill -> dirty eviction
        ]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::DirtyEviction), 1);
    }

    #[test]
    fn line_crossing_access_detected() {
        let p = Program::new(vec![
            addi(1, 0x1000),
            lw(8, 1, 62), // word at offset 62 crosses the 64 B boundary
        ]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::UnalignedCross), 1);
    }

    #[test]
    fn five_consecutive_stores_fill_the_buffer() {
        let mut insts = vec![addi(1, 0x1000)];
        for i in 0..5 {
            insts.push(sw(8, 1, i * 4));
        }
        let out = LsuSimulator::default_config().simulate(&Program::new(insts));
        assert_eq!(out.coverage.count(CoveragePoint::StoreBufferFull), 1);
    }

    #[test]
    fn alu_instructions_drain_the_buffer() {
        // Stores separated by ALU ops never fill the 4-deep buffer.
        let mut insts = vec![addi(1, 0x1000)];
        for i in 0..8 {
            insts.push(sw(8, 1, i * 4));
            insts.push(Instruction::Alu { op: AluOp::Add, rd: Reg(9), rs1: Reg(9), rs2: Reg(8) });
        }
        let out = LsuSimulator::default_config().simulate(&Program::new(insts));
        assert_eq!(out.coverage.count(CoveragePoint::StoreBufferFull), 0);
    }

    #[test]
    fn four_consecutive_misses_are_a_burst() {
        let p = Program::new(vec![
            addi(1, 0x1000),
            lw(8, 1, 0),
            lw(9, 1, 512),
            lw(10, 1, 1024),
            lw(11, 1, 1536),
        ]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.coverage.count(CoveragePoint::MissBurst), 1);
    }

    #[test]
    fn skip_skips() {
        // r8 == r9 == 0, so skeq skips the store.
        let p = Program::new(vec![
            addi(1, 0x1000),
            Instruction::SkipEq { rs1: Reg(8), rs2: Reg(9) },
            sw(8, 1, 0),
            lw(9, 1, 4),
        ]);
        let out = LsuSimulator::default_config().simulate(&p);
        assert_eq!(out.instructions_executed, 3);
        assert_eq!(out.coverage.count(CoveragePoint::StoreForward), 0);
    }

    #[test]
    fn cycles_accumulate_penalties() {
        let hit_heavy = Program::new(vec![addi(1, 0x1000), lw(8, 1, 0), lw(9, 1, 0)]);
        let miss_heavy = Program::new(vec![addi(1, 0x1000), lw(8, 1, 0), lw(9, 1, 2048)]);
        let sim = LsuSimulator::default_config();
        assert!(sim.simulate(&miss_heavy).cycles > sim.simulate(&hit_heavy).cycles);
    }

    #[test]
    fn deterministic() {
        let t = crate::template::TestTemplate::default();
        use rand::SeedableRng;
        let p = t.generate(&mut rand::rngs::StdRng::seed_from_u64(11));
        let sim = LsuSimulator::default_config();
        assert_eq!(sim.simulate(&p), sim.simulate(&p));
    }
}
