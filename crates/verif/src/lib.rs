//! # edm-verif — a constrained-random processor-verification substrate
//!
//! A synthetic stand-in for the commercial verification environment of
//! the paper's Fig. 6: a small RISC ISA ([`isa`]), assembly test programs
//! ([`program`]), a weighted-constraint random test generator driven by a
//! [`template::TestTemplate`] (the "randomizer"), and a cycle-approximate
//! **load-store-unit** simulator ([`lsu`]) with architectural coverage
//! points ([`coverage`]) — the unit the paper's Fig. 7 experiment
//! targeted.
//!
//! The substrate is engineered to reproduce the two statistical
//! properties the paper's verification results rest on:
//!
//! 1. *Constrained-random streams are redundant* — most generated tests
//!    exercise behaviour already covered, so filtering for novelty saves
//!    most of the simulation time (Fig. 7);
//! 2. *Some coverage points need rare constraint combinations* — they
//!    are effectively unreachable until the template is refined toward
//!    the right operand/dependency distributions (Table 1).
//!
//! # Example
//!
//! ```
//! use edm_verif::template::TestTemplate;
//! use edm_verif::lsu::LsuSimulator;
//! use rand::SeedableRng;
//!
//! let template = TestTemplate::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let test = template.generate(&mut rng);
//! let outcome = LsuSimulator::default_config().simulate(&test);
//! assert!(outcome.cycles > 0);
//! ```

#![forbid(unsafe_code)]

pub mod coverage;
pub mod isa;
pub mod lsu;
pub mod program;
pub mod template;
