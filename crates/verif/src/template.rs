//! Constrained-random test templates — the "randomizer" input of the
//! paper's Fig. 6.
//!
//! A template is the knob set a verification engineer actually edits:
//! instruction-mix weights, operand distributions (address reuse,
//! alignment, access width), and dependency biases. The rule-learning
//! flow of Table 1 closes the loop by mapping learned rule conditions
//! back onto these knobs (see `edm-core::template_refine`).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::isa::{AluOp, Instruction, Reg, Width};
use crate::program::Program;

/// Base address of the data region used by generated tests.
pub const REGION_BASE: u32 = 0x1000;

/// A constrained-random test template.
///
/// All probability knobs are clamped into `[0, 1]` by the builder-style
/// setters, so refinement steps can push aggressively without going out
/// of range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestTemplate {
    /// Body length range (instructions, excluding the preamble).
    pub len_range: (usize, usize),
    /// Relative weight of loads.
    pub w_load: f64,
    /// Relative weight of stores.
    pub w_store: f64,
    /// Relative weight of ALU ops.
    pub w_alu: f64,
    /// Relative weight of fences.
    pub w_fence: f64,
    /// Relative weight of skip (branch) ops.
    pub w_skip: f64,
    /// Probability a memory access is sub-word (byte/half).
    pub subword_prob: f64,
    /// Probability a memory offset is aligned to the access width.
    pub aligned_prob: f64,
    /// Probability a memory op reuses the previous (base, offset) exactly.
    pub reuse_addr_prob: f64,
    /// Probability a memory op lands within ±32 B of the previous offset.
    pub near_addr_prob: f64,
    /// Probability a store is followed by another store (burst bias).
    pub store_burst_prob: f64,
    /// Probability any memory op is followed by another memory op
    /// (back-to-back memory traffic; drives miss-under-miss behaviour).
    pub mem_burst_prob: f64,
    /// Number of base-address registers initialized in the preamble.
    pub n_base_regs: usize,
    /// Size of the addressable data region in bytes.
    pub region_bytes: u32,
}

impl Default for TestTemplate {
    /// The "original template" of the Table 1 experiment: a generic mix
    /// with wide, aligned, low-reuse addressing — plenty of hits and
    /// misses (A0/A1), almost nothing else.
    fn default() -> Self {
        TestTemplate {
            len_range: (24, 48),
            w_load: 0.22,
            w_store: 0.12,
            w_alu: 0.54,
            w_fence: 0.04,
            w_skip: 0.08,
            subword_prob: 0.05,
            aligned_prob: 0.98,
            reuse_addr_prob: 0.02,
            near_addr_prob: 0.45,
            store_burst_prob: 0.05,
            mem_burst_prob: 0.05,
            n_base_regs: 4,
            region_bytes: 4 * 1024,
        }
    }
}

impl TestTemplate {
    fn clamp01(v: f64) -> f64 {
        v.clamp(0.0, 1.0)
    }

    /// Nudges the address-reuse probability (clamped to `[0, 1]`).
    pub fn boost_reuse(&mut self, delta: f64) {
        self.reuse_addr_prob = Self::clamp01(self.reuse_addr_prob + delta);
        self.near_addr_prob = Self::clamp01(self.near_addr_prob + delta);
    }

    /// Nudges the sub-word access probability.
    pub fn boost_subword(&mut self, delta: f64) {
        self.subword_prob = Self::clamp01(self.subword_prob + delta);
    }

    /// Nudges the store weight and burst bias.
    pub fn boost_stores(&mut self, delta: f64) {
        self.w_store = (self.w_store + delta).max(0.0);
        self.store_burst_prob = Self::clamp01(self.store_burst_prob + delta);
    }

    /// Nudges the back-to-back memory-traffic probability.
    pub fn boost_mem_burst(&mut self, delta: f64) {
        self.mem_burst_prob = Self::clamp01(self.mem_burst_prob + delta);
    }

    /// Reduces address locality (more fresh addresses, more misses).
    pub fn reduce_locality(&mut self, delta: f64) {
        self.near_addr_prob = Self::clamp01(self.near_addr_prob - delta);
    }

    /// Nudges the misalignment probability (lowers `aligned_prob`).
    pub fn boost_unaligned(&mut self, delta: f64) {
        self.aligned_prob = Self::clamp01(self.aligned_prob - delta);
    }

    /// Nudges the load weight.
    pub fn boost_loads(&mut self, delta: f64) {
        self.w_load = (self.w_load + delta).max(0.0);
    }

    /// Shrinks the address region (more aliasing/conflict misses).
    pub fn shrink_region(&mut self, factor: f64) {
        assert!(factor > 0.0, "shrink factor must be positive");
        self.region_bytes = ((self.region_bytes as f64 * factor) as u32).max(256);
    }

    /// Generates one constrained-random test.
    ///
    /// The preamble initializes `n_base_regs` base registers spread over
    /// the region plus a couple of data registers; the body draws from
    /// the weighted instruction mix.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let mut insts = Vec::new();
        let n_base = self.n_base_regs.clamp(1, 6);
        // Preamble: r1..r{n} hold spread base addresses; r8/r9 hold data.
        for b in 0..n_base {
            let addr = REGION_BASE + (b as u32) * (self.region_bytes / n_base as u32);
            insts.push(Instruction::AddImm {
                rd: Reg::new(1 + b as u8),
                rs1: Reg(0),
                imm: addr as i32,
            });
        }
        insts.push(Instruction::AddImm { rd: Reg(8), rs1: Reg(0), imm: rng.gen_range(-128..128) });
        insts.push(Instruction::AddImm { rd: Reg(9), rs1: Reg(0), imm: rng.gen_range(-128..128) });

        let body_len = if self.len_range.0 >= self.len_range.1 {
            self.len_range.0
        } else {
            rng.gen_range(self.len_range.0..=self.len_range.1)
        };
        let data_regs: [u8; 6] = [8, 9, 10, 11, 12, 13];
        let max_offset = (self.region_bytes / n_base as u32).saturating_sub(8) as i32;
        let mut last: Option<(u8, i32)> = None;
        let mut force_store = false;
        let mut force_mem = false;
        for _ in 0..body_len {
            let total = self.w_load + self.w_store + self.w_alu + self.w_fence + self.w_skip;
            let pick = rng.gen::<f64>() * total.max(1e-12);
            let kind = if force_store {
                force_store = false;
                force_mem = false;
                1
            } else if force_mem {
                force_mem = false;
                0
            } else if pick < self.w_load {
                0
            } else if pick < self.w_load + self.w_store {
                1
            } else if pick < self.w_load + self.w_store + self.w_alu {
                2
            } else if pick < self.w_load + self.w_store + self.w_alu + self.w_fence {
                3
            } else {
                4
            };
            match kind {
                0 | 1 => {
                    let width = if rng.gen::<f64>() < self.subword_prob {
                        if rng.gen() {
                            Width::Byte
                        } else {
                            Width::Half
                        }
                    } else {
                        Width::Word
                    };
                    let (base, mut imm) = if let (Some((b, i)), true) =
                        (last, rng.gen::<f64>() < self.reuse_addr_prob)
                    {
                        (b, i)
                    } else if let (Some((b, i)), true) =
                        (last, rng.gen::<f64>() < self.near_addr_prob)
                    {
                        (b, (i + rng.gen_range(-32i32..=32)).clamp(0, max_offset))
                    } else {
                        (1 + rng.gen_range(0..n_base) as u8, rng.gen_range(0..=max_offset))
                    };
                    if rng.gen::<f64>() < self.aligned_prob {
                        imm -= imm.rem_euclid(width.bytes() as i32);
                    }
                    last = Some((base, imm));
                    if kind == 0 {
                        insts.push(Instruction::Load {
                            rd: Reg(*data_regs.choose(rng).expect("non-empty")),
                            rs1: Reg(base),
                            imm,
                            width,
                        });
                    } else {
                        insts.push(Instruction::Store {
                            rs2: Reg(*data_regs.choose(rng).expect("non-empty")),
                            rs1: Reg(base),
                            imm,
                            width,
                        });
                        if rng.gen::<f64>() < self.store_burst_prob {
                            force_store = true;
                        }
                    }
                    if !force_store && rng.gen::<f64>() < self.mem_burst_prob {
                        force_mem = true;
                    }
                }
                2 => {
                    let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];
                    insts.push(Instruction::Alu {
                        op: *ops.choose(rng).expect("non-empty"),
                        rd: Reg(*data_regs.choose(rng).expect("non-empty")),
                        rs1: Reg(*data_regs.choose(rng).expect("non-empty")),
                        rs2: Reg(*data_regs.choose(rng).expect("non-empty")),
                    });
                }
                3 => insts.push(Instruction::Fence),
                _ => {
                    let a = Reg(*data_regs.choose(rng).expect("non-empty"));
                    let b = Reg(*data_regs.choose(rng).expect("non-empty"));
                    insts.push(if rng.gen() {
                        Instruction::SkipEq { rs1: a, rs2: b }
                    } else {
                        Instruction::SkipNe { rs1: a, rs2: b }
                    });
                }
            }
        }
        Program::new(insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_within_length_range() {
        let t = TestTemplate::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = t.generate(&mut rng);
            let preamble = t.n_base_regs + 2;
            assert!(p.len() >= t.len_range.0 + preamble);
            assert!(p.len() <= t.len_range.1 + preamble);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = TestTemplate::default();
        let a = t.generate(&mut StdRng::seed_from_u64(7));
        let b = t.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn weights_shift_instruction_mix() {
        let heavy_store =
            TestTemplate { w_store: 5.0, w_load: 0.1, w_alu: 0.1, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let p = heavy_store.generate(&mut rng);
        let f = p.features();
        let names = Program::feature_names();
        let store_frac = f[names.iter().position(|n| n == "store_frac").unwrap()];
        let load_frac = f[names.iter().position(|n| n == "load_frac").unwrap()];
        assert!(store_frac > 3.0 * load_frac, "store {store_frac} load {load_frac}");
    }

    #[test]
    fn reuse_knob_raises_reuse_feature() {
        let mut rng = StdRng::seed_from_u64(2);
        let low = TestTemplate::default();
        let mut high = TestTemplate::default();
        high.boost_reuse(0.9);
        let avg_reuse = |t: &TestTemplate, rng: &mut StdRng| -> f64 {
            let names = Program::feature_names();
            let idx = names.iter().position(|n| n == "near_addr_frac").unwrap();
            (0..30).map(|_| t.generate(rng).features()[idx]).sum::<f64>() / 30.0
        };
        let lo = avg_reuse(&low, &mut rng);
        let hi = avg_reuse(&high, &mut rng);
        assert!(hi > lo + 0.2, "lo {lo} hi {hi}");
    }

    #[test]
    fn knob_clamping() {
        let mut t = TestTemplate::default();
        t.boost_reuse(5.0);
        assert!(t.reuse_addr_prob <= 1.0);
        t.boost_unaligned(5.0);
        assert!(t.aligned_prob >= 0.0);
        t.shrink_region(1e-9);
        assert!(t.region_bytes >= 256);
    }

    #[test]
    fn preamble_initializes_distinct_bases() {
        let t = TestTemplate::default();
        let p = t.generate(&mut StdRng::seed_from_u64(3));
        let mut bases = Vec::new();
        for inst in p.instructions().iter().take(t.n_base_regs) {
            match inst {
                Instruction::AddImm { imm, .. } => bases.push(*imm),
                other => panic!("preamble should be addi, got {other}"),
            }
        }
        bases.dedup();
        assert_eq!(bases.len(), t.n_base_regs);
    }
}

/// A mixture of templates — how production constrained-random
/// environments actually behave: the randomizer cycles through a few
/// scenario "modes" (directed-random flavors), heavily favoring the
/// bread-and-butter mode. Streams drawn from a mixture are *redundant*
/// in exactly the way the paper's Fig. 7 flow exploits: thousands of
/// same-mode tests add nothing once the mode's behaviours are covered,
/// while the rare modes carry the hard coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixtureTemplate {
    modes: Vec<(f64, TestTemplate)>,
}

impl MixtureTemplate {
    /// Creates a mixture; weights are normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty or any weight is non-positive.
    pub fn new(modes: Vec<(f64, TestTemplate)>) -> Self {
        assert!(!modes.is_empty(), "mixture needs at least one mode");
        assert!(modes.iter().all(|&(w, _)| w > 0.0), "mode weights must be positive");
        MixtureTemplate { modes }
    }

    /// The mixture used by the Fig. 7 reproduction: a dominant generic
    /// mode plus rare directed flavors; the store-burst mode (the only
    /// one that can fill a deep store buffer) appears once per ~1000
    /// tests.
    pub fn verification_plan() -> Self {
        let base = TestTemplate::default();

        let mut reuse_heavy = base.clone();
        reuse_heavy.boost_reuse(0.35);
        reuse_heavy.boost_subword(0.25);

        let mut unaligned_heavy = base.clone();
        unaligned_heavy.boost_unaligned(0.5);

        let mut burst_heavy = base.clone();
        burst_heavy.boost_mem_burst(0.45);
        burst_heavy.reduce_locality(0.25);

        let mut store_storm = base.clone();
        store_storm.w_store = 0.5;
        store_storm.w_load = 0.15;
        store_storm.w_alu = 0.3;
        store_storm.store_burst_prob = 0.8;

        MixtureTemplate::new(vec![
            (0.975, base),
            (0.012, reuse_heavy),
            (0.008, unaligned_heavy),
            (0.004, burst_heavy),
            (0.001, store_storm),
        ])
    }

    /// Number of modes.
    pub fn n_modes(&self) -> usize {
        self.modes.len()
    }

    /// Generates one test, returning the mode index used.
    pub fn generate_tagged<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, Program) {
        let total: f64 = self.modes.iter().map(|&(w, _)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        for (i, (w, t)) in self.modes.iter().enumerate() {
            if pick < *w || i + 1 == self.modes.len() {
                return (i, t.generate(rng));
            }
            pick -= w;
        }
        unreachable!("weights are positive and sum over the loop")
    }

    /// Generates one test.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        self.generate_tagged(rng).1
    }
}

#[cfg(test)]
mod mixture_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mode_frequencies_follow_weights() {
        let m = MixtureTemplate::verification_plan();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; m.n_modes()];
        for _ in 0..20_000 {
            counts[m.generate_tagged(&mut rng).0] += 1;
        }
        assert!(counts[0] > 19_000, "dominant mode should dominate: {counts:?}");
        assert!(counts[4] >= 5 && counts[4] <= 60, "rare mode ~20/20k: {counts:?}");
    }

    #[test]
    fn store_storm_mode_is_store_heavy() {
        let m = MixtureTemplate::verification_plan();
        let mut rng = StdRng::seed_from_u64(2);
        // Directly generate from the rare mode to inspect its output.
        let storm = &m.modes[4].1;
        let p = storm.generate(&mut rng);
        let names = Program::feature_names();
        let idx = names.iter().position(|n| n == "store_frac").unwrap();
        assert!(p.features()[idx] > 0.3, "store frac {}", p.features()[idx]);
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn empty_mixture_rejected() {
        let _ = MixtureTemplate::new(vec![]);
    }
}
