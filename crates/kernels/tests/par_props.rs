//! Property tests pinning the determinism guarantee of the parallel
//! Gram builders: `gram_matrix` and `gram_row` must be **bitwise**
//! identical to serial reference loops for any input. Sizes clear the
//! threading threshold in `edm-par`, so the worker-thread path really
//! runs (under the default `parallel` feature).

#[allow(deprecated)]
use edm_kernels::gram_matrix_rows;
use edm_kernels::{gram_matrix, gram_row, gram_rows, Kernel, LinearKernel, RbfKernel};
use proptest::prelude::*;

/// Deterministic SplitMix64 point cloud.
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Serial reference: upper triangle evaluated in the same (i, j) order
/// as the parallel builder, then mirrored.
fn gram_serial<K: Kernel<[f64]>>(kernel: &K, items: &[Vec<f64>]) -> Vec<u64> {
    let n = items.len();
    let mut g = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            g[i * n + j] = kernel.eval(&items[i], &items[j]);
        }
    }
    for i in 1..n {
        for j in 0..i {
            g[i * n + j] = g[j * n + i];
        }
    }
    g.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_gram_matrix_is_bitwise_serial(
        seed in 0u64..1_000_000,
        n in 64usize..72,
        gamma in 0.2f64..2.0,
    ) {
        let pts = points(seed, n, 3);
        let k = RbfKernel::new(gamma);
        let g = gram_matrix(&k, &pts);
        let got: Vec<u64> = (0..n)
            .flat_map(|i| g.row(i).iter().map(|v| v.to_bits()))
            .collect();
        prop_assert_eq!(got, gram_serial(&k, &pts));
    }

    #[test]
    fn parallel_gram_row_is_bitwise_serial(seed in 0u64..1_000_000) {
        // 4200 items clears the chunking threshold.
        let pts = points(seed, 4200, 2);
        let probe = points(seed ^ 0x5151, 1, 2).pop().expect("one point");
        let k = LinearKernel::new();
        let row = gram_row(&k, probe.as_slice(), &pts);
        let want: Vec<u64> = pts
            .iter()
            .map(|p| k.eval(&probe, p).to_bits())
            .collect();
        prop_assert_eq!(
            row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want
        );
    }

    /// Ragged sizes straddling the tile geometry (n below one band,
    /// one past a boundary, not a multiple of the column tile) and the
    /// degenerate d = 1 must all reproduce the naive reference.
    #[test]
    fn tiled_gram_matrix_handles_ragged_sizes(
        seed in 0u64..1_000_000,
        n in 1usize..140,
        d in 1usize..4,
        gamma in 0.2f64..2.0,
    ) {
        let pts = points(seed, n, d);
        let k = RbfKernel::new(gamma);
        let g = gram_matrix(&k, &pts);
        let got: Vec<u64> = (0..n)
            .flat_map(|i| g.row(i).iter().map(|v| v.to_bits()))
            .collect();
        prop_assert_eq!(got, gram_serial(&k, &pts));
    }

    /// The deprecated row-sharded builder and the tiled builder fill
    /// every cell with the same lone `kernel.eval` (or its mirror), so
    /// their outputs must be bitwise interchangeable.
    #[test]
    fn tiled_gram_matches_deprecated_row_sharded(
        seed in 0u64..1_000_000,
        n in 1usize..90,
        gamma in 0.2f64..2.0,
    ) {
        let pts = points(seed, n, 3);
        let k = RbfKernel::new(gamma);
        let tiled = gram_matrix(&k, &pts);
        #[allow(deprecated)]
        let sharded = gram_matrix_rows(&k, &pts);
        let tb: Vec<u64> = (0..n)
            .flat_map(|i| tiled.row(i).iter().map(|v| v.to_bits()))
            .collect();
        let sb: Vec<u64> = (0..n)
            .flat_map(|i| sharded.row(i).iter().map(|v| v.to_bits()))
            .collect();
        prop_assert_eq!(tb, sb);
    }

    /// Batched scoring must be indistinguishable from per-row calls:
    /// `gram_rows` returns exactly what `gram_row` would for each
    /// probe, independent of batch width.
    #[test]
    fn batched_gram_rows_match_per_row_calls(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        b in 1usize..6,
        gamma in 0.2f64..2.0,
    ) {
        let pts = points(seed, n, 3);
        let probes = points(seed ^ 0xBEEF, b, 3);
        let k = RbfKernel::new(gamma);
        let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
        let batched = gram_rows(&k, &refs, &pts);
        prop_assert_eq!(batched.len(), b);
        for (probe, got) in probes.iter().zip(&batched) {
            let lone = gram_row(&k, probe.as_slice(), &pts);
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                lone.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
