//! Regression tests pinning cross-process determinism of the spectrum
//! kernel (the fixed unordered-iteration site in `sequence.rs`).
//!
//! `SpectrumKernel::eval` folds per-gram counts into a float
//! accumulator. With the counts in a `HashMap` that fold follows the
//! per-process (in fact per-map) hash-seeded iteration order, so the
//! low bits of the result change between runs; with a `BTreeMap` the
//! order is the sorted gram order and the result is bitwise stable.
//! The test computes a fingerprint in two child processes launched with
//! different `RUST_HASH_SEED` environments and asserts bitwise
//! equality with the parent.

use edm_kernels::{Kernel, SpectrumKernel, SpectrumProfile};

const CHILD_VAR: &str = "EDM_DETERMINISM_CHILD";

fn fnv1a(fp: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(fp, |fp, &b| (fp ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// Kernel values over token streams with hundreds of distinct grams and
/// an irrational-ish length weight: any change in summation order moves
/// the low bits of the result.
fn fingerprint() -> u64 {
    let a: Vec<u32> = (0..257u32).map(|i| (i * 7919) % 53).collect();
    let b: Vec<u32> = (0..211u32).map(|i| (i * 104_729) % 47).collect();
    let k = SpectrumKernel::weighted(4, 1.714_285_714_285_714_3);
    let pa = SpectrumProfile::build(&a, &k);
    let pb = SpectrumProfile::build(&b, &k);
    let values =
        [k.eval(&a[..], &a[..]), k.eval(&a[..], &b[..]), k.eval(&b[..], &b[..]), pa.cosine(&pb)];
    values.iter().fold(0xcbf2_9ce4_8422_2325, |fp, v| fnv1a(fp, &v.to_bits().to_le_bytes()))
}

fn child_fingerprint(test_name: &str, seed: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([test_name, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_VAR, "1")
        .env("RUST_HASH_SEED", seed)
        .output()
        .expect("spawn child test process");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the marker shares a line with libtest's own
    // "test ... ok" output, so search within lines.
    stdout
        .split("fingerprint=")
        .nth(1)
        .map(|rest| rest.chars().take_while(char::is_ascii_hexdigit).collect::<String>())
        .unwrap_or_else(|| panic!("no fingerprint in child output: {stdout}"))
}

#[test]
fn spectrum_kernel_bitwise_stable_across_processes() {
    if std::env::var(CHILD_VAR).is_ok() {
        println!("fingerprint={:016x}", fingerprint());
        return;
    }
    let first = child_fingerprint("spectrum_kernel_bitwise_stable_across_processes", "1");
    let second = child_fingerprint("spectrum_kernel_bitwise_stable_across_processes", "2");
    assert_eq!(first, second, "spectrum kernel varies across processes");
    assert_eq!(first, format!("{:016x}", fingerprint()), "parent disagrees with children");
}

/// Within one process, two separately built maps already see different
/// hash seeds; repeated evaluation must still agree bitwise.
#[test]
fn spectrum_kernel_repeatable_in_process() {
    let a: Vec<u32> = (0..257u32).map(|i| (i * 7919) % 53).collect();
    let b: Vec<u32> = (0..211u32).map(|i| (i * 104_729) % 47).collect();
    let k = SpectrumKernel::weighted(4, 1.714_285_714_285_714_3);
    let v = k.eval(&a[..], &b[..]);
    for _ in 0..8 {
        assert_eq!(k.eval(&a[..], &b[..]).to_bits(), v.to_bits());
    }
}
