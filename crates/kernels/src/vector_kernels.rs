use edm_linalg::{dot, sq_dist};
use serde::{Deserialize, Serialize};

use crate::Kernel;

/// The linear kernel `k(x, y) = ⟨x, y⟩` — learning in the input space
/// itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearKernel;

impl LinearKernel {
    /// Creates the linear kernel.
    pub fn new() -> Self {
        LinearKernel
    }
}

impl Kernel<[f64]> for LinearKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        dot(a, b)
    }
}

/// The polynomial kernel `k(x, y) = (γ⟨x, y⟩ + c)ᵈ`.
///
/// With `γ = 1, c = 0, d = 2` this is exactly the paper's Figure 3 kernel
/// `⟨x, y⟩²`, whose implicit feature space makes ring-vs-disc data
/// linearly separable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolyKernel {
    degree: u32,
    gamma: f64,
    coef0: f64,
}

impl PolyKernel {
    /// Creates `(γ⟨x,y⟩ + c)ᵈ`.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0` or `gamma <= 0`.
    pub fn new(degree: u32, gamma: f64, coef0: f64) -> Self {
        assert!(degree > 0, "polynomial degree must be >= 1");
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        PolyKernel { degree, gamma, coef0 }
    }

    /// The homogeneous polynomial kernel `⟨x, y⟩ᵈ` (γ = 1, c = 0).
    pub fn homogeneous(degree: u32) -> Self {
        PolyKernel::new(degree, 1.0, 0.0)
    }

    /// The polynomial degree `d`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The scale `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The offset `c`.
    pub fn coef0(&self) -> f64 {
        self.coef0
    }
}

impl Kernel<[f64]> for PolyKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.gamma * dot(a, b) + self.coef0).powi(self.degree as i32)
    }
}

/// The Gaussian RBF kernel `k(x, y) = exp(−γ ‖x − y‖²)`.
///
/// Larger `γ` means a narrower bandwidth and a more complex implicit
/// model — the knob swept by the Fig. 5 overfitting experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    gamma: f64,
}

impl RbfKernel {
    /// Creates the RBF kernel with bandwidth parameter `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        RbfKernel { gamma }
    }

    /// The bandwidth parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Kernel<[f64]> for RbfKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (-self.gamma * sq_dist(a, b)).exp()
    }
}

/// The sigmoid kernel `k(x, y) = tanh(γ⟨x, y⟩ + c)`.
///
/// Not PSD for all parameter choices — kept for completeness with the
/// classic SVM literature; prefer [`RbfKernel`] unless you know you need
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidKernel {
    gamma: f64,
    coef0: f64,
}

impl SigmoidKernel {
    /// Creates `tanh(γ⟨x,y⟩ + c)`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0`.
    pub fn new(gamma: f64, coef0: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        SigmoidKernel { gamma, coef0 }
    }

    /// The scale `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The offset `c`.
    pub fn coef0(&self) -> f64 {
        self.coef0
    }
}

impl Kernel<[f64]> for SigmoidKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.gamma * dot(a, b) + self.coef0).tanh()
    }
}

/// The histogram-intersection kernel `k(h, g) = Σᵢ min(hᵢ, gᵢ)`.
///
/// The kernel the paper's layout-variability work used (\[13\], Fig. 9):
/// samples are density histograms of layout clips, and the intersection
/// measures how much mass two patterns share. PSD for non-negative
/// inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramIntersectionKernel;

impl HistogramIntersectionKernel {
    /// Creates the histogram-intersection kernel.
    pub fn new() -> Self {
        HistogramIntersectionKernel
    }
}

impl Kernel<[f64]> for HistogramIntersectionKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "histogram length mismatch");
        a.iter().zip(b).map(|(&x, &y)| x.min(y)).sum()
    }
}

/// The (exponential) χ² kernel
/// `k(h, g) = exp(−γ Σᵢ (hᵢ − gᵢ)² / (hᵢ + gᵢ))`.
///
/// An alternative histogram kernel, sharper than intersection for
/// near-identical histograms. Zero-sum bins contribute nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Kernel {
    gamma: f64,
}

impl Chi2Kernel {
    /// Creates the χ² kernel with scale `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        Chi2Kernel { gamma }
    }

    /// The scale `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Kernel<[f64]> for Chi2Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "histogram length mismatch");
        let chi2: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let s = x + y;
                if s.abs() < 1e-300 {
                    0.0
                } else {
                    (x - y) * (x - y) / s
                }
            })
            .sum();
        (-self.gamma * chi2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot() {
        assert_eq!(LinearKernel::new().eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn poly_matches_figure3_feature_map() {
        let k = PolyKernel::homogeneous(2);
        let (x, y) = ([0.5, -1.5], [2.0, 1.0]);
        let d = 0.5 * 2.0 + (-1.5) * 1.0;
        assert!((k.eval(&x, &y) - d * d).abs() < 1e-12);
    }

    #[test]
    fn rbf_range_and_identity() {
        let k = RbfKernel::new(0.7);
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        let v = k.eval(&[0.0, 0.0], &[10.0, 10.0]);
        assert!(v > 0.0 && v < 1e-10);
    }

    #[test]
    fn rbf_is_symmetric() {
        let k = RbfKernel::new(2.0);
        let (a, b) = ([1.0, -2.0, 0.5], [0.0, 3.0, 1.0]);
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn histogram_intersection_known_value() {
        let k = HistogramIntersectionKernel::new();
        assert_eq!(k.eval(&[1.0, 3.0, 0.0], &[2.0, 1.0, 5.0]), 2.0);
        // self-similarity is the total mass
        assert_eq!(k.eval(&[1.0, 3.0], &[1.0, 3.0]), 4.0);
    }

    #[test]
    fn chi2_identity_is_one() {
        let k = Chi2Kernel::new(1.0);
        assert_eq!(k.eval(&[0.2, 0.8], &[0.2, 0.8]), 1.0);
        assert!(k.eval(&[1.0, 0.0], &[0.0, 1.0]) < 1.0);
        // zero-sum bins are ignored, not NaN
        assert!(k.eval(&[0.0, 1.0], &[0.0, 1.0]).is_finite());
    }

    #[test]
    fn sigmoid_bounded() {
        let k = SigmoidKernel::new(0.5, -1.0);
        let v = k.eval(&[3.0, 3.0], &[3.0, 3.0]);
        assert!(v > -1.0 && v < 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn rbf_rejects_bad_gamma() {
        let _ = RbfKernel::new(0.0);
    }

    #[test]
    fn kernel_by_reference_matches_value() {
        let k = RbfKernel::new(1.0);
        let a = [1.0, 2.0];
        let b = [2.0, 1.0];
        let by_ref: &dyn Kernel<[f64]> = &k;
        assert_eq!(by_ref.eval(&a, &b), k.eval(&a, &b));
    }
}
