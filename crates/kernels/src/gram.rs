//! Gram-matrix construction and feature-space utilities.
//!
//! The Gram matrix `Kᵢⱼ = k(xᵢ, xⱼ)` is the only view of the data a
//! kernel learner sees (paper Fig. 4). These helpers build it for any
//! sample type, center it in feature space (needed by kernel PCA-style
//! analyses), and empirically check positive semidefiniteness of custom
//! kernels.

use std::borrow::Borrow;

use edm_linalg::{BlockSpec, Matrix};

use crate::Kernel;

/// Builds the symmetric Gram matrix `Kᵢⱼ = k(items[i], items[j])`.
///
/// `items` may hold any owned form of the kernel's sample type (e.g.
/// `Vec<f64>` for a `Kernel<[f64]>`). Only the upper triangle is
/// evaluated; symmetry is filled in, so a slightly asymmetric (buggy)
/// kernel is symmetrized rather than propagated.
///
/// The fill is cache-blocked: worker threads take *bands* of rows (not
/// single rows), and each band sweeps the upper triangle one
/// [`BlockSpec::col_tile`]-wide panel of samples at a time, so the
/// panel stays L1/L2-resident while every row of the band evaluates
/// against it. At industrial n the naive row loop streams the entire
/// sample set through cache once per row; the tiled walk streams it
/// once per *band*, which is what makes the build memory-lean enough
/// to scale. Each entry is still produced by the same single kernel
/// evaluation in every configuration, so serial, parallel, and any
/// tile shape give bitwise identical results.
///
/// Emits `kernels.gram.tiles` and `kernels.gram.mirrored_cells`
/// counters when tracing is on.
pub fn gram_matrix<S, K, I>(kernel: &K, items: &[I]) -> Matrix
where
    S: ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let n = items.len();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    let spec = BlockSpec::from_env();
    let (band_rows, tile) = (spec.band_rows, spec.col_tile);
    // Phase 1: bands of rows fill their upper-triangle cells tile by
    // tile. A band starting at row i0 only owns cells with j >= i, so
    // it can skip every column tile left of the one holding i0.
    edm_par::for_each_band(g.as_mut_slice(), n, band_rows, |b, band| {
        let i0 = b * band_rows;
        let mut j0 = i0 - i0 % tile;
        while j0 < n {
            let jend = (j0 + tile).min(n);
            for (di, row) in band.chunks_mut(n).enumerate() {
                let i = i0 + di;
                let lo = j0.max(i);
                let xi = items[i].borrow();
                for (slot, j) in row[lo..jend].iter_mut().zip(lo..) {
                    *slot = kernel.eval(xi, items[j].borrow());
                }
            }
            j0 = jend;
        }
    });
    if edm_trace::enabled() {
        // Tile count is a pure function of (n, spec): per band, the
        // panels from the diagonal one through the last.
        let panels = n.div_ceil(tile);
        let tiles: u64 = (0..n).step_by(band_rows).map(|i0| (panels - i0 / tile) as u64).sum();
        edm_trace::counter_add("kernels.gram.tiles", tiles);
        edm_trace::counter_add("kernels.gram.mirrored_cells", (n * (n - 1) / 2) as u64);
    }
    // Phase 2: mirror the triangle — tile-blocked copies, cheap next
    // to the kernel evaluations above.
    g.mirror_upper_to_lower();
    g
}

/// The pre-tiling Gram builder: one output row per dispatch, each row
/// streaming the entire sample set, with an element-wise mirror.
///
/// Kept for one release as a measurement baseline — `bench_kernel_compute`
/// quantifies the tiled [`gram_matrix`] against it — and for callers
/// that need the old scheduling while migrating.
#[deprecated(since = "0.1.0", note = "use `gram_matrix`, which tiles the fill for cache reuse")]
pub fn gram_matrix_rows<S, K, I>(kernel: &K, items: &[I]) -> Matrix
where
    S: ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let n = items.len();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    // Each worker fills columns i..n of its own row i.
    edm_par::for_each_row(g.as_mut_slice(), n, |i, row| {
        let xi = items[i].borrow();
        for (j, slot) in row.iter_mut().enumerate().skip(i) {
            *slot = kernel.eval(xi, items[j].borrow());
        }
    });
    for i in 1..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

/// Evaluates one row of kernel values `k(x, items[i])` — what a trained
/// kernel model needs to score a new sample.
///
/// Long rows are split into chunks scored by worker threads; each entry
/// is one independent kernel evaluation, so serial and parallel results
/// are bitwise identical.
pub fn gram_row<S, K, I>(kernel: &K, x: &S, items: &[I]) -> Vec<f64>
where
    S: Sync + ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let mut out = vec![0.0; items.len()];
    edm_par::for_each_chunk(&mut out, GRAM_ROW_CHUNK, |c, chunk| {
        let start = c * GRAM_ROW_CHUNK;
        for (off, v) in chunk.iter_mut().enumerate() {
            *v = kernel.eval(x, items[start + off].borrow());
        }
    });
    out
}

/// Chunk size for [`gram_row`] scoring: large enough that the per-chunk
/// dispatch cost is negligible next to the kernel evaluations.
const GRAM_ROW_CHUNK: usize = 512;

/// Evaluates several kernel rows in one pass: `out[r][t] =
/// k(xs[r], items[t])`.
///
/// The batch is computed sample-major — every chunk of `items` is
/// loaded once and scored against *all* query samples while it is
/// cache-hot — so scoring B rows together costs one stream over the
/// data instead of B. Worker threads split the sample axis; each cell
/// is one independent kernel evaluation, so the result is bitwise
/// identical to calling [`gram_row`] per query in any order.
pub fn gram_rows<S, K, I>(kernel: &K, xs: &[&S], items: &[I]) -> Vec<Vec<f64>>
where
    S: Sync + ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let b = xs.len();
    let n = items.len();
    let mut out: Vec<Vec<f64>> = xs.iter().map(|_| vec![0.0; n]).collect();
    if b == 0 || n == 0 {
        return out;
    }
    // Interleaved scratch (`scratch[t * b + r]`) keeps each parallel
    // chunk a contiguous run of whole sample-columns.
    let mut scratch = vec![0.0; n * b];
    edm_par::for_each_chunk(&mut scratch, GRAM_ROW_CHUNK * b, |c, chunk| {
        let t0 = c * GRAM_ROW_CHUNK;
        for (dt, cell) in chunk.chunks_exact_mut(b).enumerate() {
            let xt = items[t0 + dt].borrow();
            for (v, x) in cell.iter_mut().zip(xs) {
                *v = kernel.eval(x, xt);
            }
        }
    });
    for (r, row) in out.iter_mut().enumerate() {
        for (t, v) in row.iter_mut().enumerate() {
            *v = scratch[t * b + r];
        }
    }
    out
}

/// Centers a Gram matrix in feature space:
/// `K' = K − 1ₙK − K1ₙ + 1ₙK1ₙ` where `1ₙ` is the constant `1/n` matrix.
///
/// After centering, the implicit feature vectors have zero mean, which is
/// the precondition for kernel PCA and for interpreting kernel values as
/// covariances.
///
/// # Panics
///
/// Panics if `gram` is not square or not symmetric.
///
/// # Symmetry
///
/// A Gram matrix is symmetric by definition, and the centering formula
/// is only meaningful for symmetric input, so this asserts
/// `gram.is_symmetric(tol)` with a small roundoff allowance rather than
/// silently folding row means into column positions.
pub fn center_gram(gram: &Matrix) -> Matrix {
    assert!(gram.is_square(), "gram matrix must be square");
    let n = gram.rows();
    if n == 0 {
        return gram.clone();
    }
    let sym_tol = 1e-9 * gram.max_abs().max(1.0);
    assert!(
        gram.is_symmetric(sym_tol),
        "center_gram requires a symmetric matrix (tolerance {sym_tol:.3e})"
    );
    let nf = n as f64;
    // By symmetry the column means equal the row means.
    let row_means: Vec<f64> = (0..n).map(|i| gram.row(i).iter().sum::<f64>() / nf).collect();
    let grand = row_means.iter().sum::<f64>() / nf;
    // Single output allocation; the fill is row-parallel (each output
    // row depends only on the matching input row and the shared means).
    let mut out = gram.clone();
    edm_par::for_each_row(out.as_mut_slice(), n, |i, row| {
        let mi = row_means[i];
        for (v, mj) in row.iter_mut().zip(&row_means) {
            *v = *v - mi - mj + grand;
        }
    });
    out
}

/// Empirically checks positive semidefiniteness: all eigenvalues of the
/// symmetrized matrix are `>= -tol * max(|λ|)`.
///
/// Intended for validating hand-written kernels in tests; it is O(n³).
///
/// # Panics
///
/// Panics if `gram` is not square.
pub fn is_psd(gram: &Matrix, tol: f64) -> bool {
    assert!(gram.is_square(), "gram matrix must be square");
    if gram.rows() == 0 {
        return true;
    }
    // Symmetrize to guard against roundoff before the eigen solve.
    let sym = {
        let t = gram.transpose();
        (gram + &t).scaled(0.5)
    };
    match sym.symmetric_eigen() {
        Ok(e) => {
            let max_abs = e.eigenvalues().iter().fold(0.0_f64, |m, &v| m.max(v.abs())).max(1e-300);
            e.eigenvalues().iter().all(|&v| v >= -tol * max_abs)
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramIntersectionKernel, LinearKernel, RbfKernel, SpectrumKernel};

    fn cloud() -> Vec<Vec<f64>> {
        vec![vec![0.0, 0.1], vec![1.0, -0.5], vec![0.3, 2.0], vec![-1.0, 1.0], vec![0.7, 0.7]]
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_for_rbf() {
        let g = gram_matrix(&RbfKernel::new(0.5), &cloud());
        assert!(g.is_symmetric(0.0));
        for i in 0..g.rows() {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn standard_kernels_are_psd() {
        let items = cloud();
        assert!(is_psd(&gram_matrix(&LinearKernel::new(), &items), 1e-9));
        assert!(is_psd(&gram_matrix(&RbfKernel::new(1.3), &items), 1e-9));
        // HI kernel on non-negative inputs
        let hists = vec![
            vec![1.0, 2.0, 0.0],
            vec![0.5, 0.5, 3.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        assert!(is_psd(&gram_matrix(&HistogramIntersectionKernel::new(), &hists), 1e-9));
    }

    #[test]
    fn spectrum_gram_over_programs_is_psd() {
        let programs: Vec<Vec<u8>> =
            vec![vec![1, 2, 3, 4], vec![2, 3, 4, 1], vec![1, 1, 1, 1], vec![4, 3, 2, 1]];
        let g = gram_matrix(&SpectrumKernel::new(3), &programs);
        assert!(is_psd(&g, 1e-9));
    }

    #[test]
    fn non_psd_matrix_detected() {
        // [[0,1],[1,0]] has eigenvalues ±1.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(!is_psd(&m, 1e-9));
    }

    #[test]
    fn centering_zeroes_row_sums() {
        let g = gram_matrix(&LinearKernel::new(), &cloud());
        let c = center_gram(&g);
        for i in 0..c.rows() {
            let rs: f64 = c.row(i).iter().sum();
            assert!(rs.abs() < 1e-10, "row {i} sum {rs}");
        }
        // centering preserves PSD
        assert!(is_psd(&c, 1e-9));
    }

    #[test]
    fn gram_row_matches_matrix_row() {
        let items = cloud();
        let k = RbfKernel::new(0.8);
        let g = gram_matrix(&k, &items);
        let row = gram_row(&k, &items[2], &items);
        for (a, b) in row.iter().zip(g.row(2)) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn gram_rows_matches_per_row_scoring_bitwise() {
        let items = cloud();
        let k = RbfKernel::new(1.1);
        let xs: Vec<&[f64]> = vec![&items[0], &items[3], &items[0]];
        let batch = gram_rows(&k, &xs, &items);
        assert_eq!(batch.len(), 3);
        for (x, got) in xs.iter().zip(&batch) {
            let solo = gram_row(&k, x, &items);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                solo.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let empty: Vec<&[f64]> = vec![];
        assert!(gram_rows(&k, &empty, &items).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_row_sharded_builder_matches_tiled_bitwise() {
        let items = cloud();
        let k = RbfKernel::new(0.6);
        let tiled = gram_matrix(&k, &items);
        let rows = gram_matrix_rows(&k, &items);
        assert_eq!(
            tiled.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            rows.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
