//! Gram-matrix construction and feature-space utilities.
//!
//! The Gram matrix `Kᵢⱼ = k(xᵢ, xⱼ)` is the only view of the data a
//! kernel learner sees (paper Fig. 4). These helpers build it for any
//! sample type, center it in feature space (needed by kernel PCA-style
//! analyses), and empirically check positive semidefiniteness of custom
//! kernels.

use std::borrow::Borrow;

use edm_linalg::Matrix;

use crate::Kernel;

/// Builds the symmetric Gram matrix `Kᵢⱼ = k(items[i], items[j])`.
///
/// `items` may hold any owned form of the kernel's sample type (e.g.
/// `Vec<f64>` for a `Kernel<[f64]>`). Only the upper triangle is
/// evaluated; symmetry is filled in, so a slightly asymmetric (buggy)
/// kernel is symmetrized rather than propagated.
///
/// The upper-triangle fill runs one row per worker thread (with the
/// `parallel` feature; serial otherwise). Each entry is produced by the
/// same single kernel evaluation either way, so the result is bitwise
/// identical across both paths.
pub fn gram_matrix<S, K, I>(kernel: &K, items: &[I]) -> Matrix
where
    S: ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let n = items.len();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    // Phase 1: each worker fills columns i..n of its own row i.
    edm_par::for_each_row(g.as_mut_slice(), n, |i, row| {
        let xi = items[i].borrow();
        for (j, slot) in row.iter_mut().enumerate().skip(i) {
            *slot = kernel.eval(xi, items[j].borrow());
        }
    });
    // Phase 2: mirror the triangle — plain copies, cheap next to the
    // kernel evaluations above.
    for i in 1..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

/// Evaluates one row of kernel values `k(x, items[i])` — what a trained
/// kernel model needs to score a new sample.
///
/// Long rows are split into chunks scored by worker threads; each entry
/// is one independent kernel evaluation, so serial and parallel results
/// are bitwise identical.
pub fn gram_row<S, K, I>(kernel: &K, x: &S, items: &[I]) -> Vec<f64>
where
    S: Sync + ?Sized,
    K: Kernel<S> + ?Sized,
    I: Borrow<S> + Sync,
{
    let mut out = vec![0.0; items.len()];
    edm_par::for_each_chunk(&mut out, GRAM_ROW_CHUNK, |c, chunk| {
        let start = c * GRAM_ROW_CHUNK;
        for (off, v) in chunk.iter_mut().enumerate() {
            *v = kernel.eval(x, items[start + off].borrow());
        }
    });
    out
}

/// Chunk size for [`gram_row`] scoring: large enough that the per-chunk
/// dispatch cost is negligible next to the kernel evaluations.
const GRAM_ROW_CHUNK: usize = 512;

/// Centers a Gram matrix in feature space:
/// `K' = K − 1ₙK − K1ₙ + 1ₙK1ₙ` where `1ₙ` is the constant `1/n` matrix.
///
/// After centering, the implicit feature vectors have zero mean, which is
/// the precondition for kernel PCA and for interpreting kernel values as
/// covariances.
///
/// # Panics
///
/// Panics if `gram` is not square or not symmetric.
///
/// # Symmetry
///
/// A Gram matrix is symmetric by definition, and the centering formula
/// is only meaningful for symmetric input, so this asserts
/// `gram.is_symmetric(tol)` with a small roundoff allowance rather than
/// silently folding row means into column positions.
pub fn center_gram(gram: &Matrix) -> Matrix {
    assert!(gram.is_square(), "gram matrix must be square");
    let n = gram.rows();
    if n == 0 {
        return gram.clone();
    }
    let sym_tol = 1e-9 * gram.max_abs().max(1.0);
    assert!(
        gram.is_symmetric(sym_tol),
        "center_gram requires a symmetric matrix (tolerance {sym_tol:.3e})"
    );
    let nf = n as f64;
    // By symmetry the column means equal the row means.
    let row_means: Vec<f64> = (0..n).map(|i| gram.row(i).iter().sum::<f64>() / nf).collect();
    let grand = row_means.iter().sum::<f64>() / nf;
    // Single output allocation; the fill is row-parallel (each output
    // row depends only on the matching input row and the shared means).
    let mut out = gram.clone();
    edm_par::for_each_row(out.as_mut_slice(), n, |i, row| {
        let mi = row_means[i];
        for (v, mj) in row.iter_mut().zip(&row_means) {
            *v = *v - mi - mj + grand;
        }
    });
    out
}

/// Empirically checks positive semidefiniteness: all eigenvalues of the
/// symmetrized matrix are `>= -tol * max(|λ|)`.
///
/// Intended for validating hand-written kernels in tests; it is O(n³).
///
/// # Panics
///
/// Panics if `gram` is not square.
pub fn is_psd(gram: &Matrix, tol: f64) -> bool {
    assert!(gram.is_square(), "gram matrix must be square");
    if gram.rows() == 0 {
        return true;
    }
    // Symmetrize to guard against roundoff before the eigen solve.
    let sym = {
        let t = gram.transpose();
        (gram + &t).scaled(0.5)
    };
    match sym.symmetric_eigen() {
        Ok(e) => {
            let max_abs = e.eigenvalues().iter().fold(0.0_f64, |m, &v| m.max(v.abs())).max(1e-300);
            e.eigenvalues().iter().all(|&v| v >= -tol * max_abs)
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramIntersectionKernel, LinearKernel, RbfKernel, SpectrumKernel};

    fn cloud() -> Vec<Vec<f64>> {
        vec![vec![0.0, 0.1], vec![1.0, -0.5], vec![0.3, 2.0], vec![-1.0, 1.0], vec![0.7, 0.7]]
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_for_rbf() {
        let g = gram_matrix(&RbfKernel::new(0.5), &cloud());
        assert!(g.is_symmetric(0.0));
        for i in 0..g.rows() {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn standard_kernels_are_psd() {
        let items = cloud();
        assert!(is_psd(&gram_matrix(&LinearKernel::new(), &items), 1e-9));
        assert!(is_psd(&gram_matrix(&RbfKernel::new(1.3), &items), 1e-9));
        // HI kernel on non-negative inputs
        let hists = vec![
            vec![1.0, 2.0, 0.0],
            vec![0.5, 0.5, 3.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        assert!(is_psd(&gram_matrix(&HistogramIntersectionKernel::new(), &hists), 1e-9));
    }

    #[test]
    fn spectrum_gram_over_programs_is_psd() {
        let programs: Vec<Vec<u8>> =
            vec![vec![1, 2, 3, 4], vec![2, 3, 4, 1], vec![1, 1, 1, 1], vec![4, 3, 2, 1]];
        let g = gram_matrix(&SpectrumKernel::new(3), &programs);
        assert!(is_psd(&g, 1e-9));
    }

    #[test]
    fn non_psd_matrix_detected() {
        // [[0,1],[1,0]] has eigenvalues ±1.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(!is_psd(&m, 1e-9));
    }

    #[test]
    fn centering_zeroes_row_sums() {
        let g = gram_matrix(&LinearKernel::new(), &cloud());
        let c = center_gram(&g);
        for i in 0..c.rows() {
            let rs: f64 = c.row(i).iter().sum();
            assert!(rs.abs() < 1e-10, "row {i} sum {rs}");
        }
        // centering preserves PSD
        assert!(is_psd(&c, 1e-9));
    }

    #[test]
    fn gram_row_matches_matrix_row() {
        let items = cloud();
        let k = RbfKernel::new(0.8);
        let g = gram_matrix(&k, &items);
        let row = gram_row(&k, &items[2], &items);
        for (a, b) in row.iter().zip(g.row(2)) {
            assert!((a - b).abs() < 1e-15);
        }
    }
}
