//! Kernel combinators.
//!
//! Sums, products, and positive scalings of PSD kernels are PSD, so these
//! wrappers let a methodology mix knowledge sources — e.g. a spectrum
//! kernel on instruction streams plus a linear kernel on operand
//! statistics — without leaving the valid-kernel family.

use serde::{Deserialize, Serialize};

use crate::Kernel;

/// The sum `k(a, b) = k₁(a, b) + k₂(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SumKernel<K1, K2> {
    k1: K1,
    k2: K2,
}

impl<K1, K2> SumKernel<K1, K2> {
    /// Creates `k₁ + k₂`.
    pub fn new(k1: K1, k2: K2) -> Self {
        SumKernel { k1, k2 }
    }
}

impl<S: ?Sized, K1: Kernel<S>, K2: Kernel<S>> Kernel<S> for SumKernel<K1, K2> {
    fn eval(&self, a: &S, b: &S) -> f64 {
        self.k1.eval(a, b) + self.k2.eval(a, b)
    }
}

/// The product `k(a, b) = k₁(a, b) · k₂(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductKernel<K1, K2> {
    k1: K1,
    k2: K2,
}

impl<K1, K2> ProductKernel<K1, K2> {
    /// Creates `k₁ · k₂`.
    pub fn new(k1: K1, k2: K2) -> Self {
        ProductKernel { k1, k2 }
    }
}

impl<S: ?Sized, K1: Kernel<S>, K2: Kernel<S>> Kernel<S> for ProductKernel<K1, K2> {
    fn eval(&self, a: &S, b: &S) -> f64 {
        self.k1.eval(a, b) * self.k2.eval(a, b)
    }
}

/// The scaling `k(a, b) = c · k₁(a, b)` with `c > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledKernel<K> {
    inner: K,
    scale: f64,
}

impl<K> ScaledKernel<K> {
    /// Creates `c · k`.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` (a non-positive scale would break PSD-ness).
    pub fn new(inner: K, scale: f64) -> Self {
        assert!(scale > 0.0, "kernel scale must be positive, got {scale}");
        ScaledKernel { inner, scale }
    }
}

impl<S: ?Sized, K: Kernel<S>> Kernel<S> for ScaledKernel<K> {
    fn eval(&self, a: &S, b: &S) -> f64 {
        self.scale * self.inner.eval(a, b)
    }
}

/// Cosine normalization
/// `k(a, b) = k₁(a, b) / √(k₁(a, a) · k₁(b, b))`, mapping self-similarity
/// to 1.
///
/// Essential for the spectrum kernel, where raw self-similarity grows
/// with sequence length (a long test would otherwise look "similar" to
/// everything). Returns `0.0` when either self-similarity is zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedKernel<K> {
    inner: K,
}

impl<K> NormalizedKernel<K> {
    /// Wraps `k` in cosine normalization.
    pub fn new(inner: K) -> Self {
        NormalizedKernel { inner }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<S: ?Sized, K: Kernel<S>> Kernel<S> for NormalizedKernel<K> {
    fn eval(&self, a: &S, b: &S) -> f64 {
        let kaa = self.inner.eval(a, a);
        let kbb = self.inner.eval(b, b);
        let denom = (kaa * kbb).sqrt();
        if denom < 1e-300 {
            0.0
        } else {
            self.inner.eval(a, b) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearKernel, RbfKernel, SpectrumKernel};

    #[test]
    fn sum_and_product_combine() {
        let a = [1.0, 0.0];
        let b = [0.5, 0.5];
        let lin = LinearKernel::new();
        let rbf = RbfKernel::new(1.0);
        let s = SumKernel::new(lin, rbf);
        let p = ProductKernel::new(lin, rbf);
        assert!((s.eval(&a, &b) - (lin.eval(&a, &b) + rbf.eval(&a, &b))).abs() < 1e-15);
        assert!((p.eval(&a, &b) - lin.eval(&a, &b) * rbf.eval(&a, &b)).abs() < 1e-15);
    }

    #[test]
    fn scaled_multiplies() {
        let k = ScaledKernel::new(LinearKernel::new(), 2.5);
        assert_eq!(k.eval(&[2.0], &[3.0]), 15.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_must_be_positive() {
        let _ = ScaledKernel::new(LinearKernel::new(), -1.0);
    }

    #[test]
    fn normalized_self_similarity_is_one() {
        let k = NormalizedKernel::new(SpectrumKernel::new(2));
        let s = [3u8, 1, 4, 1, 5];
        assert!((k.eval(&s[..], &s[..]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_bounded_by_one() {
        let k = NormalizedKernel::new(SpectrumKernel::new(3));
        let a = [1u8, 2, 3, 4, 1, 2];
        let b = [2u8, 3, 4, 4, 4];
        let v = k.eval(&a[..], &b[..]);
        assert!((0.0..=1.0 + 1e-12).contains(&v));
    }

    #[test]
    fn normalized_zero_self_similarity_is_zero() {
        let k = NormalizedKernel::new(SpectrumKernel::new(1));
        let empty: [u8; 0] = [];
        let b = [1u8];
        assert_eq!(k.eval(&empty[..], &b[..]), 0.0);
    }
}
