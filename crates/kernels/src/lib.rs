//! # edm-kernels — kernel functions and Gram-matrix utilities
//!
//! Implements the paper's §2.2: the separation between *learning
//! algorithm* and *learning space*. A [`Kernel`] measures similarity
//! between two samples; the learning algorithms in `edm-svm` (and the
//! kernel-based detectors in `edm-novelty`) access the data **only**
//! through the kernel (the paper's Fig. 4), which is what lets them learn
//! over samples that are not vectors at all — layout clips, assembly
//! programs.
//!
//! The trait is generic over the *unsized* sample type, so the same
//! machinery covers:
//!
//! * numeric vectors (`Kernel<[f64]>`): [`LinearKernel`], [`PolyKernel`],
//!   [`RbfKernel`], [`SigmoidKernel`], [`HistogramIntersectionKernel`]
//!   (the HI kernel the paper used for layout variability, Fig. 9),
//!   [`Chi2Kernel`];
//! * token sequences (`Kernel<[T]>`): [`SpectrumKernel`], the n-gram
//!   kernel used for assembly-program novelty detection (Fig. 7, paper
//!   ref \[14\]).
//!
//! Composite wrappers ([`SumKernel`], [`ProductKernel`], [`ScaledKernel`],
//! [`NormalizedKernel`]) preserve positive-semidefiniteness by the closure
//! properties of the PSD cone.
//!
//! # Example: the kernel trick of the paper's Figure 3
//!
//! ```
//! use edm_kernels::{Kernel, PolyKernel};
//!
//! // k(x, x') = <x, x'>^2 corresponds to the explicit feature map
//! // Φ(x) = (x1², x2², √2·x1·x2).
//! let k = PolyKernel::homogeneous(2);
//! let x = [1.0, 2.0];
//! let y = [3.0, -1.0];
//! let phi = |v: &[f64]| [v[0] * v[0], v[1] * v[1], 2f64.sqrt() * v[0] * v[1]];
//! let (px, py) = (phi(&x), phi(&y));
//! let explicit: f64 = px.iter().zip(&py).map(|(a, b)| a * b).sum();
//! assert!((k.eval(&x, &y) - explicit).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod any;
mod composite;
mod gram;
mod sequence;
mod vector_kernels;

pub use any::AnyKernel;
pub use composite::{NormalizedKernel, ProductKernel, ScaledKernel, SumKernel};
#[allow(deprecated)]
pub use gram::gram_matrix_rows;
pub use gram::{center_gram, gram_matrix, gram_row, gram_rows, is_psd};
pub use sequence::{SpectrumKernel, SpectrumProfile};
pub use vector_kernels::{
    Chi2Kernel, HistogramIntersectionKernel, LinearKernel, PolyKernel, RbfKernel, SigmoidKernel,
};

/// A similarity function `k(a, b)` over samples of (unsized) type `S`.
///
/// Implementations should be symmetric and positive semidefinite so that
/// the optimization problems in `edm-svm` stay convex; [`is_psd`] offers
/// an empirical check for custom kernels.
///
/// The sample type is the *borrowed* form (`[f64]`, `[Token]`, `str`), so
/// one implementation serves owned and borrowed data alike; the Gram
/// helpers accept any owned container that [`std::borrow::Borrow`]s `S`.
///
/// `Sync` is a supertrait: the Gram builders and the SMO Q-row cache
/// evaluate kernels from worker threads, and every kernel here is plain
/// immutable data. `eval` takes `&self`, so implementations have no
/// sanctioned way to mutate state that `Sync` would forbid.
pub trait Kernel<S: ?Sized>: Sync {
    /// Evaluates `k(a, b)`.
    fn eval(&self, a: &S, b: &S) -> f64;
}

impl<S: ?Sized, K: Kernel<S> + ?Sized> Kernel<S> for &K {
    fn eval(&self, a: &S, b: &S) -> f64 {
        K::eval(self, a, b)
    }
}
