//! A closed enum over the six vector kernels, used by model
//! persistence: a saved kernel-generic model (`SvcModel<K>` etc.) is
//! reloaded as `Model<AnyKernel>`, which delegates every evaluation to
//! the concrete kernel it wraps — bitwise identical to evaluating that
//! kernel directly, so save → load round trips preserve decision
//! values exactly.

use serde::{Deserialize, Serialize};

use crate::vector_kernels::{
    Chi2Kernel, HistogramIntersectionKernel, LinearKernel, PolyKernel, RbfKernel, SigmoidKernel,
};
use crate::Kernel;

/// Any of the workspace's vector kernels, dispatched at runtime.
///
/// `eval` forwards to the wrapped kernel's own `eval`, so an
/// `AnyKernel` scores exactly like the kernel it was built from.
// Deliberately exhaustive: the persistence format enumerates exactly
// these kinds, so adding a variant is a schema change and should break
// every match that needs updating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnyKernel {
    /// [`LinearKernel`].
    Linear(LinearKernel),
    /// [`PolyKernel`].
    Poly(PolyKernel),
    /// [`RbfKernel`].
    Rbf(RbfKernel),
    /// [`SigmoidKernel`].
    Sigmoid(SigmoidKernel),
    /// [`HistogramIntersectionKernel`].
    HistogramIntersection(HistogramIntersectionKernel),
    /// [`Chi2Kernel`].
    Chi2(Chi2Kernel),
}

impl AnyKernel {
    /// A short stable tag identifying the wrapped kernel kind, used as
    /// the on-disk discriminant by `edm::persist`.
    pub fn tag(&self) -> &'static str {
        match self {
            AnyKernel::Linear(_) => "linear",
            AnyKernel::Poly(_) => "poly",
            AnyKernel::Rbf(_) => "rbf",
            AnyKernel::Sigmoid(_) => "sigmoid",
            AnyKernel::HistogramIntersection(_) => "hist_intersection",
            AnyKernel::Chi2(_) => "chi2",
        }
    }
}

impl Kernel<[f64]> for AnyKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            AnyKernel::Linear(k) => k.eval(a, b),
            AnyKernel::Poly(k) => k.eval(a, b),
            AnyKernel::Rbf(k) => k.eval(a, b),
            AnyKernel::Sigmoid(k) => k.eval(a, b),
            AnyKernel::HistogramIntersection(k) => k.eval(a, b),
            AnyKernel::Chi2(k) => k.eval(a, b),
        }
    }
}

impl From<LinearKernel> for AnyKernel {
    fn from(k: LinearKernel) -> Self {
        AnyKernel::Linear(k)
    }
}

impl From<PolyKernel> for AnyKernel {
    fn from(k: PolyKernel) -> Self {
        AnyKernel::Poly(k)
    }
}

impl From<RbfKernel> for AnyKernel {
    fn from(k: RbfKernel) -> Self {
        AnyKernel::Rbf(k)
    }
}

impl From<SigmoidKernel> for AnyKernel {
    fn from(k: SigmoidKernel) -> Self {
        AnyKernel::Sigmoid(k)
    }
}

impl From<HistogramIntersectionKernel> for AnyKernel {
    fn from(k: HistogramIntersectionKernel) -> Self {
        AnyKernel::HistogramIntersection(k)
    }
}

impl From<Chi2Kernel> for AnyKernel {
    fn from(k: Chi2Kernel) -> Self {
        AnyKernel::Chi2(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_bitwise() {
        let a = [0.3, 1.7, -2.2];
        let b = [1.1, 0.0, 4.5];
        let cases: Vec<(AnyKernel, f64)> = vec![
            (LinearKernel::new().into(), LinearKernel::new().eval(&a, &b)),
            (PolyKernel::new(3, 0.5, 1.0).into(), PolyKernel::new(3, 0.5, 1.0).eval(&a, &b)),
            (RbfKernel::new(0.7).into(), RbfKernel::new(0.7).eval(&a, &b)),
            (SigmoidKernel::new(0.2, -1.0).into(), SigmoidKernel::new(0.2, -1.0).eval(&a, &b)),
        ];
        for (any, want) in cases {
            assert_eq!(any.eval(&a, &b).to_bits(), want.to_bits(), "{}", any.tag());
        }
        // Histogram kernels need non-negative inputs.
        let h = [0.2, 0.5, 0.3];
        let g = [0.1, 0.6, 0.3];
        let any: AnyKernel = Chi2Kernel::new(1.0).into();
        assert_eq!(any.eval(&h, &g).to_bits(), Chi2Kernel::new(1.0).eval(&h, &g).to_bits());
        let any: AnyKernel = HistogramIntersectionKernel::new().into();
        assert_eq!(
            any.eval(&h, &g).to_bits(),
            HistogramIntersectionKernel::new().eval(&h, &g).to_bits()
        );
    }
}
