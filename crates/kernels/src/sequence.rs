//! Kernels over token sequences.
//!
//! The paper's novel-test-selection application (ref \[14\], Fig. 7)
//! needed a similarity between *assembly programs* — samples that are not
//! vectors. The spectrum kernel counts shared n-grams of tokens, which
//! for instruction streams captures local instruction-sequence structure
//! (the "kernel module" the paper calls the real implementation
//! challenge).

use std::collections::BTreeMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::Kernel;

/// The n-gram spectrum kernel
/// `k(s, t) = Σ_u count_u(s) · count_u(t)` over all n-grams `u`, blended
/// across gram sizes `1..=n` with geometric down-weighting of shorter
/// grams.
///
/// Equivalent to a dot product in the (implicit, exponentially large)
/// space of n-gram counts — a textbook instance of the kernel trick on
/// non-vector data.
///
/// # Example
///
/// ```
/// use edm_kernels::{Kernel, SpectrumKernel};
///
/// let k = SpectrumKernel::new(2);
/// let a = ["ld", "add", "st"];
/// let b = ["ld", "add", "add"];
/// // shares the unigrams ld/add and the bigram (ld, add)
/// assert!(k.eval(&a[..], &b[..]) > 0.0);
/// assert!(k.eval(&a[..], &a[..]) >= k.eval(&a[..], &b[..]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumKernel {
    n: usize,
    /// Weight multiplier per extra token of gram length; 1.0 = flat.
    length_weight: f64,
}

impl SpectrumKernel {
    /// Creates a spectrum kernel over grams of size `1..=n` with flat
    /// weighting.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::weighted(n, 1.0)
    }

    /// Creates a spectrum kernel where a gram of length `L` carries
    /// weight `length_weight^(L-1)` — values above 1 emphasize longer
    /// shared subsequences.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `length_weight <= 0`.
    pub fn weighted(n: usize, length_weight: f64) -> Self {
        assert!(n > 0, "spectrum kernel needs n >= 1");
        assert!(length_weight > 0.0, "length weight must be positive");
        SpectrumKernel { n, length_weight }
    }

    /// Maximum gram length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    // BTreeMap, not HashMap: `eval` folds these counts into a float
    // accumulator, so the iteration order must not depend on a
    // per-process hash seed.
    fn counts<'a, T: Ord>(&self, s: &'a [T], len: usize) -> BTreeMap<&'a [T], f64> {
        let mut m: BTreeMap<&[T], f64> = BTreeMap::new();
        if s.len() >= len {
            for w in s.windows(len) {
                *m.entry(w).or_insert(0.0) += 1.0;
            }
        }
        m
    }
}

impl<T: Ord> Kernel<[T]> for SpectrumKernel {
    fn eval(&self, a: &[T], b: &[T]) -> f64 {
        let mut total = 0.0;
        let mut w = 1.0;
        for len in 1..=self.n {
            let ca = self.counts(a, len);
            let cb = self.counts(b, len);
            // Iterate the smaller map for the sparse dot product.
            let (small, large) = if ca.len() <= cb.len() { (&ca, &cb) } else { (&cb, &ca) };
            let mut s = 0.0;
            for (gram, &cnt) in small {
                if let Some(&other) = large.get(gram) {
                    s += cnt * other;
                }
            }
            total += w * s;
            w *= self.length_weight;
        }
        total
    }
}

/// A precomputed spectrum-kernel profile of one sequence: hashed n-gram
/// counts (weighted by gram length) sorted for merge-join dot products.
///
/// Building a profile is `O(len · n)`; evaluating a pair is then
/// `O(|grams_a| + |grams_b|)` with no hashing — the fast path for flows
/// that score one candidate against hundreds of stored sequences (the
/// Fig. 7 novelty filter).
///
/// Gram identity uses a 64-bit hash; collisions are possible in
/// principle but negligible at the workloads involved (≪ 2³² distinct
/// grams).
///
/// # Example
///
/// ```
/// use edm_kernels::{Kernel, SpectrumKernel, SpectrumProfile};
///
/// let k = SpectrumKernel::new(2);
/// let a = [1u8, 2, 3];
/// let b = [2u8, 3, 4];
/// let pa = SpectrumProfile::build(&a, &k);
/// let pb = SpectrumProfile::build(&b, &k);
/// assert!((pa.dot(&pb) - k.eval(&a[..], &b[..])).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumProfile {
    /// (gram hash, weighted count), sorted by hash.
    grams: Vec<(u64, f64)>,
    norm: f64,
}

impl SpectrumProfile {
    /// Builds the profile of `seq` under `kernel`'s gram sizes and
    /// weighting.
    pub fn build<T: Eq + Hash>(seq: &[T], kernel: &SpectrumKernel) -> Self {
        use std::hash::{DefaultHasher, Hasher};
        // Store c · √w per gram (c = occurrence count, w = the gram
        // length's weight): then dot() accumulates w · c_a · c_b, which
        // is exactly the kernel sum. The gram length is folded into the
        // hash so equal token runs of different lengths stay distinct.
        let mut map: BTreeMap<u64, f64> = BTreeMap::new();
        let mut w = 1.0_f64;
        for len in 1..=kernel.n {
            let sw = w.sqrt();
            if seq.len() >= len {
                for gram in seq.windows(len) {
                    let mut h = DefaultHasher::new();
                    h.write_usize(len);
                    for t in gram {
                        t.hash(&mut h);
                    }
                    *map.entry(h.finish()).or_insert(0.0) += sw;
                }
            }
            w *= kernel.length_weight;
        }
        // BTreeMap iteration is already ascending by hash, the order
        // `dot`'s merge-join requires.
        let grams: Vec<(u64, f64)> = map.into_iter().collect();
        let norm = grams.iter().map(|&(_, c)| c * c).sum::<f64>().sqrt();
        SpectrumProfile { grams, norm }
    }

    /// The raw spectrum-kernel value `k(a, b)`.
    pub fn dot(&self, other: &SpectrumProfile) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.grams.len() && j < other.grams.len() {
            match self.grams[i].0.cmp(&other.grams[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.grams[i].1 * other.grams[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine-normalized similarity in `[0, 1]` (0 when either profile
    /// is empty).
    pub fn cosine(&self, other: &SpectrumProfile) -> f64 {
        let d = self.norm * other.norm;
        if d < 1e-300 {
            0.0
        } else {
            self.dot(other) / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_alphabets_have_zero_similarity() {
        let k = SpectrumKernel::new(3);
        let a = [1u32, 2, 3, 1, 2];
        let b = [7u32, 8, 9];
        assert_eq!(k.eval(&a[..], &b[..]), 0.0);
    }

    #[test]
    fn self_similarity_dominates() {
        let k = SpectrumKernel::new(2);
        let a = ["ld", "add", "st", "ld"];
        let b = ["ld", "st", "st", "add"];
        let kaa = k.eval(&a[..], &a[..]);
        let kab = k.eval(&a[..], &b[..]);
        // Cauchy-Schwarz: k(a,b) <= sqrt(k(a,a) k(b,b))
        let kbb = k.eval(&b[..], &b[..]);
        assert!(kab <= (kaa * kbb).sqrt() + 1e-12);
    }

    #[test]
    fn unigram_kernel_counts_shared_tokens() {
        let k = SpectrumKernel::new(1);
        // 'x' appears 2x in a, 1x in b -> contributes 2; 'y' 1x1 -> 1.
        let a = ['x', 'x', 'y'];
        let b = ['x', 'y', 'z'];
        assert_eq!(k.eval(&a[..], &b[..]), 3.0);
    }

    #[test]
    fn longer_grams_add_similarity() {
        let k1 = SpectrumKernel::new(1);
        let k3 = SpectrumKernel::new(3);
        let a = [5u8, 6, 7, 8];
        let b = [5u8, 6, 7, 9];
        assert!(k3.eval(&a[..], &b[..]) > k1.eval(&a[..], &b[..]));
    }

    #[test]
    fn length_weight_emphasizes_long_matches() {
        let flat = SpectrumKernel::new(2);
        let heavy = SpectrumKernel::weighted(2, 4.0);
        let a = [1u8, 2];
        let b = [1u8, 2];
        // flat: 2 unigrams + 1 bigram = 3; heavy: 2 + 4*1 = 6
        assert_eq!(flat.eval(&a[..], &b[..]), 3.0);
        assert_eq!(heavy.eval(&a[..], &b[..]), 6.0);
    }

    #[test]
    fn empty_sequences_are_fine() {
        let k = SpectrumKernel::new(2);
        let a: [u8; 0] = [];
        let b = [1u8, 2];
        assert_eq!(k.eval(&a[..], &b[..]), 0.0);
        assert_eq!(k.eval(&a[..], &a[..]), 0.0);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use crate::Kernel;

    #[test]
    fn profile_dot_matches_kernel_flat_and_weighted() {
        let seqs: Vec<Vec<u8>> =
            vec![vec![1, 2, 3, 4, 2, 3], vec![3, 3, 3, 3], vec![1, 2, 3], vec![]];
        for k in [SpectrumKernel::new(3), SpectrumKernel::weighted(4, 2.0)] {
            let profiles: Vec<SpectrumProfile> =
                seqs.iter().map(|s| SpectrumProfile::build(s, &k)).collect();
            for a in 0..seqs.len() {
                for b in 0..seqs.len() {
                    let direct = k.eval(&seqs[a][..], &seqs[b][..]);
                    let fast = profiles[a].dot(&profiles[b]);
                    assert!(
                        (direct - fast).abs() < 1e-9,
                        "mismatch at ({a},{b}): {direct} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_is_normalized() {
        let k = SpectrumKernel::weighted(3, 2.0);
        let a = SpectrumProfile::build(&[5u8, 6, 7, 5, 6], &k);
        let b = SpectrumProfile::build(&[5u8, 6, 9], &k);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let c = a.cosine(&b);
        assert!((0.0..=1.0).contains(&c));
        let empty = SpectrumProfile::build::<u8>(&[], &k);
        assert_eq!(empty.cosine(&a), 0.0);
    }
}
