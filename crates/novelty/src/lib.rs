//! # edm-novelty — outlier and novelty detection
//!
//! "Novelty detection is another widely applied unsupervised learning
//! method" (paper §2.4). Four detectors behind one [`NoveltyDetector`]
//! trait:
//!
//! * [`OneClassSvmDetector`] — the paper's preferred choice (one-class
//!   SVM over any kernel), powering Fig. 7 and Fig. 11;
//! * [`MahalanobisDetector`] — covariance-based distance, the classic
//!   multivariate test-outlier screen (paper ref \[24\]);
//! * [`KnnDistanceDetector`] — distance to the k-th nearest training
//!   sample;
//! * [`LofDetector`] — local outlier factor, density-relative scoring.
//!
//! Scores are oriented so that **higher = more novel**, and every
//! detector exposes a threshold calibrated on its training data, so flows
//! can swap detectors without changing logic.

#![forbid(unsafe_code)]

use edm_kernels::{Kernel, RbfKernel};
use edm_linalg::{stats, Cholesky, Matrix};
use edm_svm::{OneClassModel, OneClassParams, OneClassSvm, SvmError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from detector fitting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NoveltyError {
    /// The training inputs were inconsistent or empty.
    InvalidInput(String),
    /// A parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An internal numeric step failed.
    Numeric(String),
}

impl fmt::Display for NoveltyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoveltyError::InvalidInput(m) => write!(f, "invalid novelty input: {m}"),
            NoveltyError::InvalidParameter { name, value, constraint } => {
                write!(f, "parameter {name} = {value} {constraint}")
            }
            NoveltyError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for NoveltyError {}

impl From<SvmError> for NoveltyError {
    fn from(e: SvmError) -> Self {
        NoveltyError::Numeric(e.to_string())
    }
}

fn check_points(x: &[Vec<f64>]) -> Result<usize, NoveltyError> {
    if x.is_empty() {
        return Err(NoveltyError::InvalidInput("no training points".into()));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(NoveltyError::InvalidInput("ragged point rows".into()));
    }
    Ok(d)
}

/// A fitted novelty detector: scores are "higher = more novel", and
/// [`NoveltyDetector::is_novel`] applies the detector's calibrated
/// threshold.
pub trait NoveltyDetector {
    /// Novelty score for `x` (higher = more novel).
    fn score(&self, x: &[f64]) -> f64;

    /// The calibrated decision threshold.
    fn threshold(&self) -> f64;

    /// Whether `x` scores above the threshold.
    fn is_novel(&self, x: &[f64]) -> bool {
        self.score(x) > self.threshold()
    }
}

/// One-class SVM wrapped to the common score orientation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneClassSvmDetector<K = RbfKernel> {
    model: OneClassModel<K>,
}

impl<K: Kernel<[f64]> + Clone> OneClassSvmDetector<K> {
    /// Trains a ν one-class SVM on `x`.
    ///
    /// # Errors
    ///
    /// Propagates SVM training errors.
    pub fn fit(x: &[Vec<f64>], kernel: K, nu: f64) -> Result<Self, NoveltyError> {
        check_points(x)?;
        let model =
            OneClassSvm::new(OneClassParams::default().with_nu(nu)).kernel(kernel).fit(x)?;
        Ok(OneClassSvmDetector { model })
    }

    /// The underlying one-class model.
    pub fn model(&self) -> &OneClassModel<K> {
        &self.model
    }
}

impl<K: Kernel<[f64]>> NoveltyDetector for OneClassSvmDetector<K> {
    fn score(&self, x: &[f64]) -> f64 {
        -self.model.decision_function(x)
    }

    fn threshold(&self) -> f64 {
        0.0
    }
}

/// Mahalanobis-distance detector: `√((x−μ)ᵀ Σ⁻¹ (x−μ))`, thresholded at
/// the `quantile` of the training distances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MahalanobisDetector {
    mean: Vec<f64>,
    chol: Cholesky,
    threshold: f64,
}

impl MahalanobisDetector {
    /// Fits mean/covariance and calibrates the threshold at the given
    /// training-score quantile (e.g. `0.99`).
    ///
    /// # Errors
    ///
    /// [`NoveltyError::InvalidParameter`] for a quantile outside
    /// `(0, 1]`; [`NoveltyError::Numeric`] if the covariance cannot be
    /// factorized even with a diagonal ridge.
    pub fn fit(x: &[Vec<f64>], quantile: f64) -> Result<Self, NoveltyError> {
        if !(quantile > 0.0 && quantile <= 1.0) {
            return Err(NoveltyError::InvalidParameter {
                name: "quantile",
                value: quantile,
                constraint: "must be in (0, 1]",
            });
        }
        let d = check_points(x)?;
        if x.len() < d + 1 {
            return Err(NoveltyError::InvalidInput(format!(
                "need more samples ({}) than features ({d}) for a covariance",
                x.len()
            )));
        }
        let xm = Matrix::from_rows(x);
        let mean = stats::column_means(&xm);
        let mut cov = stats::covariance(&xm);
        let ridge = (0..d).map(|i| cov[(i, i)]).fold(0.0_f64, f64::max) * 1e-8 + 1e-12;
        for i in 0..d {
            cov[(i, i)] += ridge;
        }
        let chol = cov.cholesky().map_err(|e| NoveltyError::Numeric(e.to_string()))?;
        let mut detector = MahalanobisDetector { mean, chol, threshold: f64::INFINITY };
        let scores: Vec<f64> = x.iter().map(|p| detector.score(p)).collect();
        detector.threshold = stats::quantile(&scores, quantile).expect("non-empty scores");
        Ok(detector)
    }
}

impl NoveltyDetector for MahalanobisDetector {
    fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.mean.len(), "feature count mismatch");
        let dev: Vec<f64> = x.iter().zip(&self.mean).map(|(&v, &m)| v - m).collect();
        let z = self.chol.solve_lower(&dev);
        edm_linalg::dot(&z, &z).sqrt()
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// k-th-nearest-neighbor distance detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnDistanceDetector {
    x: Vec<Vec<f64>>,
    k: usize,
    threshold: f64,
}

impl KnnDistanceDetector {
    /// Fits by memorizing the data (borrowing, cloning internally, like
    /// every other `fit` in the workspace); the threshold is the
    /// `quantile` of each training point's own k-NN distance (self
    /// excluded).
    ///
    /// # Errors
    ///
    /// [`NoveltyError::InvalidParameter`] for `k == 0` or a quantile
    /// outside `(0, 1]`; [`NoveltyError::InvalidInput`] if `x` has fewer
    /// than `k + 1` points.
    pub fn fit(x: &[Vec<f64>], k: usize, quantile: f64) -> Result<Self, NoveltyError> {
        if k == 0 {
            return Err(NoveltyError::InvalidParameter {
                name: "k",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !(quantile > 0.0 && quantile <= 1.0) {
            return Err(NoveltyError::InvalidParameter {
                name: "quantile",
                value: quantile,
                constraint: "must be in (0, 1]",
            });
        }
        check_points(x)?;
        if x.len() <= k {
            return Err(NoveltyError::InvalidInput(format!(
                "need more than k = {k} points, got {}",
                x.len()
            )));
        }
        let mut detector = KnnDistanceDetector { x: x.to_vec(), k, threshold: f64::INFINITY };
        let train_scores: Vec<f64> =
            (0..detector.x.len()).map(|i| detector.kth_distance(&detector.x[i], Some(i))).collect();
        detector.threshold = stats::quantile(&train_scores, quantile).expect("non-empty scores");
        Ok(detector)
    }

    /// Consuming variant of [`KnnDistanceDetector::fit`], kept for
    /// callers of the pre-`edm::Predictor` signature.
    ///
    /// # Errors
    ///
    /// As for [`KnnDistanceDetector::fit`].
    #[doc(hidden)]
    #[deprecated(since = "0.1.0", note = "use `fit(&x, k, quantile)`, which borrows its input")]
    pub fn fit_owned(x: Vec<Vec<f64>>, k: usize, quantile: f64) -> Result<Self, NoveltyError> {
        Self::fit(&x, k, quantile)
    }

    fn kth_distance(&self, p: &[f64], exclude: Option<usize>) -> f64 {
        let mut d: Vec<f64> = self
            .x
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != exclude)
            .map(|(_, q)| edm_linalg::sq_dist(p, q))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        d[self.k.min(d.len()) - 1].sqrt()
    }
}

impl NoveltyDetector for KnnDistanceDetector {
    fn score(&self, x: &[f64]) -> f64 {
        self.kth_distance(x, None)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Local outlier factor: the ratio of a point's local reachability
/// density to its neighbors' — ≈1 inside uniform regions, ≫1 for
/// outliers. Thresholded at a training-score quantile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LofDetector {
    x: Vec<Vec<f64>>,
    k: usize,
    lrd: Vec<f64>,
    threshold: f64,
}

impl LofDetector {
    /// Fits LOF structures on `x` (borrowing, cloning internally).
    ///
    /// # Errors
    ///
    /// As for [`KnnDistanceDetector::fit`].
    pub fn fit(x: &[Vec<f64>], k: usize, quantile: f64) -> Result<Self, NoveltyError> {
        if k == 0 {
            return Err(NoveltyError::InvalidParameter {
                name: "k",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !(quantile > 0.0 && quantile <= 1.0) {
            return Err(NoveltyError::InvalidParameter {
                name: "quantile",
                value: quantile,
                constraint: "must be in (0, 1]",
            });
        }
        check_points(x)?;
        let n = x.len();
        if n <= k {
            return Err(NoveltyError::InvalidInput(format!(
                "need more than k = {k} points, got {n}"
            )));
        }
        // Neighbor lists and k-distances of the training data.
        let neighbors: Vec<Vec<(f64, usize)>> = (0..n)
            .map(|i| {
                let mut d: Vec<(f64, usize)> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| (edm_linalg::sq_dist(&x[i], &x[j]).sqrt(), j))
                    .collect();
                d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                d.truncate(k);
                d
            })
            .collect();
        let k_dist: Vec<f64> =
            neighbors.iter().map(|nb| nb.last().map(|&(d, _)| d).unwrap_or(0.0)).collect();
        // Local reachability density of each training point.
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let reach: f64 = neighbors[i].iter().map(|&(d, j)| d.max(k_dist[j])).sum();
                neighbors[i].len() as f64 / reach.max(1e-12)
            })
            .collect();
        let mut detector = LofDetector { x: x.to_vec(), k, lrd, threshold: f64::INFINITY };
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                // training-point LOF via the precomputed structures
                let nb = &neighbors[i];
                let mean_ratio: f64 =
                    nb.iter().map(|&(_, j)| detector.lrd[j]).sum::<f64>() / nb.len() as f64;
                mean_ratio / detector.lrd[i].max(1e-12)
            })
            .collect();
        detector.threshold = stats::quantile(&scores, quantile).expect("non-empty scores");
        Ok(detector)
    }

    /// Consuming variant of [`LofDetector::fit`], kept for callers of
    /// the pre-`edm::Predictor` signature.
    ///
    /// # Errors
    ///
    /// As for [`LofDetector::fit`].
    #[doc(hidden)]
    #[deprecated(since = "0.1.0", note = "use `fit(&x, k, quantile)`, which borrows its input")]
    pub fn fit_owned(x: Vec<Vec<f64>>, k: usize, quantile: f64) -> Result<Self, NoveltyError> {
        Self::fit(&x, k, quantile)
    }

    fn neighbors_of(&self, p: &[f64]) -> Vec<(f64, usize)> {
        let mut d: Vec<(f64, usize)> =
            self.x.iter().enumerate().map(|(j, q)| (edm_linalg::sq_dist(p, q).sqrt(), j)).collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        d.truncate(self.k);
        d
    }
}

impl NoveltyDetector for LofDetector {
    fn score(&self, p: &[f64]) -> f64 {
        let nb = self.neighbors_of(p);
        // k-distance of the training neighbors approximated by their own
        // k-NN distance captured in lrd; reuse reachability formulation.
        let reach: f64 =
            nb.iter().map(|&(d, j)| d.max(1.0 / self.lrd[j].max(1e-12) / self.k as f64)).sum();
        let lrd_p = nb.len() as f64 / reach.max(1e-12);
        let mean_nb_lrd: f64 = nb.iter().map(|&(_, j)| self.lrd[j]).sum::<f64>() / nb.len() as f64;
        mean_nb_lrd / lrd_p.max(1e-12)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect()
    }

    #[test]
    fn all_detectors_flag_a_far_outlier() {
        let x = cloud(80, 1);
        let far = vec![8.0, -7.0];
        let near = vec![0.5, 0.5];

        let svm = OneClassSvmDetector::fit(&x, RbfKernel::new(1.0), 0.05).unwrap();
        assert!(svm.is_novel(&far));
        assert!(!svm.is_novel(&near));

        let maha = MahalanobisDetector::fit(&x, 0.99).unwrap();
        assert!(maha.is_novel(&far));
        assert!(!maha.is_novel(&near));

        let knn = KnnDistanceDetector::fit(&x, 5, 0.99).unwrap();
        assert!(knn.is_novel(&far));
        assert!(!knn.is_novel(&near));

        let lof = LofDetector::fit(&x, 5, 0.99).unwrap();
        assert!(lof.is_novel(&far));
        assert!(!lof.is_novel(&near));
    }

    #[test]
    fn scores_increase_with_distance() {
        let x = cloud(60, 2);
        let maha = MahalanobisDetector::fit(&x, 0.95).unwrap();
        let knn = KnnDistanceDetector::fit(&x, 3, 0.95).unwrap();
        let s = |d: &dyn NoveltyDetector, r: f64| d.score(&[0.5 + r, 0.5]);
        for det in [&maha as &dyn NoveltyDetector, &knn] {
            assert!(s(det, 3.0) > s(det, 1.0));
            assert!(s(det, 10.0) > s(det, 3.0));
        }
    }

    #[test]
    fn mahalanobis_respects_correlation() {
        // Strongly correlated 2-D data: a point off the correlation axis
        // is more novel than an equally-distant point along it.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let t = rng.gen::<f64>() * 4.0 - 2.0;
                vec![t, t + 0.05 * (rng.gen::<f64>() - 0.5)]
            })
            .collect();
        let maha = MahalanobisDetector::fit(&x, 0.99).unwrap();
        let along = maha.score(&[1.5, 1.5]);
        let against = maha.score(&[1.5, -1.5]);
        assert!(against > 10.0 * along, "against {against} vs along {along}");
    }

    #[test]
    fn lof_finds_local_outlier_near_dense_cluster() {
        // Dense cluster + sparse cluster; a point just outside the dense
        // cluster is a *local* outlier even though its absolute distance
        // is small.
        let mut x = Vec::new();
        for i in 0..40 {
            x.push(vec![(i % 8) as f64 * 0.02, (i / 8) as f64 * 0.02]); // dense
        }
        for i in 0..10 {
            x.push(vec![10.0 + (i % 5) as f64, (i / 5) as f64 * 2.0]); // sparse
        }
        let lof = LofDetector::fit(&x, 5, 1.0).unwrap();
        let local_outlier = lof.score(&[0.6, 0.6]); // near dense cluster, outside it
        let sparse_member = lof.score(&[11.0, 1.0]); // inside sparse cluster spacing
        assert!(local_outlier > sparse_member);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let x = cloud(20, 4);
        assert!(MahalanobisDetector::fit(&x, 0.0).is_err());
        assert!(KnnDistanceDetector::fit(&x, 0, 0.9).is_err());
        assert!(KnnDistanceDetector::fit(&x, 25, 0.9).is_err());
        assert!(LofDetector::fit(&x, 3, 1.5).is_err());
    }
}
