//! # edm-sync — debug-checked synchronization primitives
//!
//! Drop-in wrappers around [`std::sync::Mutex`], [`std::sync::RwLock`],
//! and [`std::sync::Condvar`] that cost one relaxed atomic load per
//! operation in release builds, but — under `cfg(debug_assertions)` or
//! the `EDM_SYNC_CHECK` env knob — turn every existing test run into a
//! concurrency audit:
//!
//! * **Lock-order checking.** Each lock carries a `&'static str`
//!   *class* name. The checker records an `acquired-while-held` edge
//!   graph across all threads and, the moment an acquisition would
//!   close a cycle (thread 1 takes A then B, thread 2 takes B then A),
//!   panics with both classes and the established path — at the
//!   acquisition site, before the process can actually deadlock.
//!   `EDM_SYNC_ORDER=warn` downgrades the panic to a reported event.
//! * **Held-too-long warnings.** A guard that lives longer than
//!   `EDM_SYNC_HELD_MS` (default 100 ms; `0` disables) reports a
//!   [`SyncEvent::HeldTooLong`] on release, so a lock held across a
//!   slow predictor call or a blocking socket write shows up in tests
//!   long before it shows up as tail latency.
//! * **Reporting hook.** Events go to stderr and, when a hook is
//!   installed via [`set_report_hook`], to that hook — `edm-trace`
//!   installs one that feeds the `sync.lock.*` trace counters, so the
//!   warnings surface in trace manifests and `/metrics`.
//!
//! The wrappers mirror the std poisoning API ([`LockResult`]), so a
//! call site migrates mechanically:
//!
//! ```
//! use edm_sync::{DbgCondvar, DbgMutex};
//!
//! static QUEUE: DbgMutex<Vec<u32>> = DbgMutex::new("doc.queue", Vec::new());
//!
//! let mut q = QUEUE.lock().expect("queue poisoned");
//! q.push(7);
//! ```
//!
//! Class names are *classes*, not instances (lockdep-style): every
//! `Slot` in a pool shares one class, and same-class nesting is
//! deliberately not an error — two distinct slots may legitimately be
//! held together. The checker therefore finds order inversions
//! *between* subsystems, which is where real deadlocks live.
//!
//! This crate is dependency-free and sits at the bottom of the
//! workspace graph so `edm-trace` itself can run on checked locks.
//! Library code reaches it as `edm_par::sync` (a re-export), keeping
//! `edm-par` the single sanctioned concurrency surface.

#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{
    Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, WaitTimeoutResult,
};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state caches for the env knobs: resolved once, overridable
/// programmatically at any time.
static CHECK: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static ORDER_MODE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
/// Held-warn threshold in ns; `u64::MAX` = unresolved, `0` = disabled.
static HELD_WARN_NS: AtomicU64 = AtomicU64::new(u64::MAX);
/// Monotonic token ids so out-of-order guard drops pop the right entry.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

/// True when the debug checks are active. Resolved from
/// `EDM_SYNC_CHECK` on first call (`1`/`on` forces on, `0`/`off`
/// forces off); defaults to on under `cfg(debug_assertions)` and off
/// in release builds. This is the entire release-mode cost of every
/// wrapper: one relaxed load and a branch.
pub fn checking_enabled() -> bool {
    match CHECK.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => init_checking(),
    }
}

#[cold]
fn init_checking() -> bool {
    let on = match std::env::var("EDM_SYNC_CHECK") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")),
        Err(_) => cfg!(debug_assertions),
    };
    CHECK.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Forces checking on or off, overriding `EDM_SYNC_CHECK` (tests and
/// harnesses that must not depend on ambient env state).
pub fn set_checking(on: bool) {
    CHECK.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// What to do when an acquisition would invert the established lock
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderMode {
    /// Report a [`SyncEvent::OrderInversion`] and continue (the edge is
    /// *not* added, so the report fires again on recurrence).
    Warn,
    /// Panic at the acquisition site (the default): the inversion is a
    /// latent deadlock and the backtrace points at it.
    Panic,
}

fn order_mode() -> OrderMode {
    match ORDER_MODE.load(Ordering::Relaxed) {
        STATE_OFF => OrderMode::Warn,
        STATE_ON => OrderMode::Panic,
        _ => init_order_mode(),
    }
}

#[cold]
fn init_order_mode() -> OrderMode {
    let warn = std::env::var("EDM_SYNC_ORDER").is_ok_and(|v| v.eq_ignore_ascii_case("warn"));
    ORDER_MODE.store(if warn { STATE_OFF } else { STATE_ON }, Ordering::Relaxed);
    if warn {
        OrderMode::Warn
    } else {
        OrderMode::Panic
    }
}

/// Overrides the inversion response, superseding `EDM_SYNC_ORDER`.
pub fn set_order_mode(mode: OrderMode) {
    let v = if mode == OrderMode::Warn { STATE_OFF } else { STATE_ON };
    ORDER_MODE.store(v, Ordering::Relaxed);
}

fn held_warn_ns() -> u64 {
    let v = HELD_WARN_NS.load(Ordering::Relaxed);
    if v != u64::MAX {
        return v;
    }
    init_held_warn()
}

#[cold]
fn init_held_warn() -> u64 {
    let ms = std::env::var("EDM_SYNC_HELD_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(100);
    let ns = ms.saturating_mul(1_000_000);
    HELD_WARN_NS.store(ns, Ordering::Relaxed);
    ns
}

/// Overrides the held-too-long threshold (`None` disables the check),
/// superseding `EDM_SYNC_HELD_MS`.
pub fn set_held_warn(threshold: Option<Duration>) {
    let ns = threshold.map_or(0, |d| d.as_nanos().min(u64::MAX as u128 - 1) as u64);
    HELD_WARN_NS.store(ns, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Events and the report hook
// ---------------------------------------------------------------------

/// A diagnostic event from the debug sync layer.
#[derive(Debug, Clone)]
pub enum SyncEvent {
    /// A guard outlived the held-too-long threshold.
    HeldTooLong {
        /// Lock class of the long-held guard.
        name: &'static str,
        /// How long the guard was held.
        held: Duration,
    },
    /// An acquisition contradicted the established lock order
    /// (reported instead of panicking under [`OrderMode::Warn`]).
    OrderInversion {
        /// Class already held by the acquiring thread.
        holding: &'static str,
        /// Class whose acquisition would close the cycle.
        acquiring: &'static str,
        /// The established `acquiring → … → holding` path, rendered.
        path: String,
    },
}

type Hook = Box<dyn Fn(&SyncEvent) + Send + Sync>;

fn hook_slot() -> &'static Mutex<Option<Hook>> {
    static HOOK: OnceLock<Mutex<Option<Hook>>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Installs (or replaces) the global event hook. `edm-trace` installs
/// one that feeds the `sync.lock.*` counters; tests install capturing
/// hooks. Events are rare (warnings only), so the hook is not a hot
/// path.
pub fn set_report_hook(hook: Hook) {
    *hook_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(hook);
}

thread_local! {
    /// Per-thread stack of held lock classes (`(class, token id)`).
    static HELD: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    /// Reentrancy latch: while reporting, the wrappers stop tracking so
    /// a hook that itself takes checked locks cannot recurse.
    static IN_REPORT: Cell<bool> = const { Cell::new(false) };
}

struct ReportLatch;

impl Drop for ReportLatch {
    fn drop(&mut self) {
        IN_REPORT.with(|c| c.set(false));
    }
}

fn report(event: &SyncEvent) {
    IN_REPORT.with(|c| c.set(true));
    let _latch = ReportLatch;
    match event {
        SyncEvent::HeldTooLong { name, held } => {
            eprintln!(
                "edm-sync: lock \"{name}\" held {:.1} ms (held-too-long)",
                held.as_secs_f64() * 1e3
            );
        }
        SyncEvent::OrderInversion { holding, acquiring, path } => {
            eprintln!(
                "edm-sync: lock order inversion: acquiring \"{acquiring}\" while holding \"{holding}\" (established order: {path})"
            );
        }
    }
    let hook = hook_slot().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(h) = hook.as_ref() {
        h(event);
    }
}

// ---------------------------------------------------------------------
// The order graph
// ---------------------------------------------------------------------

#[derive(Default)]
struct OrderGraph {
    /// `from → {to}`: `to` was acquired while `from` was held.
    edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
}

fn graph() -> &'static Mutex<OrderGraph> {
    static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(OrderGraph::default()))
}

/// Shortest established path `from → … → to`, if any (BFS).
fn find_path(
    edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
    from: &'static str,
    to: &'static str,
) -> Option<Vec<&'static str>> {
    let mut parents: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = parents[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &next in edges.get(node).into_iter().flatten() {
            if next != from && !parents.contains_key(next) {
                parents.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Records `holding → acquiring`; on a would-be cycle the edge is not
/// added and the inversion is reported (panic or warn by mode).
fn record_edge(holding: &'static str, acquiring: &'static str) {
    let rendered = {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        if g.edges.get(holding).is_some_and(|tos| tos.contains(acquiring)) {
            return; // known-good edge, O(log n) fast path
        }
        match find_path(&g.edges, acquiring, holding) {
            None => {
                g.edges.entry(holding).or_default().insert(acquiring);
                return;
            }
            Some(path) => path.join(" -> "),
        }
        // Graph lock released here, before any reporting or panic.
    };
    let event = SyncEvent::OrderInversion { holding, acquiring, path: rendered.clone() };
    if order_mode() == OrderMode::Panic {
        panic!(
            "edm-sync: lock order inversion: acquiring \"{acquiring}\" while holding \"{holding}\" (established order: {rendered})"
        );
    }
    report(&event);
}

/// Every `from → to` edge the runtime checker has recorded so far
/// (diagnostic snapshot; used by tests and harness dumps).
pub fn order_edges() -> Vec<(String, String)> {
    let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    g.edges
        .iter()
        .flat_map(|(from, tos)| tos.iter().map(move |to| (from.to_string(), to.to_string())))
        .collect()
}

/// The calling thread's currently held lock classes, outermost first
/// (diagnostic snapshot; empty when checking is off).
pub fn held_stack() -> Vec<&'static str> {
    HELD.with(|h| h.borrow().iter().map(|&(name, _)| name).collect())
}

// ---------------------------------------------------------------------
// Acquisition bookkeeping
// ---------------------------------------------------------------------

/// Checker-side state carried by a live guard.
struct HeldToken {
    name: &'static str,
    id: u64,
    since: Instant,
}

/// Called before blocking on the underlying lock so a true deadlock
/// still reports: the edge (and any inversion panic) lands first.
fn on_acquire(name: &'static str) -> Option<HeldToken> {
    if !checking_enabled() || IN_REPORT.with(Cell::get) {
        return None;
    }
    let prev = HELD.with(|h| h.borrow().last().map(|&(n, _)| n));
    if let Some(holding) = prev {
        // Same-class nesting is legal (two slots of one pool); the
        // class graph cannot distinguish instances, so no self-edges.
        if holding != name {
            record_edge(holding, name);
        }
    }
    let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    HELD.with(|h| h.borrow_mut().push((name, id)));
    Some(HeldToken { name, id, since: Instant::now() })
}

/// Called after the underlying guard is released.
fn on_release(token: HeldToken) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        // Guards may drop out of order; pop by token id from the top.
        if let Some(pos) = held.iter().rposition(|&(_, id)| id == token.id) {
            held.remove(pos);
        }
    });
    let threshold = held_warn_ns();
    if threshold > 0 && !IN_REPORT.with(Cell::get) {
        let held_for = token.since.elapsed();
        if held_for.as_nanos() as u64 >= threshold {
            report(&SyncEvent::HeldTooLong { name: token.name, held: held_for });
        }
    }
}

// ---------------------------------------------------------------------
// DbgMutex
// ---------------------------------------------------------------------

/// A [`Mutex`] with a lock-class name and debug-mode order checking.
/// See the [crate docs](self) for semantics and knobs.
#[derive(Debug, Default)]
pub struct DbgMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> DbgMutex<T> {
    /// A new checked mutex under lock class `name`. `const`, so checked
    /// locks can live in statics just like [`Mutex`].
    pub const fn new(name: &'static str, value: T) -> Self {
        DbgMutex { name, inner: Mutex::new(value) }
    }

    /// The lock class this mutex was constructed under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, mirroring [`Mutex::lock`]'s poisoning
    /// contract: a poisoned lock still hands back a usable guard inside
    /// the error, so `unwrap_or_else(PoisonError::into_inner)` recovery
    /// migrates unchanged.
    pub fn lock(&self) -> LockResult<DbgMutexGuard<'_, T>> {
        let held = on_acquire(self.name);
        match self.inner.lock() {
            Ok(g) => Ok(DbgMutexGuard { name: self.name, inner: Some(g), held }),
            Err(p) => Err(PoisonError::new(DbgMutexGuard {
                name: self.name,
                inner: Some(p.into_inner()),
                held,
            })),
        }
    }

    /// Consumes the mutex, returning the inner value (poisoning
    /// mirrored from [`Mutex::into_inner`]).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

/// RAII guard for [`DbgMutex`]; releases the lock, then runs the
/// checker's release bookkeeping (so reporting never happens while the
/// lock is still held).
#[must_use = "dropping a guard immediately releases the lock"]
#[derive(Debug)]
pub struct DbgMutexGuard<'a, T> {
    name: &'static str,
    inner: Option<MutexGuard<'a, T>>,
    held: Option<HeldToken>,
}

impl<T> Deref for DbgMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered to a condvar wait")
    }
}

impl<T> DerefMut for DbgMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered to a condvar wait")
    }
}

impl<T> Drop for DbgMutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take()); // release the lock first
        if let Some(token) = self.held.take() {
            on_release(token);
        }
    }
}

impl std::fmt::Debug for HeldToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeldToken").field("name", &self.name).field("id", &self.id).finish()
    }
}

// ---------------------------------------------------------------------
// DbgCondvar
// ---------------------------------------------------------------------

/// A [`Condvar`] that waits on [`DbgMutexGuard`]s, keeping the
/// checker's held-stack consistent across the wait (the lock is
/// released while parked, re-tracked on wakeup).
#[derive(Debug, Default)]
pub struct DbgCondvar {
    inner: Condvar,
}

impl DbgCondvar {
    /// A new condition variable (`const`, like [`Condvar::new`]).
    pub const fn new() -> Self {
        DbgCondvar { inner: Condvar::new() }
    }

    /// Blocks until notified, releasing `guard` while parked. Callers
    /// must recheck their predicate in a loop, exactly as with
    /// [`Condvar::wait`].
    pub fn wait<'a, T>(&self, mut guard: DbgMutexGuard<'a, T>) -> LockResult<DbgMutexGuard<'a, T>> {
        let name = guard.name;
        if let Some(token) = guard.held.take() {
            on_release(token);
        }
        let inner = guard.inner.take().expect("guard surrendered to a condvar wait");
        // edm-allow(condvar-predicate-loop): wrapper forwards the wait; the predicate recheck loop is the caller's duty
        match self.inner.wait(inner) {
            Ok(g) => Ok(reguard(name, g)),
            Err(p) => Err(PoisonError::new(reguard(name, p.into_inner()))),
        }
    }

    /// Blocks until notified or `timeout` elapses; see
    /// [`Condvar::wait_timeout`].
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: DbgMutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(DbgMutexGuard<'a, T>, WaitTimeoutResult)> {
        let name = guard.name;
        if let Some(token) = guard.held.take() {
            on_release(token);
        }
        let inner = guard.inner.take().expect("guard surrendered to a condvar wait");
        // edm-allow(condvar-predicate-loop): wrapper forwards the wait; the predicate recheck loop is the caller's duty
        match self.inner.wait_timeout(inner, timeout) {
            Ok((g, res)) => Ok((reguard(name, g), res)),
            Err(p) => {
                let (g, res) = p.into_inner();
                Err(PoisonError::new((reguard(name, g), res)))
            }
        }
    }

    /// Wakes one parked waiter; see [`Condvar::notify_one`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter; see [`Condvar::notify_all`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

fn reguard<'a, T>(name: &'static str, inner: MutexGuard<'a, T>) -> DbgMutexGuard<'a, T> {
    DbgMutexGuard { name, inner: Some(inner), held: on_acquire(name) }
}

// ---------------------------------------------------------------------
// DbgRwLock
// ---------------------------------------------------------------------

/// An [`RwLock`] with a lock-class name; readers and writers share one
/// class in the order graph (a read-lock can deadlock against a
/// writer exactly like a mutex can).
#[derive(Debug, Default)]
pub struct DbgRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> DbgRwLock<T> {
    /// A new checked rwlock under lock class `name`.
    pub const fn new(name: &'static str, value: T) -> Self {
        DbgRwLock { name, inner: RwLock::new(value) }
    }

    /// The lock class this rwlock was constructed under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires shared read access; see [`RwLock::read`].
    pub fn read(&self) -> LockResult<DbgRwLockReadGuard<'_, T>> {
        let held = on_acquire(self.name);
        match self.inner.read() {
            Ok(g) => Ok(DbgRwLockReadGuard { inner: Some(g), held }),
            Err(p) => {
                Err(PoisonError::new(DbgRwLockReadGuard { inner: Some(p.into_inner()), held }))
            }
        }
    }

    /// Acquires exclusive write access; see [`RwLock::write`].
    pub fn write(&self) -> LockResult<DbgRwLockWriteGuard<'_, T>> {
        let held = on_acquire(self.name);
        match self.inner.write() {
            Ok(g) => Ok(DbgRwLockWriteGuard { inner: Some(g), held }),
            Err(p) => {
                Err(PoisonError::new(DbgRwLockWriteGuard { inner: Some(p.into_inner()), held }))
            }
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

/// Shared-read RAII guard for [`DbgRwLock`].
#[must_use = "dropping a guard immediately releases the lock"]
#[derive(Debug)]
pub struct DbgRwLockReadGuard<'a, T> {
    inner: Option<RwLockReadGuard<'a, T>>,
    held: Option<HeldToken>,
}

impl<T> Deref for DbgRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard always present")
    }
}

impl<T> Drop for DbgRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(token) = self.held.take() {
            on_release(token);
        }
    }
}

/// Exclusive-write RAII guard for [`DbgRwLock`].
#[must_use = "dropping a guard immediately releases the lock"]
#[derive(Debug)]
pub struct DbgRwLockWriteGuard<'a, T> {
    inner: Option<RwLockWriteGuard<'a, T>>,
    held: Option<HeldToken>,
}

impl<T> Deref for DbgRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard always present")
    }
}

impl<T> DerefMut for DbgRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard always present")
    }
}

impl<T> Drop for DbgRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(token) = self.held.take() {
            on_release(token);
        }
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Serializes tests that flip process-global switches (order mode,
    /// held threshold, the hook).
    fn switch_guard() -> MutexGuard<'static, ()> {
        static SWITCHES: Mutex<()> = Mutex::new(());
        set_checking(true);
        SWITCHES.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn captured_events() -> &'static Mutex<Vec<SyncEvent>> {
        static EVENTS: OnceLock<Mutex<Vec<SyncEvent>>> = OnceLock::new();
        EVENTS.get_or_init(|| {
            set_report_hook(Box::new(|ev| {
                events_cell().lock().expect("events").push(ev.clone());
            }));
            Mutex::new(Vec::new())
        })
    }

    fn events_cell() -> &'static Mutex<Vec<SyncEvent>> {
        static CELL: OnceLock<Mutex<Vec<SyncEvent>>> = OnceLock::new();
        CELL.get_or_init(|| Mutex::new(Vec::new()))
    }

    #[test]
    fn lock_roundtrip_and_stack_hygiene() {
        set_checking(true);
        let m = DbgMutex::new("test.basic", 41u32);
        {
            let mut g = m.lock().expect("lock");
            *g += 1;
            assert!(held_stack().contains(&"test.basic"));
        }
        assert!(!held_stack().contains(&"test.basic"));
        assert_eq!(*m.lock().expect("lock"), 42);
    }

    #[test]
    fn consistent_order_across_threads_is_silent() {
        set_checking(true);
        let a = Arc::new(DbgMutex::new("test.ord.outer", ()));
        let b = Arc::new(DbgMutex::new("test.ord.inner", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = std::thread::spawn(move || {
            for _ in 0..50 {
                let _ga = a2.lock().expect("a");
                let _gb = b2.lock().expect("b");
            }
        });
        for _ in 0..50 {
            let _ga = a.lock().expect("a");
            let _gb = b.lock().expect("b");
        }
        t.join().expect("join");
        assert!(
            order_edges().contains(&("test.ord.outer".to_string(), "test.ord.inner".to_string()))
        );
    }

    #[test]
    fn seeded_inversion_panics_at_the_acquisition_site() {
        let _switches = switch_guard();
        set_order_mode(OrderMode::Panic);
        let a = DbgMutex::new("test.inv.a", ());
        let b = DbgMutex::new("test.inv.b", ());
        {
            let _ga = a.lock().expect("a");
            let _gb = b.lock().expect("b");
        }
        let err = std::panic::catch_unwind(|| {
            let _gb = b.lock().expect("b");
            let _ga = a.lock().expect("a"); // inverts a → b
        })
        .expect_err("the inverted acquisition must panic");
        let msg =
            err.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".to_string());
        assert!(msg.contains("test.inv.a") && msg.contains("test.inv.b"), "{msg}");
        assert!(msg.contains("inversion"), "{msg}");
        // The failed acquisition never touched the std mutex: not poisoned.
        assert!(a.lock().is_ok());
        // The thread's held stack unwound cleanly.
        assert!(held_stack().is_empty(), "{:?}", held_stack());
    }

    #[test]
    fn warn_mode_reports_instead_of_panicking() {
        let _switches = switch_guard();
        captured_events();
        set_order_mode(OrderMode::Warn);
        {
            let a = DbgMutex::new("test.warn.a", ());
            let b = DbgMutex::new("test.warn.b", ());
            {
                let _ga = a.lock().expect("a");
                let _gb = b.lock().expect("b");
            }
            let _gb = b.lock().expect("b");
            let _ga = a.lock().expect("a"); // inversion, but warn mode
        }
        set_order_mode(OrderMode::Panic);
        let events = events_cell().lock().expect("events");
        assert!(
            events.iter().any(|e| matches!(
                e,
                SyncEvent::OrderInversion { holding: "test.warn.b", acquiring: "test.warn.a", .. }
            )),
            "no inversion event captured: {events:?}"
        );
    }

    #[test]
    fn held_too_long_reports_on_release() {
        let _switches = switch_guard();
        captured_events();
        set_held_warn(Some(Duration::from_millis(1)));
        {
            let m = DbgMutex::new("test.slow", ());
            let _g = m.lock().expect("lock");
            std::thread::sleep(Duration::from_millis(10));
        }
        set_held_warn(Some(Duration::from_millis(100)));
        let events = events_cell().lock().expect("events");
        assert!(
            events.iter().any(|e| matches!(e, SyncEvent::HeldTooLong { name: "test.slow", .. })),
            "no held-too-long event captured: {events:?}"
        );
    }

    #[test]
    fn condvar_wait_keeps_the_checker_consistent() {
        set_checking(true);
        let gate = Arc::new((DbgMutex::new("test.cv.gate", false), DbgCondvar::new()));
        let gate2 = Arc::clone(&gate);
        let (tx, rx) = mpsc::channel::<()>();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*gate2;
            let mut ready = lock.lock().expect("gate");
            tx.send(()).expect("signal");
            while !*ready {
                ready = cv.wait(ready).expect("wait");
            }
            assert!(held_stack().contains(&"test.cv.gate"));
        });
        rx.recv().expect("waiter started");
        let (lock, cv) = &*gate;
        *lock.lock().expect("gate") = true;
        cv.notify_all();
        t.join().expect("join");
        assert!(!held_stack().contains(&"test.cv.gate"));
    }

    #[test]
    fn wait_timeout_roundtrips_the_guard() {
        set_checking(true);
        let lock = DbgMutex::new("test.cv.timeout", 7u32);
        let cv = DbgCondvar::new();
        let g = lock.lock().expect("lock");
        let (g, res) = cv.wait_timeout(g, Duration::from_millis(1)).expect("wait_timeout");
        assert!(res.timed_out());
        assert_eq!(*g, 7);
        drop(g);
        assert!(!held_stack().contains(&"test.cv.timeout"));
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        set_checking(true);
        let l = DbgRwLock::new("test.rw", 5u32);
        {
            let r = l.read().expect("read");
            assert_eq!(*r, 5);
        }
        {
            let mut w = l.write().expect("write");
            *w = 6;
        }
        assert_eq!(*l.read().expect("read"), 6);
        assert!(!held_stack().contains(&"test.rw"));
    }

    #[test]
    fn disabled_checking_tracks_nothing() {
        let _switches = switch_guard();
        set_checking(false);
        let m = DbgMutex::new("test.off", ());
        let g = m.lock().expect("lock");
        assert!(held_stack().is_empty());
        drop(g);
        set_checking(true);
    }

    #[test]
    fn poison_recovery_matches_std() {
        set_checking(true);
        let m = Arc::new(DbgMutex::new("test.poison", 1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().expect("lock");
            panic!("poison it");
        })
        .join();
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 1);
    }
}
