//! The product generative model: correlated parametric tests via a
//! factor structure, plus defect and tail mechanisms.

use edm_linalg::sample::standard_normal;
use edm_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One tested device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Sequential device id (unique per generated stream).
    pub id: u64,
    /// Lot index (time order: lot 0 was manufactured first).
    pub lot: u32,
    /// Parametric measurements, one per test.
    pub measurements: Vec<f64>,
    /// Ground truth: carries the latent defect (field-fail mechanism).
    pub latent_defect: bool,
    /// Ground truth: affected by the rare tail mechanism (Fig. 12).
    pub tail_mechanism: bool,
}

/// The product's generative model.
///
/// Measurements follow `x = μ + L·f + σ·ε` with shared factors `f` —
/// the factor loadings `L` create the strong inter-test correlations
/// (the 0.97 of Fig. 12) that make single tests look redundant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductModel {
    /// Test names (for reports).
    test_names: Vec<String>,
    /// Mean per test.
    mu: Vec<f64>,
    /// Factor loadings, `n_tests x n_factors`.
    loadings: Matrix,
    /// Per-test independent noise sigma.
    noise: Vec<f64>,
    /// Spec limits `(lo, hi)` per test.
    limits: Vec<(f64, f64)>,
    /// Per-lot drift added to every mean (slow process wander).
    drift_per_lot: Vec<f64>,
    /// Probability a device carries the latent defect.
    defect_rate: f64,
    /// Shift applied to measurements of a latent-defect device
    /// (chosen to stay within limits but off the correlation manifold).
    defect_shift: Vec<f64>,
    /// Optional rare tail mechanism: `(rate, per-test shift)`.
    tail: Option<(f64, Vec<f64>)>,
}

impl ProductModel {
    /// The reference automotive product: 8 parametric tests.
    ///
    /// * tests 0..3 share a strong factor — test 0 ("test_A") correlates
    ///   ≈ 0.97 with tests 1 and 2 ("test_1", "test_2"), the Fig. 12
    ///   setup;
    /// * tests 3..8 ("iddq", "vmin", "fmax", "leak_hi", "leak_lo") mix
    ///   two more factors;
    /// * the latent defect shifts `iddq`/`vmin`/`leak_hi` jointly by an
    ///   in-spec amount — invisible per-test, an outlier in the right
    ///   3-D subspace (Fig. 11).
    pub fn automotive() -> Self {
        let test_names: Vec<String> =
            ["test_A", "test_1", "test_2", "test_3", "iddq", "vmin", "fmax", "leak_hi"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let n = test_names.len();
        // Three factors: f0 drives the A/1/2/3 family, f1 the power
        // family, f2 speed.
        let loadings = Matrix::from_rows(&[
            vec![1.00, 0.00, 0.00], // test_A
            vec![0.98, 0.00, 0.00], // test_1
            vec![0.97, 0.05, 0.00], // test_2
            vec![0.80, 0.10, 0.00], // test_3
            vec![0.10, 0.90, 0.00], // iddq
            vec![0.00, 0.70, 0.30], // vmin
            vec![0.30, 0.50, 0.80], // fmax (speed rides on all three factors)
            vec![0.05, 0.85, 0.10], // leak_hi
        ]);
        let noise = vec![0.18, 0.18, 0.20, 0.40, 0.35, 0.45, 0.30, 0.40];
        let mu = vec![10.0, 20.0, 30.0, 40.0, 5.0, 0.75, 2.2, 1.0];
        // Limits at per-test guardbands: test_A is specified loosest in
        // its family (4.3 sigma) while tests 1/2 are tight (3.8 sigma),
        // so on healthy material every A-fail is also a 1/2-fail — the
        // premise of the Fig. 12 drop recommendation.
        let guard = [4.3, 3.8, 3.8, 4.0, 4.0, 4.0, 4.0, 4.0];
        let limits = (0..n)
            .map(|i| {
                let var: f64 = (0..3).map(|k| loadings[(i, k)] * loadings[(i, k)]).sum::<f64>()
                    + noise[i] * noise[i];
                let s = var.sqrt();
                (mu[i] - guard[i] * s, mu[i] + guard[i] * s)
            })
            .collect();
        ProductModel {
            test_names,
            mu,
            loadings,
            noise,
            limits,
            drift_per_lot: vec![0.01, 0.012, 0.008, 0.01, 0.004, 0.002, -0.003, 0.005],
            defect_rate: 5e-5,
            // Joint in-spec shift on iddq (+), vmin (+), leak_hi (-):
            // each ~2.5 sigma of the per-test noise, but in a direction
            // the factor structure never produces.
            defect_shift: vec![0.0, 0.0, 0.0, 0.0, 1.6, 1.4, 0.0, -1.5],
            tail: None,
        }
    }

    /// Enables the Fig. 12 tail mechanism: at `rate`, a device's
    /// `test_A` measurement shifts by `shift` (breaking the A↔1/2
    /// correlation) without moving any other test.
    pub fn with_tail_mechanism(mut self, rate: f64, shift: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        let mut v = vec![0.0; self.n_tests()];
        v[0] = shift;
        self.tail = Some((rate, v));
        self
    }

    /// Sets the latent-defect rate (builder-style).
    pub fn with_defect_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.defect_rate = rate;
        self
    }

    /// A sister product: same mechanisms and factor structure, shifted
    /// means and slightly different noise (the paper's Fig. 11 plot 3).
    pub fn sister_product(&self) -> ProductModel {
        let mut s = self.clone();
        for (i, m) in s.mu.iter_mut().enumerate() {
            *m += 0.3 + 0.05 * i as f64;
        }
        for n in &mut s.noise {
            *n *= 1.1;
        }
        // Limits move with the means (same guardbands as the parent).
        let guard = [4.3, 3.8, 3.8, 4.0, 4.0, 4.0, 4.0, 4.0];
        let n_tests = s.n_tests();
        s.limits = (0..n_tests)
            .map(|i| {
                let var: f64 = (0..s.loadings.cols())
                    .map(|k| s.loadings[(i, k)] * s.loadings[(i, k)])
                    .sum::<f64>()
                    + s.noise[i] * s.noise[i];
                let sd = var.sqrt();
                (s.mu[i] - guard[i] * sd, s.mu[i] + guard[i] * sd)
            })
            .collect();
        s
    }

    /// Number of parametric tests.
    pub fn n_tests(&self) -> usize {
        self.test_names.len()
    }

    /// Test names.
    pub fn test_names(&self) -> &[String] {
        &self.test_names
    }

    /// Spec limits per test.
    pub fn spec_limits(&self) -> &[(f64, f64)] {
        &self.limits
    }

    /// Index of a test by name.
    pub fn test_index(&self, name: &str) -> Option<usize> {
        self.test_names.iter().position(|n| n == name)
    }

    /// Generates one device in the given lot.
    pub fn generate_device<R: Rng + ?Sized>(&self, id: u64, lot: u32, rng: &mut R) -> Device {
        let k = self.loadings.cols();
        let f: Vec<f64> = (0..k).map(|_| standard_normal(rng)).collect();
        let mut m = Vec::with_capacity(self.n_tests());
        for i in 0..self.n_tests() {
            let mut v = self.mu[i] + self.drift_per_lot[i] * lot as f64;
            for (kk, &fk) in f.iter().enumerate() {
                v += self.loadings[(i, kk)] * fk;
            }
            v += self.noise[i] * standard_normal(rng);
            m.push(v);
        }
        let latent_defect = rng.gen::<f64>() < self.defect_rate;
        if latent_defect {
            for (v, &d) in m.iter_mut().zip(&self.defect_shift) {
                *v += d;
            }
        }
        let mut tail_mechanism = false;
        if let Some((rate, shift)) = &self.tail {
            if rng.gen::<f64>() < *rate {
                tail_mechanism = true;
                for (v, &d) in m.iter_mut().zip(shift) {
                    *v += d;
                }
            }
        }
        Device { id, lot, measurements: m, latent_defect, tail_mechanism }
    }

    /// Generates a lot of `n` devices with sequential ids starting at
    /// `lot as u64 * 1_000_000`.
    pub fn generate_lot<R: Rng + ?Sized>(&self, lot: u32, n: usize, rng: &mut R) -> Vec<Device> {
        let base = lot as u64 * 1_000_000;
        (0..n).map(|i| self.generate_device(base + i as u64, lot, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix_of(devices: &[Device]) -> Matrix {
        Matrix::from_rows(&devices.iter().map(|d| d.measurements.clone()).collect::<Vec<_>>())
    }

    #[test]
    fn test_a_correlates_strongly_with_tests_1_and_2() {
        let p = ProductModel::automotive();
        let mut rng = StdRng::seed_from_u64(1);
        let lot = p.generate_lot(0, 5000, &mut rng);
        let x = matrix_of(&lot);
        let corr = stats::correlation_matrix(&x);
        assert!(corr[(0, 1)] > 0.95, "A-1 corr {}", corr[(0, 1)]);
        assert!(corr[(0, 2)] > 0.94, "A-2 corr {}", corr[(0, 2)]);
        // the power family is NOT strongly correlated with the A family
        assert!(corr[(0, 4)].abs() < 0.3, "A-iddq corr {}", corr[(0, 4)]);
    }

    #[test]
    fn latent_defect_devices_stay_in_spec() {
        let p = ProductModel::automotive().with_defect_rate(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let lot = p.generate_lot(0, 200, &mut rng);
        let limits = p.spec_limits();
        let mut in_spec = 0;
        for d in &lot {
            assert!(d.latent_defect);
            if d.measurements.iter().zip(limits).all(|(&v, &(lo, hi))| v >= lo && v <= hi) {
                in_spec += 1;
            }
        }
        // The defect is designed to be invisible to single-test limits.
        assert!(in_spec as f64 / lot.len() as f64 > 0.8, "{in_spec}/200 in spec");
    }

    #[test]
    fn tail_mechanism_breaks_only_test_a() {
        let p = ProductModel::automotive().with_tail_mechanism(1.0, 3.0);
        let q = ProductModel::automotive();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let with_tail = p.generate_device(0, 0, &mut rng1);
        let without = q.generate_device(0, 0, &mut rng2);
        assert!(with_tail.tail_mechanism);
        assert!((with_tail.measurements[0] - without.measurements[0] - 3.0).abs() < 1e-9);
        for i in 1..p.n_tests() {
            assert!((with_tail.measurements[i] - without.measurements[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn drift_moves_lot_means() {
        let p = ProductModel::automotive();
        let mut rng = StdRng::seed_from_u64(4);
        let early = p.generate_lot(0, 3000, &mut rng);
        let late = p.generate_lot(50, 3000, &mut rng);
        let mean0_early =
            edm_linalg::mean(&early.iter().map(|d| d.measurements[0]).collect::<Vec<_>>());
        let mean0_late =
            edm_linalg::mean(&late.iter().map(|d| d.measurements[0]).collect::<Vec<_>>());
        assert!((mean0_late - mean0_early - 0.5).abs() < 0.1);
    }

    #[test]
    fn sister_product_is_shifted_but_same_structure() {
        let p = ProductModel::automotive();
        let s = p.sister_product();
        let mut rng = StdRng::seed_from_u64(5);
        let lot = s.generate_lot(0, 4000, &mut rng);
        let x = matrix_of(&lot);
        let corr = stats::correlation_matrix(&x);
        assert!(corr[(0, 1)] > 0.9, "sister keeps the A-1 correlation");
        let means = stats::column_means(&x);
        assert!(means[0] > 10.2, "sister means shifted, got {}", means[0]);
    }

    #[test]
    fn ids_are_unique_within_and_across_lots() {
        let p = ProductModel::automotive();
        let mut rng = StdRng::seed_from_u64(6);
        let a = p.generate_lot(0, 100, &mut rng);
        let b = p.generate_lot(1, 100, &mut rng);
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
