//! The field: which shipped devices come back as customer returns.
//!
//! Returns are the paper's Fig. 11 target — devices that pass every
//! production-test limit, operate in the field, and fail there because
//! of the latent defect mechanism. For automotive products "the goal is
//! zero customer returns", which is what makes the extreme-imbalance
//! screening problem worth a methodology of its own.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::product::Device;

/// Field-failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldModel {
    /// Probability a latent-defect device fails in the field (per
    /// service life).
    pub defect_fail_prob: f64,
    /// Background field-failure probability of a healthy device
    /// (handling damage etc. — not screenable from parametrics).
    pub background_fail_prob: f64,
}

impl Default for FieldModel {
    fn default() -> Self {
        FieldModel { defect_fail_prob: 0.9, background_fail_prob: 1e-7 }
    }
}

impl FieldModel {
    /// Whether this shipped device comes back from the customer.
    pub fn fails_in_field<R: Rng + ?Sized>(&self, device: &Device, rng: &mut R) -> bool {
        let p =
            if device.latent_defect { self.defect_fail_prob } else { self.background_fail_prob };
        rng.gen::<f64>() < p
    }

    /// Splits shipped devices into (returns, survivors).
    pub fn field_exposure<'a, R: Rng + ?Sized>(
        &self,
        shipped: &[&'a Device],
        rng: &mut R,
    ) -> (Vec<&'a Device>, Vec<&'a Device>) {
        let mut returns = Vec::new();
        let mut survivors = Vec::new();
        for &d in shipped {
            if self.fails_in_field(d, rng) {
                returns.push(d);
            } else {
                survivors.push(d);
            }
        }
        (returns, survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::ProductModel;
    use crate::testflow::TestFlow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latent_defects_dominate_returns() {
        let p = ProductModel::automotive().with_defect_rate(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let lot = p.generate_lot(0, 20_000, &mut rng);
        let flow = TestFlow::new(p.spec_limits().to_vec());
        let (shipped, _) = flow.screen(&lot);
        let field = FieldModel::default();
        let (returns, _) = field.field_exposure(&shipped, &mut rng);
        assert!(!returns.is_empty(), "a 1% defect rate must produce returns");
        let defective = returns.iter().filter(|d| d.latent_defect).count();
        assert!(defective as f64 / returns.len() as f64 > 0.95);
    }

    #[test]
    fn healthy_devices_rarely_return() {
        let p = ProductModel::automotive().with_defect_rate(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let lot = p.generate_lot(0, 10_000, &mut rng);
        let flow = TestFlow::new(p.spec_limits().to_vec());
        let (shipped, _) = flow.screen(&lot);
        let field = FieldModel::default();
        let (returns, _) = field.field_exposure(&shipped, &mut rng);
        assert!(returns.len() <= 1, "background rate is ~1e-7");
    }

    #[test]
    fn returns_passed_production_test() {
        let p = ProductModel::automotive().with_defect_rate(0.02);
        let mut rng = StdRng::seed_from_u64(3);
        let lot = p.generate_lot(0, 10_000, &mut rng);
        let flow = TestFlow::new(p.spec_limits().to_vec());
        let (shipped, _) = flow.screen(&lot);
        let (returns, _) = FieldModel::default().field_exposure(&shipped, &mut rng);
        for r in &returns {
            assert!(flow.passes(r), "returns by definition passed the test program");
        }
    }
}
