//! # edm-mfgtest — a manufacturing parametric-test substrate
//!
//! A synthetic production test floor standing in for the automotive
//! product data of the paper's Fig. 11 (refs \[16\]\[32\]) and the
//! test-cost-reduction case of Fig. 12 (ref \[33\]):
//!
//! * [`product`] — a factor-model generator of correlated parametric
//!   test measurements per device, with lots, process drift, sister
//!   products, a **latent-defect mechanism** (in-spec but
//!   off-distribution devices that later fail in the field), and an
//!   optional **rare tail mechanism** that only appears in later
//!   production (the Fig. 12 trap);
//! * [`testflow`] — spec limits, pass/fail evaluation, per-test fail
//!   accounting;
//! * [`returns`] — the field: which shipped devices come back;
//! * [`wafer`] — die-grid wafer maps with spatial failure signatures
//!   (edge rings, center spots, scratches), the structure behind the
//!   paper's inter-wafer pattern-mining reference \[32\].
//!
//! The generative assumptions mirror what the paper's screening
//! methodology relies on: customer returns are *multivariate outliers
//! that pass every single-test limit*, the mechanism is stable over time
//! and across sister products (Fig. 11), and no amount of data from
//! phase-1 production reveals a mechanism that has not yet occurred
//! (Fig. 12).
//!
//! # Example
//!
//! ```
//! use edm_mfgtest::product::ProductModel;
//! use edm_mfgtest::testflow::TestFlow;
//! use rand::SeedableRng;
//!
//! let product = ProductModel::automotive();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let lot = product.generate_lot(0, 500, &mut rng);
//! let flow = TestFlow::new(product.spec_limits().to_vec());
//! let shipped: Vec<_> = lot.iter().filter(|d| flow.passes(d)).collect();
//! assert!(shipped.len() > 400, "most devices pass production test");
//! ```

#![forbid(unsafe_code)]

pub mod product;
pub mod returns;
pub mod testflow;
pub mod wafer;
