//! Wafer maps and spatial failure patterns.
//!
//! The paper's ref \[32\] ("A Pattern Mining Framework for Inter-Wafer
//! Abnormality Analysis") works on wafer-level structure: failures are
//! not i.i.d. across a wafer but cluster into signatures — edge rings
//! (etch/anneal gradients), center spots (CMP), scratches (handling).
//! This module provides a die-grid wafer map, signature injection, and
//! the per-wafer summaries that pattern mining consumes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of testing one die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DieResult {
    /// Die passed all tests.
    Pass,
    /// Die failed (bin code 1..).
    Fail(u8),
    /// Position outside the circular wafer.
    OffWafer,
}

/// A spatial failure signature that can be stamped onto a wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpatialSignature {
    /// Elevated failure rate in an outer annulus (fraction of radius).
    EdgeRing {
        /// Inner radius of the ring as a fraction of the wafer radius.
        inner: f64,
        /// Failure probability inside the ring.
        fail_prob: f64,
    },
    /// Elevated failure rate inside a central disc.
    CenterSpot {
        /// Radius of the spot as a fraction of the wafer radius.
        radius: f64,
        /// Failure probability inside the spot.
        fail_prob: f64,
    },
    /// A straight scratch across the wafer at the given angle through
    /// the center, one die wide.
    Scratch {
        /// Angle in radians.
        angle: f64,
        /// Failure probability on the scratch line.
        fail_prob: f64,
    },
}

/// A square die grid clipped to a circular wafer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaferMap {
    /// Grid edge in dies.
    n: usize,
    dies: Vec<DieResult>,
}

impl WaferMap {
    /// Creates an all-pass wafer of `n × n` grid positions (dies outside
    /// the inscribed circle are [`DieResult::OffWafer`]).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "wafer grid needs at least 3x3 dies");
        let mut dies = vec![DieResult::Pass; n * n];
        for r in 0..n {
            for c in 0..n {
                if Self::radius_of(n, r, c) > 1.0 {
                    dies[r * n + c] = DieResult::OffWafer;
                }
            }
        }
        WaferMap { n, dies }
    }

    fn radius_of(n: usize, row: usize, col: usize) -> f64 {
        let half = (n as f64 - 1.0) / 2.0;
        let dr = row as f64 - half;
        let dc = col as f64 - half;
        (dr * dr + dc * dc).sqrt() / half.max(1.0)
    }

    /// Grid edge in dies.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The die at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn die(&self, row: usize, col: usize) -> DieResult {
        assert!(row < self.n && col < self.n, "die index out of bounds");
        self.dies[row * self.n + col]
    }

    /// Number of on-wafer dies.
    pub fn n_dies(&self) -> usize {
        self.dies.iter().filter(|d| **d != DieResult::OffWafer).count()
    }

    /// Number of failing dies.
    pub fn n_fails(&self) -> usize {
        self.dies.iter().filter(|d| matches!(d, DieResult::Fail(_))).count()
    }

    /// Yield = passing / on-wafer dies.
    pub fn yield_fraction(&self) -> f64 {
        let on = self.n_dies().max(1);
        (on - self.n_fails()) as f64 / on as f64
    }

    /// Applies baseline random defectivity: each passing die fails with
    /// probability `rate` (bin 1).
    pub fn with_random_defects<R: Rng + ?Sized>(mut self, rate: f64, rng: &mut R) -> Self {
        for d in &mut self.dies {
            if *d == DieResult::Pass && rng.gen::<f64>() < rate {
                *d = DieResult::Fail(1);
            }
        }
        self
    }

    /// Stamps a spatial signature (bin 2 = edge, 3 = center, 4 = scratch).
    pub fn with_signature<R: Rng + ?Sized>(mut self, sig: SpatialSignature, rng: &mut R) -> Self {
        let n = self.n;
        for r in 0..n {
            for c in 0..n {
                if self.dies[r * n + c] != DieResult::Pass {
                    continue;
                }
                let rad = Self::radius_of(n, r, c);
                let (hit, bin, p) = match sig {
                    SpatialSignature::EdgeRing { inner, fail_prob } => (rad >= inner, 2, fail_prob),
                    SpatialSignature::CenterSpot { radius, fail_prob } => {
                        (rad <= radius, 3, fail_prob)
                    }
                    SpatialSignature::Scratch { angle, fail_prob } => {
                        let half = (n as f64 - 1.0) / 2.0;
                        let dr = r as f64 - half;
                        let dc = c as f64 - half;
                        // distance from the line through the center
                        let dist = (dc * angle.sin() - dr * angle.cos()).abs();
                        (dist < 0.6, 4, fail_prob)
                    }
                };
                if hit && rng.gen::<f64>() < p {
                    self.dies[r * n + c] = DieResult::Fail(bin);
                }
            }
        }
        self
    }

    /// Spatial summary features for inter-wafer mining:
    /// `[yield, edge_fail_rate, center_fail_rate, line_collinearity]`.
    ///
    /// `line_collinearity` is the fraction of failing dies lying within
    /// one die of the best-fit line through the failure centroid —
    /// near 1 for scratches, lower for diffuse patterns.
    pub fn spatial_features(&self) -> Vec<f64> {
        let n = self.n;
        let mut edge_fail = 0usize;
        let mut edge_total = 0usize;
        let mut center_fail = 0usize;
        let mut center_total = 0usize;
        let mut fails: Vec<(f64, f64)> = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let d = self.dies[r * n + c];
                if d == DieResult::OffWafer {
                    continue;
                }
                let rad = Self::radius_of(n, r, c);
                let failed = matches!(d, DieResult::Fail(_));
                if rad >= 0.8 {
                    edge_total += 1;
                    if failed {
                        edge_fail += 1;
                    }
                } else if rad <= 0.35 {
                    center_total += 1;
                    if failed {
                        center_fail += 1;
                    }
                }
                if failed {
                    fails.push((r as f64, c as f64));
                }
            }
        }
        // Collinearity via the principal axis of the failure scatter.
        let collinearity = if fails.len() >= 3 {
            let mr = fails.iter().map(|f| f.0).sum::<f64>() / fails.len() as f64;
            let mc = fails.iter().map(|f| f.1).sum::<f64>() / fails.len() as f64;
            let (mut srr, mut scc, mut src) = (0.0, 0.0, 0.0);
            for &(r, c) in &fails {
                srr += (r - mr) * (r - mr);
                scc += (c - mc) * (c - mc);
                src += (r - mr) * (c - mc);
            }
            // principal direction of the 2x2 scatter
            let theta = 0.5 * (2.0 * src).atan2(srr - scc);
            let (dir_r, dir_c) = (theta.cos(), theta.sin());
            let near = fails
                .iter()
                .filter(|&&(r, c)| {
                    let dist = ((c - mc) * dir_r - (r - mr) * dir_c).abs();
                    dist <= 1.0
                })
                .count();
            near as f64 / fails.len() as f64
        } else {
            0.0
        };
        vec![
            self.yield_fraction(),
            edge_fail as f64 / edge_total.max(1) as f64,
            center_fail as f64 / center_total.max(1) as f64,
            collinearity,
        ]
    }

    /// Names for [`WaferMap::spatial_features`].
    pub fn spatial_feature_names() -> Vec<String> {
        ["yield", "edge_fail_rate", "center_fail_rate", "line_collinearity"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// The set of distinct fail bins present (for association mining:
    /// one transaction per wafer).
    pub fn fail_bins(&self) -> Vec<u32> {
        let mut bins: Vec<u32> = self
            .dies
            .iter()
            .filter_map(|d| match d {
                DieResult::Fail(b) => Some(*b as u32),
                _ => None,
            })
            .collect();
        bins.sort_unstable();
        bins.dedup();
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_wafer_is_circular_and_clean() {
        let w = WaferMap::new(15);
        assert_eq!(w.die(7, 7), DieResult::Pass); // center
        assert_eq!(w.die(0, 0), DieResult::OffWafer); // corner
        assert_eq!(w.n_fails(), 0);
        assert_eq!(w.yield_fraction(), 1.0);
        // circle of radius (n-1)/2 dies: area ≈ π·7²/15² of the grid
        let expected = std::f64::consts::PI * 7.0 * 7.0 / (15.0 * 15.0);
        let frac = w.n_dies() as f64 / (15.0 * 15.0);
        assert!((frac - expected).abs() < 0.08, "{frac} vs {expected}");
    }

    #[test]
    fn edge_ring_fails_concentrate_at_edge() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WaferMap::new(21)
            .with_signature(SpatialSignature::EdgeRing { inner: 0.85, fail_prob: 0.9 }, &mut rng);
        let f = w.spatial_features();
        let names = WaferMap::spatial_feature_names();
        let get = |n: &str| f[names.iter().position(|x| x == n).unwrap()];
        assert!(get("edge_fail_rate") > 0.3, "edge rate {}", get("edge_fail_rate"));
        assert!(get("center_fail_rate") < 0.05);
        assert_eq!(w.fail_bins(), vec![2]);
    }

    #[test]
    fn center_spot_is_the_mirror_case() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = WaferMap::new(21)
            .with_signature(SpatialSignature::CenterSpot { radius: 0.3, fail_prob: 0.9 }, &mut rng);
        let f = w.spatial_features();
        assert!(f[2] > 0.3, "center rate {}", f[2]);
        assert!(f[1] < 0.05, "edge rate {}", f[1]);
    }

    #[test]
    fn scratch_is_collinear() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = WaferMap::new(25)
            .with_signature(SpatialSignature::Scratch { angle: 0.7, fail_prob: 1.0 }, &mut rng);
        let f = w.spatial_features();
        assert!(f[3] > 0.9, "collinearity {}", f[3]);
        // random defects are not collinear
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = WaferMap::new(25).with_random_defects(0.1, &mut rng);
        assert!(noisy.spatial_features()[3] < 0.7);
    }

    #[test]
    fn yield_accounts_only_on_wafer_dies() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WaferMap::new(15).with_random_defects(0.2, &mut rng);
        let expected = 1.0 - w.n_fails() as f64 / w.n_dies() as f64;
        assert!((w.yield_fraction() - expected).abs() < 1e-12);
    }
}
