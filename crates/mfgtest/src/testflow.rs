//! Production test: spec limits, pass/fail, and per-test fail
//! accounting — the bookkeeping behind both Fig. 11 (what shipped) and
//! Fig. 12 (which fails each test uniquely catches).

use serde::{Deserialize, Serialize};

use crate::product::Device;

/// A production test program: one `(lo, hi)` limit pair per test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestFlow {
    limits: Vec<(f64, f64)>,
    /// Tests removed from the program (still measured by the generator,
    /// but not applied) — the cost-reduction action of Fig. 12.
    dropped: Vec<bool>,
}

impl TestFlow {
    /// Creates a flow applying every limit.
    pub fn new(limits: Vec<(f64, f64)>) -> Self {
        let n = limits.len();
        TestFlow { limits, dropped: vec![false; n] }
    }

    /// Number of tests in the program (dropped or not).
    pub fn n_tests(&self) -> usize {
        self.limits.len()
    }

    /// Marks a test as dropped from the program.
    ///
    /// # Panics
    ///
    /// Panics if `test` is out of range.
    pub fn drop_test(&mut self, test: usize) {
        assert!(test < self.limits.len(), "test index out of range");
        self.dropped[test] = true;
    }

    /// Whether a test is currently applied.
    pub fn is_applied(&self, test: usize) -> bool {
        !self.dropped[test]
    }

    /// The tests (indices) the device fails, ignoring dropped tests.
    pub fn failing_tests(&self, device: &Device) -> Vec<usize> {
        device
            .measurements
            .iter()
            .enumerate()
            .filter(|&(i, &v)| !self.dropped[i] && (v < self.limits[i].0 || v > self.limits[i].1))
            .map(|(i, _)| i)
            .collect()
    }

    /// The tests the device would fail if *every* test were applied
    /// (used to audit what a dropped test would have caught).
    pub fn failing_tests_full(&self, device: &Device) -> Vec<usize> {
        device
            .measurements
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v < self.limits[i].0 || v > self.limits[i].1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the device passes the (possibly reduced) program.
    pub fn passes(&self, device: &Device) -> bool {
        self.failing_tests(device).is_empty()
    }

    /// Splits a population into (shipped, rejected) under this program.
    pub fn screen<'a>(&self, devices: &'a [Device]) -> (Vec<&'a Device>, Vec<&'a Device>) {
        let mut shipped = Vec::new();
        let mut rejected = Vec::new();
        for d in devices {
            if self.passes(d) {
                shipped.push(d);
            } else {
                rejected.push(d);
            }
        }
        (shipped, rejected)
    }

    /// Devices that fail `test` but pass every *other* applied test —
    /// the unique coverage of `test`. If this is empty on a large
    /// sample, data mining concludes the test is redundant (Fig. 12's
    /// reasonable-but-wrong inference).
    pub fn unique_catches<'a>(&self, devices: &'a [Device], test: usize) -> Vec<&'a Device> {
        devices
            .iter()
            .filter(|d| {
                let fails = self.failing_tests_full(d);
                fails.contains(&test) && fails.iter().all(|&f| f == test || self.dropped[f])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(measurements: Vec<f64>) -> Device {
        Device { id: 0, lot: 0, measurements, latent_defect: false, tail_mechanism: false }
    }

    fn flow() -> TestFlow {
        TestFlow::new(vec![(0.0, 10.0), (0.0, 10.0), (0.0, 10.0)])
    }

    #[test]
    fn pass_fail_logic() {
        let f = flow();
        assert!(f.passes(&device(vec![5.0, 5.0, 5.0])));
        assert!(!f.passes(&device(vec![11.0, 5.0, 5.0])));
        assert_eq!(f.failing_tests(&device(vec![11.0, -1.0, 5.0])), vec![0, 1]);
    }

    #[test]
    fn dropped_test_no_longer_rejects() {
        let mut f = flow();
        let d = device(vec![11.0, 5.0, 5.0]);
        assert!(!f.passes(&d));
        f.drop_test(0);
        assert!(f.passes(&d));
        // but the audit view still sees it
        assert_eq!(f.failing_tests_full(&d), vec![0]);
    }

    #[test]
    fn unique_catches_finds_sole_coverage() {
        let f = flow();
        let only_t0 = device(vec![11.0, 5.0, 5.0]);
        let t0_and_t1 = device(vec![11.0, 11.0, 5.0]);
        let clean = device(vec![5.0, 5.0, 5.0]);
        let devices = vec![only_t0.clone(), t0_and_t1, clean];
        let unique = f.unique_catches(&devices, 0);
        assert_eq!(unique.len(), 1);
        assert_eq!(unique[0].measurements, only_t0.measurements);
    }

    #[test]
    fn screen_partitions_population() {
        let f = flow();
        let devices = vec![
            device(vec![5.0, 5.0, 5.0]),
            device(vec![11.0, 5.0, 5.0]),
            device(vec![5.0, 5.0, 5.0]),
        ];
        let (shipped, rejected) = f.screen(&devices);
        assert_eq!(shipped.len(), 2);
        assert_eq!(rejected.len(), 1);
    }
}
