//! End-to-end tests: run the whole driver on the `bad-ws` fixture
//! workspace (one deliberate violation per lint, plus suppression
//! cases) and on the real workspace (which must be clean).

use std::path::{Path, PathBuf};

use edm_lint::report::Severity;
use edm_lint::{driver, sync_lints, Finding, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad-ws")
}

fn fixture_report() -> Report {
    driver::lint_workspace(&fixture_root()).expect("fixture workspace loads")
}

fn find<'r>(report: &'r Report, lint: &str, msg_part: &str) -> Vec<&'r Finding> {
    report.findings.iter().filter(|f| f.lint == lint && f.message.contains(msg_part)).collect()
}

#[test]
fn direct_thread_spawn_fires_for_spawn_and_scope() {
    let r = fixture_report();
    let spawn = find(&r, "direct-thread-spawn", "thread::spawn");
    let scope = find(&r, "direct-thread-spawn", "thread::scope");
    assert_eq!(spawn.len(), 1, "{}", r.render_human());
    assert_eq!(scope.len(), 1);
    assert!(spawn[0].file.ends_with("crates/alpha/src/lib.rs"));
    // The spawn inside #[cfg(test)] must not be flagged.
    assert_eq!(r.findings.iter().filter(|f| f.lint == "direct-thread-spawn").count(), 2);
}

#[test]
fn unordered_iteration_fires_only_on_unsuppressed_sites() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "unordered-iteration").collect();
    // Lines 4 and 5 (the two `use` statements). The suppressed type
    // aliases and the HashMap inside #[cfg(test)] stay silent.
    assert_eq!(hits.len(), 2, "{}", r.render_human());
    assert!(hits.iter().all(|f| f.file.ends_with("crates/alpha/src/lib.rs")));
    assert_eq!(hits.iter().map(|f| f.line).collect::<Vec<_>>(), vec![4, 5]);
}

#[test]
fn ambient_entropy_fires_for_clock_and_rng() {
    let r = fixture_report();
    assert_eq!(find(&r, "ambient-entropy", "Time::now").len(), 1);
    assert_eq!(find(&r, "ambient-entropy", "thread_rng").len(), 1);
}

#[test]
fn probe_registry_catches_every_rot_mode() {
    let r = fixture_report();
    // Typo: used but unregistered, flagged at the call site.
    let typo = find(&r, "probe-registry", "alpha.typo_flow");
    assert_eq!(typo.len(), 1, "{}", r.render_human());
    assert!(typo[0].file.ends_with("crates/alpha/src/lib.rs"));
    // Wrong section: registered as span, emitted as counter.
    assert_eq!(find(&r, "probe-registry", "used as a counters probe").len(), 1);
    // Mislabeled metric-label probe: registered as a counter, emitted
    // through the labeled histogram call.
    let mislabeled = find(&r, "probe-registry", "\"alpha.labeled_wrongkind\"");
    assert_eq!(mislabeled.len(), 1, "{}", r.render_human());
    assert!(mislabeled[0].message.contains("used as a histograms probe"));
    // Stale: registered, never emitted.
    assert!(!find(&r, "probe-registry", "stale registry entry").is_empty());
    assert_eq!(find(&r, "probe-registry", "\"alpha.stale\"").len(), 1);
    // A registry-side `# edm-allow(probe-registry)` silences the stale
    // check for the entry it covers.
    assert!(find(&r, "probe-registry", "\"alpha.stale_allowed\"").is_empty());
    // Duplicate registration.
    assert_eq!(find(&r, "probe-registry", "duplicate probe").len(), 1);
    // Missing description.
    assert_eq!(find(&r, "probe-registry", "has no description").len(), 1);
    // The correctly used probes (plain and labeled) are not flagged.
    assert!(find(&r, "probe-registry", "\"alpha.flow\"").is_empty());
    assert!(find(&r, "probe-registry", "\"alpha.labeled\"").is_empty());
}

#[test]
fn feature_forwarding_flags_missing_forward_and_honors_toml_suppression() {
    let r = fixture_report();
    let missing = find(&r, "feature-forwarding", "beta/parallel");
    assert_eq!(missing.len(), 1, "{}", r.render_human());
    assert!(missing[0].file.ends_with("crates/alpha/Cargo.toml"));
    // trace IS forwarded — no finding mentions it.
    assert!(find(&r, "feature-forwarding", "beta/trace").is_empty());
    // gamma's missing forwards are suppressed in its manifest, and the
    // suppression is used (no unused-suppression warning for gamma).
    assert!(!r
        .findings
        .iter()
        .any(|f| f.file.ends_with("gamma/Cargo.toml") && f.lint == "feature-forwarding"));
    assert!(!r
        .findings
        .iter()
        .any(|f| f.file.ends_with("gamma/Cargo.toml") && f.message.contains("unused")));
}

#[test]
fn forbid_unsafe_flags_only_the_crate_missing_it() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "forbid-unsafe").collect();
    assert_eq!(hits.len(), 1, "{}", r.render_human());
    assert!(hits[0].file.ends_with("crates/alpha/src/lib.rs"));
    assert!(hits[0].message.contains("alpha"));
}

#[test]
fn unwrap_in_lib_counts_only_non_test_sites() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "unwrap-in-lib").collect();
    // One real site; the unwrap inside #[cfg(test)] is exempt. With no
    // baseline file in the fixture the site is a hard error.
    assert_eq!(hits.len(), 1, "{}", r.render_human());
    assert!(!hits[0].grandfathered);
    assert_eq!(hits[0].severity, Severity::Error);
}

#[test]
fn suppressions_are_reason_checked_and_usage_tracked() {
    let r = fixture_report();
    // Reason-less suppression still suppresses, but is itself an error.
    let no_reason = find(&r, "bad-suppression", "has no reason");
    assert_eq!(no_reason.len(), 1, "{}", r.render_human());
    assert_eq!(no_reason[0].severity, Severity::Error);
    // Unknown lint id.
    let unknown = find(&r, "bad-suppression", "unknown lint");
    assert_eq!(unknown.len(), 1);
    assert!(unknown[0].message.contains("not-a-real-lint"));
    // Unused suppression warns.
    let unused = find(&r, "bad-suppression", "unused edm-allow(direct-thread-spawn)");
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].severity, Severity::Warning);
    // The reasoned, used suppression generates nothing at its line.
    assert!(!r
        .findings
        .iter()
        .any(|f| f.lint == "bad-suppression" && f.message.contains("unordered-iteration) names")));
}

#[test]
fn condvar_predicate_loop_catches_bare_waits_only() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "condvar-predicate-loop").collect();
    // wait_once and wait_timeout_once; the looped wait and the
    // suppressed forwarding wait stay silent.
    assert_eq!(hits.len(), 2, "{}", r.render_human());
    assert!(hits.iter().all(|f| f.file.ends_with("crates/delta/src/lib.rs")));
    assert_eq!(find(&r, "condvar-predicate-loop", ".wait(").len(), 1);
    assert_eq!(find(&r, "condvar-predicate-loop", ".wait_timeout(").len(), 1);
    // The suppression was used — no unused-suppression warning for it.
    assert!(!r
        .findings
        .iter()
        .any(|f| f.message.contains("unused edm-allow(condvar-predicate-loop)")));
}

#[test]
fn lock_across_blocking_flags_the_live_guard_only() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "lock-across-blocking").collect();
    // locked_write only; unlocked_write dropped the guard first.
    assert_eq!(hits.len(), 1, "{}", r.render_human());
    assert!(hits[0].file.ends_with("crates/delta/src/lib.rs"));
    assert!(hits[0].message.contains("write_all"));
    assert!(hits[0].message.contains("delta/m"));
}

#[test]
fn atomic_ordering_audit_catches_every_rot_mode() {
    let r = fixture_report();
    // Undocumented code site, at the site.
    let undoc = find(&r, "atomic-ordering-audit", "store.SeqCst");
    assert_eq!(undoc.len(), 1, "{}", r.render_human());
    assert!(undoc[0].file.ends_with("crates/delta/src/lib.rs"));
    // Registry rot, all flagged in the registry file.
    assert_eq!(find(&r, "atomic-ordering-audit", "no justification").len(), 1);
    assert_eq!(find(&r, "atomic-ordering-audit", "duplicate entry").len(), 1);
    assert_eq!(find(&r, "atomic-ordering-audit", "stale entry \"fetch_add.Acquire\"").len(), 1);
    assert_eq!(find(&r, "atomic-ordering-audit", "stale section").len(), 1);
    // The justified load.Relaxed site generates nothing.
    assert!(r
        .findings
        .iter()
        .filter(|f| f.lint == "atomic-ordering-audit")
        .all(|f| !f.message.starts_with("atomic load.Relaxed")));
}

#[test]
fn lock_order_graph_reports_the_seeded_cycle() {
    let r = fixture_report();
    let hits: Vec<_> = r.findings.iter().filter(|f| f.lint == "lock-order-graph").collect();
    assert!(!hits.is_empty(), "{}", r.render_human());
    assert!(hits[0].message.contains("delta/a"));
    assert!(hits[0].message.contains("delta/b"));
    assert!(hits[0].file.ends_with("crates/delta/src/lib.rs"));

    // The graph itself: both edges present, cycle listed, JSON sane.
    let ws = driver::load(&fixture_root()).expect("fixture loads");
    let graph = sync_lints::build_lock_graph(&ws);
    assert!(graph.nodes.iter().any(|n| n == "delta/a"));
    assert!(graph.edges.iter().any(|e| e.from == "delta/a" && e.to == "delta/b"));
    assert!(graph.edges.iter().any(|e| e.from == "delta/b" && e.to == "delta/a"));
    assert!(!graph.cycles.is_empty());
    let json = sync_lints::render_lock_graph(&graph);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn env_knob_registry_catches_every_rot_mode() {
    let r = fixture_report();
    // Undocumented read, at the site.
    let undoc = find(&r, "env-knob-registry", "EDM_DELTA_SECRET");
    assert_eq!(undoc.len(), 1, "{}", r.render_human());
    assert!(undoc[0].file.ends_with("crates/delta/src/lib.rs"));
    // Registry rot, flagged in the registry file.
    assert_eq!(find(&r, "env-knob-registry", "\"EDM_DELTA_NODOC\" must carry").len(), 1);
    assert_eq!(find(&r, "env-knob-registry", "duplicate knob").len(), 1);
    assert_eq!(find(&r, "env-knob-registry", "stale knob \"EDM_DELTA_STALE\"").len(), 1);
    // The documented knob's read site generates nothing.
    assert!(find(&r, "env-knob-registry", "\"EDM_DELTA_DOCUMENTED\" is not documented").is_empty());
    // No README in the fixture → the drift check is skipped.
    assert!(!r.findings.iter().any(|f| f.lint == "env-knob-registry" && f.file == "README.md"));
}

#[test]
fn fixture_report_blocks_and_serializes() {
    let r = fixture_report();
    assert!(!r.is_clean());
    let json = r.render_json();
    assert!(json.contains("\"clean\": false"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn real_workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/lint → the repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = driver::lint_workspace(&root).expect("workspace loads");
    assert!(report.is_clean(), "the real workspace must lint clean:\n{}", report.render_human());
    // And the run actually covered the tree: all lints, many files.
    assert_eq!(report.lints_run.len(), 13);
    assert!(report.files_scanned > 100, "only {} files", report.files_scanned);
}

#[test]
fn real_workspace_lock_graph_is_acyclic_and_nonempty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = driver::load(&root).expect("workspace loads");
    let graph = sync_lints::build_lock_graph(&ws);
    assert!(
        graph.cycles.is_empty(),
        "the real workspace lock graph must be acyclic: {:?}",
        graph.cycles
    );
    // The migrated DbgMutex sites must be visible to the walker.
    assert!(!graph.nodes.is_empty());
    assert!(
        graph.nodes.iter().any(|n| n.starts_with("edm-par/"))
            && graph.nodes.iter().any(|n| n.starts_with("edm-serve/")),
        "expected pool and serve lock nodes, got {:?}",
        graph.nodes
    );
}
