//! Fixture crate whose only sin (missing feature forwarding) is
//! suppressed in its manifest.

#![forbid(unsafe_code)]

/// Nothing to flag here either.
pub fn also_fine() -> u32 {
    11
}
