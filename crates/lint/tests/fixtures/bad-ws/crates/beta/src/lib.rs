//! Fixture crate that satisfies every lint.

#![forbid(unsafe_code)]

/// A function with nothing to flag.
pub fn fine() -> u32 {
    7
}
