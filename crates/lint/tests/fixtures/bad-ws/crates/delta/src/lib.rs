//! Fixture crate for the concurrency lints: one violation per mode
//! of `condvar-predicate-loop`, `lock-across-blocking`,
//! `atomic-ordering-audit`, `lock-order-graph`, and
//! `env-knob-registry`, next to clean twins proving the lints do not
//! overfire. Clean for every older lint. Never compiled — only
//! scanned.

#![forbid(unsafe_code)]

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// A condvar-paired flag.
pub struct Gate {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// VIOLATION: `.wait` with no enclosing loop cannot recheck its
    /// predicate after a spurious wakeup.
    pub fn wait_once(&self) {
        let g = self.ready.lock().expect("fixture");
        let _g = self.cv.wait(g).expect("fixture");
    }

    /// VIOLATION: `.wait_timeout` outside a loop, same bug.
    pub fn wait_timeout_once(&self) {
        let g = self.ready.lock().expect("fixture");
        let _r = self.cv.wait_timeout(g, std::time::Duration::from_millis(1)).expect("fixture");
    }

    /// Clean: the wait sits inside a predicate-recheck loop.
    pub fn wait_in_loop(&self) {
        let mut g = self.ready.lock().expect("fixture");
        while !*g {
            g = self.cv.wait(g).expect("fixture");
        }
    }

    /// Clean: a suppressed forwarding wait, mirroring a wrapper whose
    /// caller owns the recheck loop.
    pub fn forward_wait<'a>(&'a self, g: MutexGuard<'a, bool>) -> MutexGuard<'a, bool> {
        // edm-allow(condvar-predicate-loop): forwarding wrapper; the caller rechecks the predicate
        self.cv.wait(g).expect("fixture")
    }
}

/// A mutex-protected sink.
pub struct Sink {
    m: Mutex<u64>,
}

impl Sink {
    /// VIOLATION: the `m` guard is still live when `write_all` blocks
    /// on the stream, so the critical section includes socket latency.
    pub fn locked_write(&self, out: &mut std::net::TcpStream) {
        let g = self.m.lock().expect("fixture");
        out.write_all(b"payload").expect("fixture");
        drop(g);
    }

    /// Clean: the guard is dropped before the blocking call.
    pub fn unlocked_write(&self, out: &mut std::net::TcpStream) {
        let g = self.m.lock().expect("fixture");
        let snapshot = *g;
        drop(g);
        out.write_all(&snapshot.to_le_bytes()).expect("fixture");
    }
}

/// Two locks acquired in both orders across these methods.
pub struct TwoLocks {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl TwoLocks {
    /// Half of the VIOLATION: `a` held while acquiring `b`.
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock().expect("fixture");
        let gb = self.b.lock().expect("fixture");
        *ga + *gb
    }

    /// The other half: `b` held while acquiring `a` — together with
    /// `a_then_b` this closes a lock-order cycle (latent deadlock).
    pub fn b_then_a(&self) -> u32 {
        let gb = self.b.lock().expect("fixture");
        let ga = self.a.lock().expect("fixture");
        *ga + *gb
    }
}

/// An atomic with one site per audit mode.
pub static FLAG: AtomicU64 = AtomicU64::new(0);

/// Atomic ordering sites: one undocumented, one registered with an
/// empty justification, one properly justified.
pub fn atomics() -> u64 {
    FLAG.store(1, Ordering::SeqCst);
    let _ = FLAG.fetch_sub(1, Ordering::AcqRel);
    FLAG.load(Ordering::Relaxed)
}

/// Env knob reads: one undocumented, one doc-less in the registry,
/// one fully documented.
pub fn knobs() -> bool {
    let secret = std::env::var("EDM_DELTA_SECRET").is_ok();
    let nodoc = std::env::var("EDM_DELTA_NODOC").is_ok();
    let documented = std::env::var("EDM_DELTA_DOCUMENTED").is_ok();
    secret && nodoc && documented
}
