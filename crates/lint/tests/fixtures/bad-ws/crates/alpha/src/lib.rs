// Deliberately-bad fixture: every edm-lint lint must fire somewhere
// in this file (and nowhere it shouldn't). Missing
// #![forbid(unsafe_code)] is itself one of the violations.
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::SystemTime;

pub fn spawns_directly() {
    std::thread::spawn(|| {});
}

pub fn scoped_too() {
    std::thread::scope(|_| {});
}

pub fn ambient() -> bool {
    let _ = SystemTime::now();
    let _rng = rand::thread_rng();
    true
}

pub fn probes() {
    let _span = edm_trace::span("alpha.flow");
    let _oops = edm_trace::span("alpha.typo_flow");
    edm_trace::counter_add("alpha.wrongkind", 1);
    edm_trace::counter_add_labeled("alpha.labeled", &[("model", "m")], 1);
    edm_trace::record_labeled("alpha.labeled_wrongkind", &[("model", "m")], 1.0);
}

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

// edm-allow(unordered-iteration): fixture for a reasoned suppression
pub type AllowedMap = HashMap<u32, u32>;

// edm-allow(unordered-iteration)
pub type ReasonlessButSuppressed = HashSet<u32>;

// edm-allow(direct-thread-spawn): nothing below actually spawns
pub fn idle() {}

// edm-allow(not-a-real-lint): bogus id
pub fn bogus() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        std::thread::spawn(|| {}).join().ok();
    }
}
