//! CLI entry point for `edm-lint`. See the crate docs for the lints.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use edm_lint::{driver, lints, sync_lints};

const USAGE: &str = "\
edm-lint: static analysis for the edm workspace invariants

USAGE:
    edm-lint [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root to lint (default: .)
    --json <FILE>       where to write the JSON report
                        (default: <root>/results/lint.json)
    --no-json           skip writing the JSON report
    --list              list the lints and exit
    --dump-probes       print discovered trace probes as registry TOML
    --dump-orderings    print discovered atomic Ordering sites as
                        sync-orderings.toml skeleton TOML
    --write-baseline    rewrite the unwrap-in-lib ratchet baseline
    --write-env-table   regenerate the README env-var table from
                        edm-env.toml (between the edm-env markers)
    -h, --help          show this help
";

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
    no_json: bool,
    list: bool,
    dump_probes: bool,
    dump_orderings: bool,
    write_baseline: bool,
    write_env_table: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: None,
        no_json: false,
        list: false,
        dump_probes: false,
        dump_orderings: false,
        write_baseline: false,
        write_env_table: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = args.next().map(PathBuf::from).ok_or("--root needs a value")?;
            }
            "--json" => {
                opts.json = Some(args.next().map(PathBuf::from).ok_or("--json needs a value")?);
            }
            "--no-json" => opts.no_json = true,
            "--list" => opts.list = true,
            "--dump-probes" => opts.dump_probes = true,
            "--dump-orderings" => opts.dump_orderings = true,
            "--write-baseline" => opts.write_baseline = true,
            "--write-env-table" => opts.write_env_table = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("edm-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;

    if opts.list {
        for (id, desc) in lints::LINTS {
            println!("{id:<22} {desc}");
        }
        return Ok(true);
    }

    let ws = driver::load(&opts.root)?;

    if opts.dump_probes {
        print!("{}", driver::render_probe_dump(&ws));
        return Ok(true);
    }

    if opts.dump_orderings {
        print!("{}", sync_lints::render_ordering_dump(&ws));
        return Ok(true);
    }

    if opts.write_env_table {
        let readme_path = ws.root.join("README.md");
        let readme = ws.readme.clone().ok_or("no README.md to update")?;
        let (before, rest) = readme
            .split_once(sync_lints::ENV_TABLE_BEGIN)
            .ok_or_else(|| format!("README.md has no {} marker", sync_lints::ENV_TABLE_BEGIN))?;
        let (_, after) = rest
            .split_once(sync_lints::ENV_TABLE_END)
            .ok_or_else(|| format!("README.md has no {} marker", sync_lints::ENV_TABLE_END))?;
        let updated = format!(
            "{before}{}\n{}{}{after}",
            sync_lints::ENV_TABLE_BEGIN,
            sync_lints::render_env_table(&ws),
            sync_lints::ENV_TABLE_END
        );
        fs::write(&readme_path, updated)
            .map_err(|e| format!("cannot write {}: {e}", readme_path.display()))?;
        println!("edm-lint: wrote env table in {}", readme_path.display());
        // Fall through and lint against the fresh table.
        let ws = driver::load(&opts.root)?;
        let report = driver::run(&ws);
        print!("{}", report.render_human());
        return Ok(report.is_clean());
    }

    if opts.write_baseline {
        let path = ws.root.join(driver::UNWRAP_BASELINE_REL);
        fs::write(&path, driver::render_baseline(&ws))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("edm-lint: wrote {}", path.display());
        // Fall through and lint against the fresh baseline.
        let ws = driver::load(&opts.root)?;
        let report = driver::run(&ws);
        print!("{}", report.render_human());
        return Ok(report.is_clean());
    }

    let report = driver::run(&ws);
    print!("{}", report.render_human());

    if !opts.no_json {
        let json_path =
            opts.json.clone().unwrap_or_else(|| ws.root.join("results").join("lint.json"));
        if let Some(parent) = json_path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        fs::write(&json_path, report.render_json())
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        // The static lock graph rides along with the JSON report so CI
        // can schema-check it and archive the deadlock-freedom proof.
        let graph_path = json_path.with_file_name("lock-graph.json");
        let graph = sync_lints::build_lock_graph(&ws);
        fs::write(&graph_path, sync_lints::render_lock_graph(&graph))
            .map_err(|e| format!("cannot write {}: {e}", graph_path.display()))?;
    }

    Ok(report.is_clean())
}
