//! # edm-lint — workspace static analysis for the edm invariants
//!
//! A dependency-free lint driver that enforces the determinism,
//! instrumentation, and feature-hygiene rules the rest of the
//! workspace relies on but `rustc`/`clippy` cannot see:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `direct-thread-spawn`  | all threads come from `edm-par` |
//! | `unordered-iteration`  | no hash-order iteration in library code |
//! | `ambient-entropy`      | no wall-clock / OS-entropy seeding |
//! | `probe-registry`       | trace probe names match `trace-probes.toml` |
//! | `feature-forwarding`   | `parallel`/`trace` forwarded through every dep edge |
//! | `forbid-unsafe`        | every crate root forbids `unsafe_code` |
//! | `unwrap-in-lib`        | `.unwrap()` ratcheted against a checked-in baseline |
//! | `condvar-predicate-loop` | condvar waits sit inside a predicate-recheck loop |
//! | `lock-across-blocking` | no lock guard lives across blocking I/O in its scope |
//! | `atomic-ordering-audit` | atomic `Ordering` sites justified in `sync-orderings.toml` |
//! | `lock-order-graph`     | static acquired-while-held graph stays acyclic |
//! | `env-knob-registry`    | `EDM_*` knobs documented in `edm-env.toml` + README |
//!
//! Violations carry `file:line` positions; runs emit a human report
//! plus machine-readable `results/lint.json`, and exit nonzero on any
//! non-grandfathered error, which makes the CI job a hard gate.
//!
//! ## Suppressions
//!
//! ```text
//! // edm-allow(unordered-iteration): drained into a BTreeMap before use
//! // edm-allow-file(unwrap-in-lib): generated parser, indices proven in bounds
//! ```
//!
//! A suppression must name a known lint **and** give a reason after a
//! colon — a reason-less or unknown suppression is itself reported
//! (`bad-suppression`), and unused suppressions warn so they get
//! cleaned up. In `Cargo.toml` the same forms work after `#`.
//!
//! The scanner is a purpose-built lexer ([`scanner`]), not a regex
//! pass: comments, strings, lifetimes, and `#[cfg(test)]` regions are
//! understood, so test code can use `HashMap` freely and a lint
//! needle inside a doc comment never fires. Manifests are read by a
//! small TOML subset parser ([`manifest`]) that keeps line numbers
//! and duplicate keys.

#![forbid(unsafe_code)]

pub mod driver;
pub mod lints;
pub mod manifest;
pub mod report;
pub mod scanner;
pub mod sync_lints;

pub use driver::{lint_workspace, load, run, Workspace};
pub use report::{Finding, Report, Severity};
