//! Finding types and the two renderers: human diagnostics for the
//! terminal and a machine-readable JSON document for CI.

use std::fmt::Write as _;

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational only (e.g. an unused suppression); never fails.
    Warning,
    /// A violation; the run exits nonzero unless grandfathered.
    Error,
}

impl Severity {
    /// Lowercase label used in both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a lint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable lint id (`unordered-iteration`, ...).
    pub lint: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line, or 0 when the finding is file/crate level.
    pub line: u32,
    /// Human message.
    pub message: String,
    /// True when covered by the checked-in baseline (reported but not
    /// counted against the exit code).
    pub grandfathered: bool,
}

/// A finished lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in the order the driver produced them.
    pub findings: Vec<Finding>,
    /// Number of files scanned (Rust sources + manifests).
    pub files_scanned: usize,
    /// Lints that ran, in registry order.
    pub lints_run: Vec<&'static str>,
}

impl Report {
    /// Findings that should fail the run.
    pub fn blocking(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error && !f.grandfathered)
    }

    /// True when the run should exit zero.
    pub fn is_clean(&self) -> bool {
        self.blocking().next().is_none()
    }

    /// Sorts findings for stable output: by file, line, lint id.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    /// Terminal rendering: one `file:line: severity[lint] message` per
    /// blocking finding plus a summary line. Grandfathered findings
    /// are counted but not listed (they are all in the JSON report).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| !f.grandfathered) {
            if f.line > 0 {
                let _ = writeln!(
                    out,
                    "{}:{}: {}[{}] {}",
                    f.file,
                    f.line,
                    f.severity.label(),
                    f.lint,
                    f.message
                );
            } else {
                let _ =
                    writeln!(out, "{}: {}[{}] {}", f.file, f.severity.label(), f.lint, f.message);
            }
        }
        let errors = self.blocking().count();
        let warnings = self.findings.iter().filter(|f| f.severity == Severity::Warning).count();
        let grandfathered = self.findings.iter().filter(|f| f.grandfathered).count();
        let _ = writeln!(
            out,
            "edm-lint: {} files scanned, {} lints, {} error(s), {} warning(s), {} grandfathered",
            self.files_scanned,
            self.lints_run.len(),
            errors,
            warnings,
            grandfathered
        );
        out
    }

    /// Machine-readable JSON for `results/lint.json`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"summary\": {");
        let _ = write!(
            out,
            "\n    \"files_scanned\": {},\n    \"errors\": {},\n    \"warnings\": {},\n    \"grandfathered\": {},\n    \"clean\": {}\n  }},\n",
            self.files_scanned,
            self.blocking().count(),
            self.findings.iter().filter(|f| f.severity == Severity::Warning).count(),
            self.findings.iter().filter(|f| f.grandfathered).count(),
            self.is_clean()
        );
        out.push_str("  \"lints\": [");
        for (i, lint) in self.lints_run.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", json_str(lint));
        }
        out.push_str("],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"grandfathered\": {}, \"message\": {}}}",
                json_str(f.lint),
                json_str(f.severity.label()),
                json_str(&f.file),
                f.line,
                f.grandfathered,
                json_str(&f.message)
            );
            out.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    lint: "unordered-iteration",
                    severity: Severity::Error,
                    file: "crates/x/src/lib.rs".into(),
                    line: 7,
                    message: "HashMap iterated in library code".into(),
                    grandfathered: false,
                },
                Finding {
                    lint: "unwrap-in-lib",
                    severity: Severity::Error,
                    file: "crates/y/src/lib.rs".into(),
                    line: 3,
                    message: "unwrap() in library code".into(),
                    grandfathered: true,
                },
                Finding {
                    lint: "bad-suppression",
                    severity: Severity::Warning,
                    file: "crates/x/src/lib.rs".into(),
                    line: 1,
                    message: "unused suppression".into(),
                    grandfathered: false,
                },
            ],
            files_scanned: 2,
            lints_run: vec!["unordered-iteration", "unwrap-in-lib"],
        }
    }

    #[test]
    fn blocking_excludes_warnings_and_grandfathered() {
        let r = sample();
        assert_eq!(r.blocking().count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn human_rendering_has_file_line_and_summary() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/lib.rs:7: error[unordered-iteration]"));
        // Grandfathered findings are summarized, not listed.
        assert!(!text.contains("crates/y/src/lib.rs:3"));
        assert!(text.contains("1 error(s), 1 warning(s), 1 grandfathered"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = sample();
        r.findings[0].message = "quote \" and \\ backslash".into();
        let json = r.render_json();
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\\\" and \\\\ backslash"));
        assert!(json.contains("\"clean\": false"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
