//! Workspace discovery and lint orchestration.
//!
//! [`load`] reads the root `Cargo.toml`, expands the member list
//! (including `dir/*` globs), parses every member manifest, and scans
//! every `.rs` file under each non-compat crate's `src/`, `tests/`,
//! `benches/`, and `examples/` trees. [`run`] then applies the lints
//! from [`crate::lints`] and returns a [`Report`]. Both work on any
//! directory with a workspace-shaped `Cargo.toml`, which is how the
//! fixture tests drive the whole pipeline on miniature workspaces.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::{self, SuppressionTable};
use crate::manifest::{self, TomlDoc};
use crate::report::Report;
use crate::scanner::{self, ScannedFile};

/// Which tree of a crate a source file lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/` — library/binary code, fully linted.
    Lib,
    /// Under `tests/` — exempt from the determinism lints.
    Test,
    /// Under `benches/` — exempt like tests.
    Bench,
    /// Under `examples/` — linted for determinism, unwrap-exempt.
    Example,
}

/// One scanned `.rs` file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Index into [`Workspace::crates`].
    pub crate_idx: usize,
    /// Which tree the file lives in.
    pub kind: FileKind,
    /// The token stream and side tables.
    pub scanned: ScannedFile,
}

/// One workspace member (or the root package).
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `[package]`, or the directory name.
    pub name: String,
    /// Crate directory relative to the root (`""` for the root pkg).
    pub rel_dir: String,
    /// True for `crates/compat/*` stand-ins, which are exempt.
    pub is_compat: bool,
    /// Parsed `Cargo.toml`.
    pub manifest: TomlDoc,
    /// Manifest path relative to the root.
    pub manifest_rel: String,
    /// `# edm-allow(...)` comments found in the manifest.
    pub manifest_sups: Vec<scanner::Suppression>,
}

/// Everything the lints look at, loaded once.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Root package first (when present), then members in order.
    pub crates: Vec<CrateInfo>,
    /// Scanned sources of all non-compat crates.
    pub files: Vec<SourceFile>,
    /// Parsed `trace-probes.toml` (empty doc when absent).
    pub probe_registry: TomlDoc,
    /// `# edm-allow(...)` comments found in the probe registry (e.g.
    /// for entries synthesized inside `crates/trace`, which the
    /// call-site scan deliberately skips).
    pub probe_registry_sups: Vec<scanner::Suppression>,
    /// Registry path relative to the root.
    pub probe_registry_rel: String,
    /// `(rel_path, allowed_count)` from the unwrap baseline file.
    pub unwrap_baseline: Vec<(String, usize)>,
    /// Baseline path relative to the root.
    pub unwrap_baseline_rel: String,
    /// Parsed `sync-orderings.toml` (empty doc when absent).
    pub sync_orderings: TomlDoc,
    /// `# edm-allow(...)` comments found in the ordering registry.
    pub sync_orderings_sups: Vec<scanner::Suppression>,
    /// Ordering-registry path relative to the root.
    pub sync_orderings_rel: String,
    /// Parsed `edm-env.toml` (empty doc when absent).
    pub env_registry: TomlDoc,
    /// `# edm-allow(...)` comments found in the env registry.
    pub env_registry_sups: Vec<scanner::Suppression>,
    /// Env-registry path relative to the root.
    pub env_registry_rel: String,
    /// `README.md` contents, when the workspace has one. Fixture
    /// workspaces without a README skip the env-table drift check.
    pub readme: Option<String>,
}

/// Path of the probe registry, relative to the workspace root.
pub const PROBE_REGISTRY_REL: &str = "trace-probes.toml";
/// Path of the unwrap ratchet baseline, relative to the root.
pub const UNWRAP_BASELINE_REL: &str = "crates/lint/unwrap-baseline.toml";
/// Path of the atomic-ordering justification registry.
pub const SYNC_ORDERINGS_REL: &str = "sync-orderings.toml";
/// Path of the env-knob registry.
pub const ENV_REGISTRY_REL: &str = "edm-env.toml";

/// Loads the workspace rooted at `root`.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let root =
        root.canonicalize().map_err(|e| format!("cannot resolve root {}: {e}", root.display()))?;
    let root_manifest_path = root.join("Cargo.toml");
    let root_src = fs::read_to_string(&root_manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest_path.display()))?;
    let root_doc = manifest::parse(&root_src);

    let mut crates = Vec::new();
    if root_doc.section("package").is_some() {
        crates.push(make_crate("", &root_src, root_doc.clone()));
    }
    for member in expand_members(&root, &root_doc)? {
        let manifest_path = root.join(&member).join("Cargo.toml");
        let src = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let doc = manifest::parse(&src);
        crates.push(make_crate(&member, &src, doc));
    }

    let mut files = Vec::new();
    for (crate_idx, krate) in crates.iter().enumerate() {
        if krate.is_compat {
            continue;
        }
        let base = if krate.rel_dir.is_empty() { root.clone() } else { root.join(&krate.rel_dir) };
        for (sub, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("benches", FileKind::Bench),
            ("examples", FileKind::Example),
        ] {
            let dir = base.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            collect_rs_files(&dir, &mut paths);
            paths.sort();
            for path in paths {
                let src = fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let rel_path = rel_to(&root, &path);
                files.push(SourceFile { rel_path, crate_idx, kind, scanned: scanner::scan(&src) });
            }
        }
    }

    let (probe_registry, probe_registry_sups) =
        match fs::read_to_string(root.join(PROBE_REGISTRY_REL)) {
            Ok(src) => (manifest::parse(&src), scanner::scan_toml_suppressions(&src)),
            Err(_) => (TomlDoc::default(), Vec::new()),
        };
    let unwrap_baseline = match fs::read_to_string(root.join(UNWRAP_BASELINE_REL)) {
        Ok(src) => manifest::parse(&src)
            .section("counts")
            .map(|sec| {
                sec.entries
                    .iter()
                    .filter_map(|e| match &e.value {
                        manifest::TomlValue::Int(n) if *n >= 0 => {
                            Some((e.key.join("."), *n as usize))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };

    let (sync_orderings, sync_orderings_sups) =
        match fs::read_to_string(root.join(SYNC_ORDERINGS_REL)) {
            Ok(src) => (manifest::parse(&src), scanner::scan_toml_suppressions(&src)),
            Err(_) => (TomlDoc::default(), Vec::new()),
        };
    let (env_registry, env_registry_sups) = match fs::read_to_string(root.join(ENV_REGISTRY_REL)) {
        Ok(src) => (manifest::parse(&src), scanner::scan_toml_suppressions(&src)),
        Err(_) => (TomlDoc::default(), Vec::new()),
    };
    let readme = fs::read_to_string(root.join("README.md")).ok();

    Ok(Workspace {
        root,
        crates,
        files,
        probe_registry,
        probe_registry_sups,
        probe_registry_rel: PROBE_REGISTRY_REL.to_string(),
        unwrap_baseline,
        unwrap_baseline_rel: UNWRAP_BASELINE_REL.to_string(),
        sync_orderings,
        sync_orderings_sups,
        sync_orderings_rel: SYNC_ORDERINGS_REL.to_string(),
        env_registry,
        env_registry_sups,
        env_registry_rel: ENV_REGISTRY_REL.to_string(),
        readme,
    })
}

/// Runs every lint over a loaded workspace.
pub fn run(ws: &Workspace) -> Report {
    let mut sup = SuppressionTable::default();
    for file in &ws.files {
        sup.insert(&file.rel_path, file.scanned.suppressions.clone());
    }
    for krate in &ws.crates {
        if !krate.is_compat {
            sup.insert(&krate.manifest_rel, krate.manifest_sups.clone());
        }
    }
    sup.insert(&ws.probe_registry_rel, ws.probe_registry_sups.clone());
    sup.insert(&ws.sync_orderings_rel, ws.sync_orderings_sups.clone());
    sup.insert(&ws.env_registry_rel, ws.env_registry_sups.clone());

    let mut findings = lints::run_all(ws, &mut sup);
    lints::finish_suppressions(sup, &mut findings);

    let manifests = ws.crates.iter().filter(|c| !c.is_compat).count();
    let mut report = Report {
        findings,
        files_scanned: ws.files.len() + manifests,
        lints_run: lints::LINTS.iter().map(|(id, _)| *id).collect(),
    };
    report.sort();
    report
}

/// Convenience: load + run.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    Ok(run(&load(root)?))
}

/// Renders a fresh unwrap baseline (TOML) from the current tree.
pub fn render_baseline(ws: &Workspace) -> String {
    let mut out = String::from(
        "# Ratchet baseline for the `unwrap-in-lib` lint: per-file counts of\n\
         # non-test `.unwrap()` call sites that predate the lint. New files\n\
         # start at zero; shrink a file's count (or run\n\
         # `edm-lint --write-baseline`) when you clean one up. Never grow it.\n\
         \n[counts]\n",
    );
    let mut rows: Vec<(String, usize)> = ws
        .files
        .iter()
        .filter(|f| matches!(f.kind, FileKind::Lib) && !ws.crates[f.crate_idx].is_compat)
        .map(|f| (f.rel_path.clone(), lints::count_unwraps_non_test(f)))
        .filter(|(_, n)| *n > 0)
        .collect();
    rows.sort();
    for (path, n) in rows {
        let _ = writeln!(out, "\"{path}\" = {n}");
    }
    out
}

/// Renders the discovered probe inventory as a registry skeleton.
pub fn render_probe_dump(ws: &Workspace) -> String {
    let mut by_section: std::collections::BTreeMap<&str, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    for (name, section, rel_path, line) in lints::collect_probes(ws) {
        by_section.entry(section).or_default().push((name, format!("{rel_path}:{line}")));
    }
    let mut out = String::from("# Discovered edm-trace probes (edm-lint --dump-probes).\n");
    for section in ["spans", "counters", "histograms"] {
        let _ = writeln!(out, "\n[{section}]");
        let mut entries = by_section.remove(section).unwrap_or_default();
        entries.sort();
        entries.dedup_by(|a, b| a.0 == b.0);
        for (name, site) in entries {
            let _ = writeln!(out, "\"{name}\" = \"TODO: describe\" # {site}");
        }
    }
    out
}

fn make_crate(rel_dir: &str, manifest_src: &str, doc: TomlDoc) -> CrateInfo {
    let name =
        doc.get("package", "name").and_then(|v| v.as_str()).map(str::to_string).unwrap_or_else(
            || {
                Path::new(rel_dir)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            },
        );
    let manifest_rel =
        if rel_dir.is_empty() { "Cargo.toml".to_string() } else { format!("{rel_dir}/Cargo.toml") };
    CrateInfo {
        name,
        is_compat: rel_dir.contains("compat"),
        rel_dir: rel_dir.to_string(),
        manifest: doc,
        manifest_rel,
        manifest_sups: scanner::scan_toml_suppressions(manifest_src),
    }
}

fn expand_members(root: &Path, root_doc: &TomlDoc) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let members = root_doc
        .get("workspace", "members")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap_or_default();
    for member in members {
        let Some(pattern) = member.as_str() else { continue };
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let dir = root.join(prefix);
            let entries =
                fs::read_dir(&dir).map_err(|e| format!("cannot expand {pattern}: {e}"))?;
            let mut expanded: Vec<String> = entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .map(|e| format!("{prefix}/{}", e.file_name().to_string_lossy()))
                .collect();
            expanded.sort();
            out.extend(expanded);
        } else {
            out.push(pattern.to_string());
        }
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            // `fixtures/` trees hold deliberately-bad lint inputs;
            // `target/` holds build products.
            let name = entry.file_name();
            if name != "fixtures" && name != "target" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_are_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(rel_to(root, Path::new("/a/b/crates/x/src/lib.rs")), "crates/x/src/lib.rs");
    }
}
