//! The concurrency-correctness lints.
//!
//! Four lints built on a shared block-scope walker over the token
//! stream, plus the env-knob registry check:
//!
//! * `condvar-predicate-loop` — a `.wait(guard)` / `.wait_timeout(...)`
//!   call with no enclosing `loop`/`while`/`for` scope cannot be
//!   rechecking its predicate; spurious wakeups make it a bug.
//! * `lock-across-blocking` — a lock guard bound in the current block
//!   is still live when a blocking I/O call (`read`/`write` with
//!   payload args, `write_all`, `flush`, `accept`, `recv`, `join()`,
//!   ...) runs: the lock's critical section now includes socket/disk
//!   latency.
//! * `atomic-ordering-audit` — every `Ordering::{Relaxed,Acquire,
//!   Release,AcqRel,SeqCst}` argument site is diffed against the
//!   checked-in `sync-orderings.toml`, which carries a one-line
//!   justification per `op.Ordering` pair per file (mirroring
//!   `trace-probes.toml`): undocumented sites, stale entries, and
//!   empty justifications all fail.
//! * `lock-order-graph` — nested guard scopes yield a static
//!   acquired-while-held graph (nodes are `crate/receiver` names);
//!   the graph is emitted to `results/lock-graph.json` and any cycle
//!   is a finding, because a cycle is a latent deadlock.
//! * `env-knob-registry` — every `EDM_*` env read/write in lib code
//!   must appear in `edm-env.toml` (default + description), and the
//!   README's generated env-var table must match the registry.
//!
//! The walker is a heuristic, not a compiler: guards threaded through
//! function calls or held by temporaries chained into closure-taking
//! adapters (`x.lock().expect(..).retain(..)`) are invisible to it.
//! The runtime checker in `edm-sync` covers those shapes; the static
//! lints catch the lexically-nested majority at review time.

use std::collections::{BTreeMap, BTreeSet};

use crate::driver::{SourceFile, Workspace};
use crate::lints::{ident, lib_files, punct, string, SuppressionTable};
use crate::manifest::TomlValue;
use crate::report::{Finding, Severity};
use crate::scanner::TokenKind;

/// Runs the five concurrency/registry lints, appending findings.
pub fn run_all(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    let scans: Vec<(usize, FileScan)> = lib_files(ws)
        .map(|(idx, file)| (idx, walk_file(&ws.crates[file.crate_idx].name, file)))
        .collect();
    condvar_predicate_loop(ws, &scans, sup, findings);
    lock_across_blocking(ws, &scans, sup, findings);
    atomic_ordering_audit(ws, sup, findings);
    lock_order_graph(ws, &scans, sup, findings);
    env_knob_registry(ws, sup, findings);
}

// ---------------------------------------------------------------------
// The block-scope walker
// ---------------------------------------------------------------------

/// A lock guard the walker believes is live in some block scope.
struct GuardInfo {
    /// The `let` binding holding the guard (guards bound to a name can
    /// be killed early by `drop(name)`).
    binding: String,
    /// Graph node: `<crate>/<receiver-tail-ident>`.
    node: String,
}

struct Scope {
    /// True for `loop`/`while`/`for` bodies.
    is_loop: bool,
    guards: Vec<GuardInfo>,
}

/// One `.lock()`/`.read()`/`.write()` acquisition site.
struct Acquisition {
    node: String,
    line: u32,
    /// Nodes of every guard live when this acquisition ran.
    held: Vec<String>,
}

/// One blocking call that ran while a guard was live.
struct BlockingHit {
    call: String,
    line: u32,
    guard_node: String,
}

/// One condvar wait with no enclosing loop scope.
struct CondvarHit {
    call: String,
    line: u32,
}

/// Everything one walker pass extracts from a file.
struct FileScan {
    acquisitions: Vec<Acquisition>,
    blocking: Vec<BlockingHit>,
    condvars: Vec<CondvarHit>,
}

/// Post-guard adapters that still yield the guard itself.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Methods that block on I/O or another thread. `read`/`write` count
/// only with payload args (empty parens are `RwLock` acquisitions) and
/// `join` only with empty parens (`Path::join(part)` takes an arg).
const BLOCKING_ANY_ARGS: &[&str] = &[
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
];

fn walk_file(crate_name: &str, file: &SourceFile) -> FileScan {
    let toks = &file.scanned.tokens;
    let mut scan =
        FileScan { acquisitions: Vec::new(), blocking: Vec::new(), condvars: Vec::new() };
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_loop = false;
    let mut pending_impl = false;
    let mut pending_let: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Ident(id) => match id.as_str() {
                "impl" => pending_impl = true,
                "loop" | "while" => pending_loop = true,
                // `impl Trait for Type` is not a loop head; real `for`
                // loops never follow a pending `impl`.
                "for" if !pending_impl => pending_loop = true,
                "let" => {
                    let mut j = i + 1;
                    if ident(toks, j) == Some("mut") {
                        j += 1;
                    }
                    pending_let = ident(toks, j).map(str::to_string);
                }
                "drop"
                    if punct(toks, i + 1) == Some('(')
                        && ident(toks, i + 2).is_some()
                        && punct(toks, i + 3) == Some(')') =>
                {
                    let name = ident(toks, i + 2).unwrap_or_default();
                    for scope in scopes.iter_mut().rev() {
                        if let Some(pos) = scope.guards.iter().position(|g| g.binding == name) {
                            scope.guards.remove(pos);
                            break;
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Punct('{') => {
                scopes.push(Scope { is_loop: pending_loop, guards: Vec::new() });
                pending_loop = false;
                pending_impl = false;
            }
            TokenKind::Punct('}') => {
                scopes.pop();
            }
            TokenKind::Punct(';') => pending_let = None,
            TokenKind::Punct('.') => {
                if let Some(next) = walk_method_call(
                    crate_name,
                    file,
                    toks,
                    i,
                    &mut scopes,
                    &mut pending_let,
                    &mut scan,
                ) {
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    scan
}

/// Handles one `.method(` site at `toks[i] == '.'`. Returns the index
/// to resume from when the site was consumed as a guard acquisition.
#[allow(clippy::too_many_arguments)]
fn walk_method_call(
    crate_name: &str,
    file: &SourceFile,
    toks: &[crate::scanner::Token],
    i: usize,
    scopes: &mut [Scope],
    pending_let: &mut Option<String>,
    scan: &mut FileScan,
) -> Option<usize> {
    let method = ident(toks, i + 1)?;
    if punct(toks, i + 2) != Some('(') {
        return None;
    }
    let line = toks[i + 1].line;
    let empty_args = punct(toks, i + 3) == Some(')');
    let in_test = file.scanned.in_test_region(line);

    // Guard acquisition: `.lock()` / `.read()` / `.write()`, no args.
    if matches!(method, "lock" | "read" | "write") && empty_args {
        if in_test {
            return None;
        }
        let receiver = if i > 0 { ident(toks, i - 1) } else { None };
        let node = format!("{crate_name}/{}", receiver.unwrap_or("anon"));
        let held: Vec<String> =
            scopes.iter().flat_map(|s| s.guards.iter()).map(|g| g.node.clone()).collect();
        scan.acquisitions.push(Acquisition { node: node.clone(), line, held });
        // Skip the poisoning adapters; anything else chained after
        // means the guard is a temporary (no block-scope liveness).
        let mut j = i + 4;
        while punct(toks, j) == Some('.')
            && ident(toks, j + 1).is_some_and(|m| GUARD_ADAPTERS.contains(&m))
            && punct(toks, j + 2) == Some('(')
        {
            j = skip_parens(toks, j + 2);
        }
        let is_temp = punct(toks, j) == Some('.');
        if !is_temp {
            if let Some(binding) = pending_let.take() {
                if let Some(scope) = scopes.last_mut() {
                    scope.guards.push(GuardInfo { binding, node });
                }
            }
        }
        return Some(j);
    }

    // Condvar wait: `.wait(guard)` / `.wait_timeout(guard, dur)` with
    // args (`Child::wait()` and `Barrier::wait()` take none);
    // `wait_while` carries its own predicate recheck.
    if matches!(method, "wait" | "wait_timeout") && !empty_args && !in_test {
        if !scopes.iter().any(|s| s.is_loop) {
            scan.condvars.push(CondvarHit { call: method.to_string(), line });
        }
        return None;
    }

    // Blocking I/O while a guard is live in this function's scopes.
    let blocking = (matches!(method, "read" | "write") && !empty_args)
        || (method == "join" && empty_args)
        || BLOCKING_ANY_ARGS.contains(&method);
    if blocking && !in_test {
        if let Some(guard) = scopes.iter().flat_map(|s| s.guards.iter()).next_back() {
            scan.blocking.push(BlockingHit {
                call: method.to_string(),
                line,
                guard_node: guard.node.clone(),
            });
        }
    }
    None
}

/// Given `toks[open] == '('`, returns the index just past the matching
/// close paren.
fn skip_parens(toks: &[crate::scanner::Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------
// condvar-predicate-loop
// ---------------------------------------------------------------------

fn condvar_predicate_loop(
    ws: &Workspace,
    scans: &[(usize, FileScan)],
    sup: &mut SuppressionTable,
    findings: &mut Vec<Finding>,
) {
    const LINT: &str = "condvar-predicate-loop";
    for (idx, scan) in scans {
        let file = &ws.files[*idx];
        for hit in &scan.condvars {
            if sup.allows(&file.rel_path, LINT, hit.line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: hit.line,
                message: format!(
                    ".{}(..) outside any loop: condvar wakeups are spurious-prone; recheck the predicate in a while/loop",
                    hit.call
                ),
                grandfathered: false,
            });
        }
    }
}

// ---------------------------------------------------------------------
// lock-across-blocking
// ---------------------------------------------------------------------

fn lock_across_blocking(
    ws: &Workspace,
    scans: &[(usize, FileScan)],
    sup: &mut SuppressionTable,
    findings: &mut Vec<Finding>,
) {
    const LINT: &str = "lock-across-blocking";
    for (idx, scan) in scans {
        let file = &ws.files[*idx];
        for hit in &scan.blocking {
            if sup.allows(&file.rel_path, LINT, hit.line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: hit.line,
                message: format!(
                    "blocking .{}(..) while the {} guard is held: the critical section now includes I/O latency; drop the guard first",
                    hit.call, hit.guard_node
                ),
                grandfathered: false,
            });
        }
    }
}

// ---------------------------------------------------------------------
// atomic-ordering-audit
// ---------------------------------------------------------------------

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// How far back (in tokens) to look for the atomic op an `Ordering::*`
/// argument belongs to. `compare_exchange(cur, next, AcqRel, Relaxed)`
/// puts the second ordering ~14 tokens after the op ident; 24 leaves
/// slack for closure arguments in `fetch_update`.
const OP_SCAN_WINDOW: usize = 24;

/// Every audited `Ordering::*` site in linted library code:
/// `(rel_path, "op.Ordering", line)`. Also drives `--dump-orderings`.
pub fn collect_ordering_sites(ws: &Workspace) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    for (_, file) in lib_files(ws) {
        let toks = &file.scanned.tokens;
        for i in 0..toks.len() {
            if ident(toks, i) != Some("Ordering")
                || punct(toks, i + 1) != Some(':')
                || punct(toks, i + 2) != Some(':')
            {
                continue;
            }
            let Some(ordering) = ident(toks, i + 3).filter(|o| ORDERINGS.contains(o)) else {
                continue;
            };
            let line = toks[i].line;
            if file.scanned.in_test_region(line) {
                continue;
            }
            // Nearest atomic op ident looking backwards. Sites with no
            // op in the window (use statements, match arms on a stored
            // Ordering) are not argument positions and are skipped.
            let start = i.saturating_sub(OP_SCAN_WINDOW);
            let op = (start..i).rev().find_map(|j| {
                ident(toks, j).filter(|id| ATOMIC_OPS.contains(id)).map(str::to_string)
            });
            let Some(op) = op else { continue };
            out.push((file.rel_path.clone(), format!("{op}.{ordering}"), line));
        }
    }
    out
}

fn atomic_ordering_audit(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "atomic-ordering-audit";

    // 1. The registry itself: duplicates and empty justifications.
    // `registered[file][key] = line`.
    let mut registered: BTreeMap<&str, BTreeMap<String, u32>> = BTreeMap::new();
    for section in &ws.sync_orderings.sections {
        if section.name.is_empty() {
            continue;
        }
        let per_file = registered.entry(section.name.as_str()).or_default();
        for entry in &section.entries {
            let key = entry.key.join(".");
            if entry.value.as_str().is_none_or(str::is_empty) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.sync_orderings_rel.clone(),
                    line: entry.line,
                    message: format!(
                        "\"{key}\" in [\"{}\"] has no justification: say why this ordering is sufficient",
                        section.name
                    ),
                    grandfathered: false,
                });
            }
            if let Some(prev) = per_file.get(&key) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.sync_orderings_rel.clone(),
                    line: entry.line,
                    message: format!(
                        "duplicate entry \"{key}\" in [\"{}\"] (already at line {prev})",
                        section.name
                    ),
                    grandfathered: false,
                });
            } else {
                per_file.insert(key, entry.line);
            }
        }
    }

    // 2. Code sites: every op.Ordering pair per file must be justified.
    let sites = collect_ordering_sites(ws);
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for (rel_path, key, line) in &sites {
        used.insert((rel_path.clone(), key.clone()));
        let documented =
            registered.get(rel_path.as_str()).is_some_and(|keys| keys.contains_key(key));
        if documented || sup.allows(rel_path, LINT, *line) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file: rel_path.clone(),
            line: *line,
            message: format!(
                "atomic {key} is not justified in {}: add a \"{key}\" entry under [\"{rel_path}\"]",
                ws.sync_orderings_rel
            ),
            grandfathered: false,
        });
    }

    // 3. Stale registry entries and whole stale file sections.
    let scanned: BTreeSet<&str> = ws.files.iter().map(|f| f.rel_path.as_str()).collect();
    for (file, keys) in &registered {
        if !scanned.contains(file) {
            let line = keys.values().min().copied().unwrap_or(0);
            if !sup.allows(&ws.sync_orderings_rel, LINT, line) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.sync_orderings_rel.clone(),
                    line,
                    message: format!(
                        "stale section [\"{file}\"]: that file is not in the workspace"
                    ),
                    grandfathered: false,
                });
            }
            continue;
        }
        for (key, line) in keys {
            if used.contains(&(file.to_string(), key.clone())) {
                continue;
            }
            if sup.allows(&ws.sync_orderings_rel, LINT, *line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: ws.sync_orderings_rel.clone(),
                line: *line,
                message: format!(
                    "stale entry \"{key}\" in [\"{file}\"]: no such atomic site remains"
                ),
                grandfathered: false,
            });
        }
    }
}

// ---------------------------------------------------------------------
// lock-order-graph
// ---------------------------------------------------------------------

/// One acquired-while-held edge with the sites that witnessed it.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Node held at acquisition time.
    pub from: String,
    /// Node being acquired.
    pub to: String,
    /// `rel_path:line` witnesses, sorted and deduplicated.
    pub sites: Vec<String>,
}

/// The static acquired-while-held graph for a workspace.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock node observed (acquired anywhere), sorted.
    pub nodes: Vec<String>,
    /// Edges in `(from, to)` order.
    pub edges: Vec<LockEdge>,
    /// Every cycle found, as a node path (first node repeated last).
    pub cycles: Vec<Vec<String>>,
}

/// Builds the static lock graph from nested guard scopes.
pub fn build_lock_graph(ws: &Workspace) -> LockGraph {
    let scans: Vec<(usize, FileScan)> = lib_files(ws)
        .map(|(idx, file)| (idx, walk_file(&ws.crates[file.crate_idx].name, file)))
        .collect();
    build_graph_from_scans(ws, &scans)
}

fn build_graph_from_scans(ws: &Workspace, scans: &[(usize, FileScan)]) -> LockGraph {
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for (idx, scan) in scans {
        let file = &ws.files[*idx];
        for acq in &scan.acquisitions {
            nodes.insert(acq.node.clone());
            for held in &acq.held {
                // Same-node nesting is instance-level, not class-level:
                // the graph cannot tell two slots apart, so no self-edges.
                if held != &acq.node {
                    edges
                        .entry((held.clone(), acq.node.clone()))
                        .or_default()
                        .insert(format!("{}:{}", file.rel_path, acq.line));
                }
            }
        }
    }
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adjacency.entry(from).or_default().insert(to);
    }
    let cycles = find_cycles(&adjacency);
    LockGraph {
        nodes: nodes.into_iter().collect(),
        edges: edges
            .into_iter()
            .map(|((from, to), sites)| LockEdge { from, to, sites: sites.into_iter().collect() })
            .collect(),
        cycles,
    }
}

/// Depth-first search for cycles; each back edge yields one cycle path
/// (`a -> b -> a` reported as `[a, b, a]`).
fn find_cycles(adjacency: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = adjacency
        .iter()
        .flat_map(|(from, tos)| std::iter::once(*from).chain(tos.iter().copied()))
        .map(|n| (n, Color::White))
        .collect();
    let mut cycles = Vec::new();
    let keys: Vec<&str> = color.keys().copied().collect();
    for start in keys {
        if color[start] != Color::White {
            continue;
        }
        // Iterative DFS keeping the gray path for cycle extraction.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(
            start,
            adjacency.get(start).map(|s| s.iter().copied().collect()).unwrap_or_default(),
        )];
        color.insert(start, Color::Gray);
        let mut path = vec![start];
        while let Some((node, pending)) = stack.last_mut() {
            let Some(next) = pending.pop() else {
                color.insert(node, Color::Black);
                path.pop();
                stack.pop();
                continue;
            };
            match color.get(next).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[pos..].iter().map(|n| n.to_string()).collect();
                    cycle.push(next.to_string());
                    cycles.push(cycle);
                }
                Color::White => {
                    color.insert(next, Color::Gray);
                    path.push(next);
                    stack.push((
                        next,
                        adjacency
                            .get(next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default(),
                    ));
                }
                Color::Black => {}
            }
        }
    }
    cycles
}

/// Renders a [`LockGraph`] as the `results/lock-graph.json` document.
pub fn render_lock_graph(graph: &LockGraph) -> String {
    use crate::report::json_str;
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"nodes\": [");
    for (i, n) in graph.nodes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(n));
    }
    out.push_str("],\n  \"edges\": [\n");
    for (i, e) in graph.edges.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"from\": {}, \"to\": {}, \"sites\": [{}]}}",
            json_str(&e.from),
            json_str(&e.to),
            e.sites.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(", ")
        );
        out.push_str(if i + 1 < graph.edges.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"cycles\": [");
    for (i, cycle) in graph.cycles.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ =
            write!(out, "[{}]", cycle.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", "));
    }
    out.push_str("]\n}\n");
    out
}

fn lock_order_graph(
    ws: &Workspace,
    scans: &[(usize, FileScan)],
    sup: &mut SuppressionTable,
    findings: &mut Vec<Finding>,
) {
    const LINT: &str = "lock-order-graph";
    let graph = build_graph_from_scans(ws, scans);
    for cycle in &graph.cycles {
        // Anchor the finding at a witness site of the cycle-closing
        // edge so the suppression (if ever justified) sits in code.
        let (file, line) = cycle
            .windows(2)
            .find_map(|pair| {
                graph
                    .edges
                    .iter()
                    .find(|e| e.from == pair[0] && e.to == pair[1])
                    .and_then(|e| e.sites.first())
                    .and_then(|site| {
                        let (f, l) = site.rsplit_once(':')?;
                        Some((f.to_string(), l.parse::<u32>().ok()?))
                    })
            })
            .unwrap_or_else(|| (ws.sync_orderings_rel.clone(), 0));
        if sup.allows(&file, LINT, line) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file,
            line,
            message: format!(
                "lock-order cycle (latent deadlock): {}; break the cycle or always acquire in one order",
                cycle.join(" -> ")
            ),
            grandfathered: false,
        });
    }
}

// ---------------------------------------------------------------------
// env-knob-registry
// ---------------------------------------------------------------------

/// Markers bracketing the generated env-var table in the README.
pub const ENV_TABLE_BEGIN: &str = "<!-- edm-env:begin -->";
/// Closing marker; everything between the two is generated.
pub const ENV_TABLE_END: &str = "<!-- edm-env:end -->";

const ENV_CALLS: &[&str] = &["var", "var_os", "set_var", "remove_var"];

/// Every `EDM_*` env access in linted library code:
/// `(knob, rel_path, line)`.
pub fn collect_env_sites(ws: &Workspace) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    for (_, file) in lib_files(ws) {
        let toks = &file.scanned.tokens;
        for i in 0..toks.len() {
            if !ident(toks, i).is_some_and(|id| ENV_CALLS.contains(&id)) {
                continue;
            }
            // Require the `env::` path so a local `var(..)` helper
            // cannot trip the lint.
            if i < 3
                || ident(toks, i - 3) != Some("env")
                || punct(toks, i - 2) != Some(':')
                || punct(toks, i - 1) != Some(':')
            {
                continue;
            }
            if punct(toks, i + 1) != Some('(') {
                continue;
            }
            let Some(name) = string(toks, i + 2).filter(|s| s.starts_with("EDM_")) else {
                continue;
            };
            let line = toks[i].line;
            if file.scanned.in_test_region(line) {
                continue;
            }
            out.push((name.to_string(), file.rel_path.clone(), line));
        }
    }
    out
}

/// Renders the registry as the README's markdown env-var table (the
/// content between the markers, markers not included).
pub fn render_env_table(ws: &Workspace) -> String {
    let mut rows: BTreeMap<String, (String, String)> = BTreeMap::new();
    if let Some(sec) = ws.env_registry.section("knobs") {
        for entry in &sec.entries {
            let name = entry.key.join(".");
            let default =
                entry.value.get("default").and_then(TomlValue::as_str).unwrap_or("").to_string();
            let doc = entry.value.get("doc").and_then(TomlValue::as_str).unwrap_or("").to_string();
            rows.entry(name).or_insert((default, doc));
        }
    }
    let mut out = String::from("| Variable | Default | Description |\n|---|---|---|\n");
    for (name, (default, doc)) in rows {
        out.push_str(&format!("| `{name}` | `{default}` | {doc} |\n"));
    }
    out
}

fn env_knob_registry(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "env-knob-registry";

    // 1. The registry: duplicates and missing default/doc.
    let mut registered: BTreeMap<String, u32> = BTreeMap::new();
    if let Some(sec) = ws.env_registry.section("knobs") {
        for entry in &sec.entries {
            let name = entry.key.join(".");
            let default = entry.value.get("default").and_then(TomlValue::as_str);
            let doc = entry.value.get("doc").and_then(TomlValue::as_str);
            if default.is_none() || doc.is_none_or(str::is_empty) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.env_registry_rel.clone(),
                    line: entry.line,
                    message: format!(
                        "knob \"{name}\" must carry both a default and a non-empty doc string"
                    ),
                    grandfathered: false,
                });
            }
            if let Some(prev) = registered.get(&name) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.env_registry_rel.clone(),
                    line: entry.line,
                    message: format!("duplicate knob \"{name}\" (already at line {prev})"),
                    grandfathered: false,
                });
            } else {
                registered.insert(name, entry.line);
            }
        }
    }

    // 2. Code sites: every EDM_* access must be documented.
    let mut used: BTreeSet<String> = BTreeSet::new();
    for (name, rel_path, line) in collect_env_sites(ws) {
        used.insert(name.clone());
        if registered.contains_key(&name) || sup.allows(&rel_path, LINT, line) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file: rel_path,
            line,
            message: format!(
                "env knob \"{name}\" is not documented in {}: add name, default, and doc",
                ws.env_registry_rel
            ),
            grandfathered: false,
        });
    }

    // 3. Stale registry entries.
    for (name, line) in &registered {
        if used.contains(name) || sup.allows(&ws.env_registry_rel, LINT, *line) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file: ws.env_registry_rel.clone(),
            line: *line,
            message: format!("stale knob \"{name}\": nothing in the workspace reads it"),
            grandfathered: false,
        });
    }

    // 4. README drift: the generated table must match the registry.
    // Workspaces without a README (fixtures) skip this check.
    let Some(readme) = &ws.readme else { return };
    let rendered = render_env_table(ws);
    let block = readme.split_once(ENV_TABLE_BEGIN).and_then(|(_, rest)| {
        rest.split_once(ENV_TABLE_END).map(|(inner, _)| inner.trim().to_string())
    });
    let message = match block {
        None => Some(format!(
            "README.md has no {ENV_TABLE_BEGIN}/{ENV_TABLE_END} block; add one and run edm-lint --write-env-table"
        )),
        Some(inner) if inner != rendered.trim() => Some(
            "README env-var table is out of date with edm-env.toml; run edm-lint --write-env-table"
                .to_string(),
        ),
        Some(_) => None,
    };
    if let Some(message) = message {
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file: "README.md".to_string(),
            line: 0,
            message,
            grandfathered: false,
        });
    }
}

/// Renders the discovered ordering inventory as a registry skeleton
/// (`edm-lint --dump-orderings`).
pub fn render_ordering_dump(ws: &Workspace) -> String {
    use std::fmt::Write as _;
    let mut by_file: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
    for (rel_path, key, line) in collect_ordering_sites(ws) {
        by_file.entry(rel_path).or_default().entry(key).or_insert(line);
    }
    let mut out = String::from("# Discovered atomic Ordering sites (edm-lint --dump-orderings).\n");
    for (file, keys) in by_file {
        let _ = writeln!(out, "\n[\"{file}\"]");
        for (key, line) in keys {
            let _ = writeln!(out, "\"{key}\" = \"TODO: justify\" # line {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    fn scan_src(src: &str) -> FileScan {
        let file = SourceFile {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_idx: 0,
            kind: crate::driver::FileKind::Lib,
            scanned: scanner::scan(src),
        };
        walk_file("x", &file)
    }

    #[test]
    fn wait_in_loop_is_clean_and_bare_wait_is_not() {
        let scan = scan_src(
            "fn ok(cv: &Condvar, m: &Mutex<bool>) {\n\
             let mut g = m.lock().unwrap();\n\
             while !*g { g = cv.wait(g).unwrap(); }\n\
             }\n\
             fn bad(cv: &Condvar, m: &Mutex<bool>) {\n\
             let g = m.lock().unwrap();\n\
             let _g = cv.wait(g).unwrap();\n\
             }\n",
        );
        assert_eq!(scan.condvars.len(), 1);
        assert_eq!(scan.condvars[0].line, 7);
    }

    #[test]
    fn empty_arg_waits_are_not_condvar_waits() {
        let scan = scan_src("fn f(c: std::process::Child) { c.wait(); }");
        assert!(scan.condvars.is_empty(), "Child::wait() takes no guard");
    }

    #[test]
    fn guard_live_across_write_all_is_flagged() {
        let scan = scan_src(
            "fn bad(m: &Mutex<u32>, s: &mut TcpStream) {\n\
             let g = m.lock().unwrap();\n\
             s.write_all(b\"x\").unwrap();\n\
             }\n\
             fn ok(m: &Mutex<u32>, s: &mut TcpStream) {\n\
             let g = m.lock().unwrap();\n\
             drop(g);\n\
             s.write_all(b\"x\").unwrap();\n\
             }\n",
        );
        assert_eq!(scan.blocking.len(), 1);
        assert_eq!(scan.blocking[0].line, 3);
        assert_eq!(scan.blocking[0].guard_node, "x/m");
    }

    #[test]
    fn temp_guards_do_not_stay_live() {
        let scan = scan_src(
            "fn f(m: &Mutex<Vec<u32>>, s: &mut TcpStream) {\n\
             m.lock().unwrap().clear();\n\
             s.flush().unwrap();\n\
             }",
        );
        assert!(scan.blocking.is_empty(), "chained temp guard died at the semicolon");
    }

    #[test]
    fn rwlock_read_write_empty_args_are_acquisitions_not_io() {
        let scan = scan_src(
            "fn f(l: &RwLock<u32>) {\n\
             let r = l.read().unwrap();\n\
             }\n\
             fn g(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf).unwrap(); }",
        );
        assert_eq!(scan.acquisitions.len(), 1);
        assert!(scan.blocking.is_empty(), "no guard live when s.read ran");
    }

    #[test]
    fn nested_guards_record_edges_and_impl_for_is_not_a_loop() {
        let scan = scan_src(
            "impl Trait for Thing {\n\
             fn f(&self) {\n\
             let a = self.alpha.lock().unwrap();\n\
             let b = self.beta.lock().unwrap();\n\
             }\n\
             }",
        );
        assert_eq!(scan.acquisitions.len(), 2);
        assert_eq!(scan.acquisitions[1].held, vec!["x/alpha".to_string()]);
    }

    #[test]
    fn cycles_are_found_and_acyclic_graphs_pass() {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        adj.entry("a").or_default().insert("b");
        adj.entry("b").or_default().insert("c");
        assert!(find_cycles(&adj).is_empty());
        adj.entry("c").or_default().insert("a");
        let cycles = find_cycles(&adj);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].first(), cycles[0].last());
        assert_eq!(cycles[0].len(), 4, "a -> b -> c -> a");
    }
}
