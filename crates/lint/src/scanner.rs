//! A small Rust source scanner: enough lexing to drive the lints.
//!
//! This is not a full lexer. It produces a flat token stream of
//! identifiers, string literals, and punctuation with 1-based line
//! numbers, skipping comments, char literals, and lifetimes — the
//! shapes every lint in this crate matches on. Along the way it
//! collects `// edm-allow(...)` suppression comments and marks which
//! lines fall inside `#[cfg(test)] mod ... { }` regions so test code
//! can be exempted without parsing the full grammar.

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// The token shapes the lints match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`thread`, `spawn`, `fn`, ...).
    Ident(String),
    /// A string literal's unescaped-as-written contents (no quotes).
    Str(String),
    /// A single punctuation byte (`(`, `.`, `:`, `#`, ...).
    Punct(char),
}

/// An inline `// edm-allow(lint-id): reason` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The lint id between the parentheses.
    pub lint_id: String,
    /// The reason after the colon, trimmed; empty when missing.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// True for `edm-allow-file(...)`, which covers the whole file.
    pub whole_file: bool,
    /// Set by the driver when a finding consumed this suppression.
    pub used: bool,
}

/// A scanned source file: tokens plus the side tables the lints need.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Flat token stream in source order.
    pub tokens: Vec<Token>,
    /// All `edm-allow` comments found, in source order.
    pub suppressions: Vec<Suppression>,
    /// Half-open `[start, end]` line ranges inside `#[cfg(test)]` mods.
    pub test_regions: Vec<(u32, u32)>,
    /// Total number of lines in the file.
    pub line_count: u32,
}

impl ScannedFile {
    /// True when `line` falls inside a `#[cfg(test)] mod` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// Lexes `src` into tokens, suppressions, and test-region spans.
pub fn scan(src: &str) -> ScannedFile {
    let mut out = ScannedFile::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            // Line comment (or doc comment): scan for edm-allow, skip.
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                let text = &src[i..end];
                if let Some(sup) = parse_suppression(text, line) {
                    out.suppressions.push(sup);
                }
                i = end;
            }
            // Block comment: skip with nesting, tracking newlines.
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            // Raw string literal r"..." / r#"..."# (with optional b).
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                let (contents, next, newlines) = lex_raw_string(src, i);
                line += newlines;
                out.tokens.push(Token { kind: TokenKind::Str(contents), line: start_line });
                i = next;
            }
            // Ordinary string literal (or b"...").
            b'"' => {
                let start_line = line;
                let (contents, next, newlines) = lex_string(src, i);
                line += newlines;
                out.tokens.push(Token { kind: TokenKind::Str(contents), line: start_line });
                i = next;
            }
            // Char literal or lifetime. 'a' is a char, 'a is a
            // lifetime; disambiguate by looking for the closing quote.
            b'\'' => {
                i = skip_char_or_lifetime(bytes, i);
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // `b` / `r` prefixes on strings were handled above, so
                // anything here really is an identifier or keyword.
                out.tokens.push(Token { kind: TokenKind::Ident(ident.to_string()), line });
            }
            _ if b.is_ascii_digit() => {
                // Numeric literal: skip (incl. underscores, suffixes,
                // hex). Floats with exponents are covered because every
                // constituent byte is alphanumeric, `_`, `.`, `+`, `-`;
                // the sign only follows e/E so plain punctuation after
                // a number still lexes on its own.
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    out.tokens.push(Token { kind: TokenKind::Punct(b as char), line });
                }
                i += 1;
            }
        }
    }

    out.line_count = line;
    out.test_regions = find_test_regions(&out.tokens);
    out
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |p| from + p)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r" r#" br" rb" — any r immediately opening a raw string.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn lex_raw_string(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // r
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let content_start = i;
    let closer: Vec<u8> = std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        if bytes[i] == b'"' && bytes[i..].starts_with(&closer) {
            let contents = src[content_start..i].to_string();
            return (contents, i + closer.len(), newlines);
        }
        i += 1;
    }
    (src[content_start..].to_string(), bytes.len(), newlines)
}

fn lex_string(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    let content_start = i;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                let contents = src[content_start..i].to_string();
                return (contents, i + 1, newlines);
            }
            _ => i += 1,
        }
    }
    (src[content_start..].to_string(), bytes.len(), newlines)
}

fn skip_char_or_lifetime(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    if i >= bytes.len() {
        return i;
    }
    if bytes[i] == b'\\' {
        // Escaped char literal: skip escape, then to closing quote.
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    // 'x' is a char literal iff the next-next byte closes it.
    if bytes.get(i + 1) == Some(&b'\'') {
        return i + 2;
    }
    // Otherwise a lifetime: skip the identifier part.
    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    i
}

/// Parses one `// edm-allow(lint-id): reason` comment line.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    suppression_from_comment_body(comment.trim_start_matches('/').trim_start(), line)
}

/// Scans TOML `# edm-allow(...)` comments (manifests can be
/// suppressed too, e.g. for `feature-forwarding`).
pub fn scan_toml_suppressions(src: &str) -> Vec<Suppression> {
    src.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let body = l.trim_start().strip_prefix('#')?.trim_start();
            suppression_from_comment_body(body, (i + 1) as u32)
        })
        .collect()
}

/// Parses a comment body (marker already stripped) as a suppression.
fn suppression_from_comment_body(body: &str, line: u32) -> Option<Suppression> {
    let (whole_file, rest) = if let Some(r) = body.strip_prefix("edm-allow-file(") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("edm-allow(") {
        (false, r)
    } else {
        return None;
    };
    let close = rest.find(')')?;
    let lint_id = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map_or("", str::trim).to_string();
    Some(Suppression { lint_id, reason, line, whole_file, used: false })
}

/// Finds `#[cfg(test)] mod name { ... }` line ranges by brace matching
/// over the token stream. Also treats `#[cfg(test)]` directly above
/// a `mod` with intervening attributes as the same region.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_cfg_test_attr(tokens, i) {
            i += 1;
            continue;
        }
        // Skip past the attribute: #[cfg(test)] is 7 tokens.
        let mut j = i + 7;
        // Allow further attributes (#[...]) between cfg(test) and mod.
        while matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('#'))) {
            j = skip_attr(tokens, j);
        }
        if !matches!(tokens.get(j).map(|t| &t.kind),
            Some(TokenKind::Ident(id)) if id == "mod")
        {
            i += 1;
            continue;
        }
        // mod NAME { ... }  (skip `mod name;` out-of-line test mods —
        // those land in their own file, which the walker still scans,
        // but path-based exemption handles `tests/` dirs separately).
        let mut k = j + 1;
        while k < tokens.len()
            && !matches!(tokens[k].kind, TokenKind::Punct('{') | TokenKind::Punct(';'))
        {
            k += 1;
        }
        if k >= tokens.len() || matches!(tokens[k].kind, TokenKind::Punct(';')) {
            i = k;
            continue;
        }
        let start_line = tokens[i].line;
        let mut depth = 0i32;
        let mut end_line = tokens[k].line;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if depth > 0 {
            // Unclosed (shouldn't happen in compiling code): cover to
            // end of stream.
            end_line = tokens.last().map_or(start_line, |t| t.line);
        }
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let idents = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + idents.len()
        && idents.iter().enumerate().all(|(off, want)| match &tokens[i + off].kind {
            TokenKind::Ident(id) => id == want,
            TokenKind::Punct(c) => want.len() == 1 && want.starts_with(*c),
            TokenKind::Str(_) => false,
        })
}

/// Given `tokens[i] == '#'`, returns the index just past the attr.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('['))) {
        return j;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(scanned: &ScannedFile) -> Vec<&str> {
        scanned
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(id) => Some(id.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_emit_idents() {
        let s = scan("// HashMap in a comment\nlet x = \"HashMap\"; /* HashMap */ fn f() {}");
        assert_eq!(idents(&s), ["let", "x", "fn", "f"]);
        // But the string contents are kept as a Str token.
        assert!(s.tokens.iter().any(|t| t.kind == TokenKind::Str("HashMap".into())));
    }

    #[test]
    fn raw_strings_and_lifetimes_lex() {
        let s = scan("fn f<'a>(x: &'a str) -> String { r#\"spawn \" inner\"#.into() }");
        assert!(idents(&s).contains(&"str"));
        assert!(s.tokens.iter().any(|t| t.kind == TokenKind::Str("spawn \" inner".into())));
        // The lifetime's `a` must not appear as an identifier token.
        assert!(!idents(&s).contains(&"a"));
    }

    #[test]
    fn char_literals_do_not_break_lexing() {
        let s = scan("let c = 'x'; let esc = '\\''; let nl = '\\n'; fn g() {}");
        assert!(idents(&s).contains(&"g"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        // '"' is a char literal; if the inner quote opened a string the
        // rest of the file would lex as string contents.
        let s = scan("let q = '\"'; let ident_after = 1; let s = \"real\";");
        assert!(idents(&s).contains(&"ident_after"));
        assert!(s.tokens.iter().any(|t| t.kind == TokenKind::Str("real".into())));
        assert!(!s.tokens.iter().any(|t| t.kind == TokenKind::Str("; let ident_after".into())));
    }

    #[test]
    fn lifetime_adjacent_to_string_open_lexes_both() {
        // A turbofish lifetime butting up against a string literal: the
        // lifetime must not swallow the opening quote.
        let s = scan("f::<'a>(\"payload\"); let r: &'static str = \"x\";");
        assert!(s.tokens.iter().any(|t| t.kind == TokenKind::Str("payload".into())));
        assert!(s.tokens.iter().any(|t| t.kind == TokenKind::Str("x".into())));
        assert!(!idents(&s).contains(&"a"));
        // 'static is a lifetime (not a char literal) even though it
        // ends right before the `str` identifier.
        assert!(!idents(&s).contains(&"static"));
        assert!(idents(&s).contains(&"str"));
    }

    #[test]
    fn nested_raw_strings_close_on_matching_hashes() {
        // The inner r#"..."# closer must not terminate the outer
        // r##"..."## string.
        let s = scan("let s = r##\"outer r#\"inner\"# tail\"##; fn after() {}");
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str("outer r#\"inner\"# tail".into())));
        assert!(idents(&s).contains(&"after"));
    }

    #[test]
    fn suppressions_parse_with_and_without_reason() {
        let s = scan(
            "// edm-allow(unordered-iteration): sorted before use\nlet x = 1;\n// edm-allow(ambient-entropy)\n// edm-allow-file(unwrap-in-lib): demo\n",
        );
        assert_eq!(s.suppressions.len(), 3);
        assert_eq!(s.suppressions[0].lint_id, "unordered-iteration");
        assert_eq!(s.suppressions[0].reason, "sorted before use");
        assert_eq!(s.suppressions[0].line, 1);
        assert!(!s.suppressions[0].whole_file);
        assert_eq!(s.suppressions[1].reason, "");
        assert!(s.suppressions[2].whole_file);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(2, 5)]);
        assert!(s.in_test_region(4));
        assert!(!s.in_test_region(1));
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn test_region_allows_intervening_attrs() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n}\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(1, 4)]);
    }
}
