//! A small TOML reader: enough of the grammar for Cargo manifests and
//! the probe registry, with source line numbers on every entry.
//!
//! Supported: `[section]` / `[[array-of-table]]` headers (dotted and
//! quoted parts), bare/quoted/dotted keys, string / boolean / integer
//! values, arrays (including multiline), and inline tables. Duplicate
//! keys are preserved in order so lints can flag them. Unsupported
//! syntax parses to [`TomlValue::Other`] rather than failing, so an
//! exotic manifest degrades to "not checkable" instead of a crash.

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic or literal string (escapes left as written).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An array of values.
    Array(Vec<TomlValue>),
    /// An inline table `{ k = v, ... }` as ordered pairs.
    Table(Vec<(String, TomlValue)>),
    /// Anything this mini-parser does not model (floats, dates, ...).
    Other(String),
}

impl TomlValue {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs, if this is an inline table.
    pub fn as_table(&self) -> Option<&[(String, TomlValue)]> {
        match self {
            TomlValue::Table(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up `key` in an inline table.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.as_table()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One `key = value` line (key split on dots).
#[derive(Debug, Clone)]
pub struct TomlEntry {
    /// The key path (`a.b = 1` → `["a", "b"]`).
    pub key: Vec<String>,
    /// The parsed value.
    pub value: TomlValue,
    /// 1-based line the entry starts on.
    pub line: u32,
}

/// One `[section]` with its entries.
#[derive(Debug, Clone)]
pub struct TomlSection {
    /// Dotted section name; `""` for the implicit root section.
    pub name: String,
    /// 1-based header line (0 for the root section).
    pub line: u32,
    /// Entries in source order; duplicates preserved.
    pub entries: Vec<TomlEntry>,
}

/// A parsed document: sections in source order.
#[derive(Debug, Default, Clone)]
pub struct TomlDoc {
    /// All sections, the implicit root first.
    pub sections: Vec<TomlSection>,
}

impl TomlDoc {
    /// The first section with this exact dotted name.
    pub fn section(&self, name: &str) -> Option<&TomlSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// All sections whose name starts with `prefix` + `.`.
    pub fn sections_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a TomlSection> + 'a {
        self.sections
            .iter()
            .filter(move |s| s.name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('.')))
    }

    /// Looks up `section.key` (single-segment key) as a value.
    pub fn get(&self, section: &str, key: &str) -> Option<&TomlValue> {
        self.section(section)?
            .entries
            .iter()
            .find(|e| e.key.len() == 1 && e.key[0] == key)
            .map(|e| &e.value)
    }
}

/// Parses `src` into a [`TomlDoc`]. Never fails: unmodeled syntax
/// degrades to [`TomlValue::Other`] and malformed lines are skipped.
pub fn parse(src: &str) -> TomlDoc {
    let mut doc = TomlDoc::default();
    doc.sections.push(TomlSection { name: String::new(), line: 0, entries: Vec::new() });

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let line_no = (i + 1) as u32;
        let stripped = strip_comment(lines[i]);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('[') {
            // [section] or [[array-of-tables]] — both become sections.
            let header = header.strip_prefix('[').unwrap_or(header);
            let name_part = header.trim_end().trim_end_matches(']').trim();
            let name = parse_key_path(name_part).join(".");
            doc.sections.push(TomlSection { name, line: line_no, entries: Vec::new() });
            i += 1;
            continue;
        }
        // key = value, where value may continue over following lines
        // (multiline array or inline table).
        let Some(eq) = find_top_level_eq(trimmed) else {
            i += 1;
            continue;
        };
        let key = parse_key_path(trimmed[..eq].trim());
        let mut value_src = trimmed[eq + 1..].trim().to_string();
        while !balanced(&value_src) && i + 1 < lines.len() {
            i += 1;
            value_src.push('\n');
            value_src.push_str(strip_comment(lines[i]).trim());
        }
        let value = parse_value(value_src.trim());
        doc.sections.last_mut().expect("root section always present").entries.push(TomlEntry {
            key,
            value,
            line: line_no,
        });
        i += 1;
    }
    doc
}

/// Removes a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str: Option<u8> = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match (in_str, bytes[i]) {
            (Some(q), b) if b == q => in_str = None,
            (Some(b'"'), b'\\') => i += 1,
            (None, b'"') | (None, b'\'') => in_str = Some(bytes[i]),
            (None, b'#') => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Finds the first `=` outside quotes (key/value separator).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_str: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match (in_str, b) {
            (Some(q), x) if x == q => in_str = None,
            (None, b'"') | (None, b'\'') => in_str = Some(b),
            (None, b'=') => return Some(i),
            _ => {}
        }
    }
    None
}

/// True when every `[`/`{`/`"` opened on this fragment is closed.
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str: Option<u8> = None;
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match (in_str, bytes[i]) {
            (Some(b'"'), b'\\') => i += 1,
            (Some(q), b) if b == q => in_str = None,
            (Some(_), _) => {}
            (None, b'"') | (None, b'\'') => in_str = Some(bytes[i]),
            (None, b'[') | (None, b'{') => depth += 1,
            (None, b']') | (None, b'}') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth <= 0 && in_str.is_none()
}

/// Splits `a."b.c".d` into `["a", "b.c", "d"]`.
fn parse_key_path(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str: Option<char> = None;
    for c in s.chars() {
        match (in_str, c) {
            (Some(q), x) if x == q => in_str = None,
            (Some(_), x) => cur.push(x),
            (None, '"') | (None, '\'') => in_str = Some(c),
            (None, '.') => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            (None, x) => cur.push(x),
        }
    }
    parts.push(cur.trim().to_string());
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_value(s: &str) -> TomlValue {
    let s = s.trim();
    if s == "true" {
        return TomlValue::Bool(true);
    }
    if s == "false" {
        return TomlValue::Bool(false);
    }
    if let Some(rest) = s.strip_prefix('"') {
        // Basic string: take up to the closing unescaped quote.
        return TomlValue::Str(read_basic_string(rest));
    }
    if let Some(rest) = s.strip_prefix('\'') {
        return TomlValue::Str(rest.split('\'').next().unwrap_or("").to_string());
    }
    if s.starts_with('[') {
        return TomlValue::Array(split_items(&s[1..s.rfind(']').unwrap_or(s.len())]));
    }
    if s.starts_with('{') {
        let inner = &s[1..s.rfind('}').unwrap_or(s.len())];
        let mut pairs = Vec::new();
        for item in split_top_level(inner, ',') {
            if let Some(eq) = find_top_level_eq(&item) {
                let key = parse_key_path(item[..eq].trim()).join(".");
                pairs.push((key, parse_value(item[eq + 1..].trim())));
            }
        }
        return TomlValue::Table(pairs);
    }
    if let Ok(n) = s.replace('_', "").parse::<i64>() {
        return TomlValue::Int(n);
    }
    TomlValue::Other(s.to_string())
}

fn read_basic_string(after_quote: &str) -> String {
    let mut out = String::new();
    let mut chars = after_quote.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => break,
            '\\' => {
                if let Some(esc) = chars.next() {
                    out.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '"' => '"',
                        other => other,
                    });
                }
            }
            other => out.push(other),
        }
    }
    out
}

fn split_items(inner: &str) -> Vec<TomlValue> {
    split_top_level(inner, ',')
        .into_iter()
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_value(s.trim()))
        .collect()
}

/// Splits on `sep` at depth 0 outside strings.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    let mut in_str: Option<char> = None;
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match (in_str, c) {
            (Some('"'), '\\') => {
                cur.push(c);
                if let Some(&next) = chars.peek() {
                    cur.push(next);
                    chars.next();
                }
            }
            (Some(q), x) if x == q => {
                in_str = None;
                cur.push(c);
            }
            (Some(_), _) => cur.push(c),
            (None, '"') | (None, '\'') => {
                in_str = Some(c);
                cur.push(c);
            }
            (None, '[') | (None, '{') => {
                depth += 1;
                cur.push(c);
            }
            (None, ']') | (None, '}') => {
                depth -= 1;
                cur.push(c);
            }
            (None, x) if x == sep && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            (None, _) => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_values_parse() {
        let doc = parse(
            "top = \"root\"\n[package]\nname = \"edm-lint\" # comment\nversion.workspace = true\n\n[dependencies]\nserde = { path = \"x\", features = [\"derive\"] }\n",
        );
        assert_eq!(doc.sections.len(), 3);
        assert_eq!(doc.get("", "top").unwrap().as_str(), Some("root"));
        assert_eq!(doc.get("package", "name").unwrap().as_str(), Some("edm-lint"));
        let ver = &doc.section("package").unwrap().entries[1];
        assert_eq!(ver.key, ["version", "workspace"]);
        assert_eq!(ver.value, TomlValue::Bool(true));
        assert_eq!(ver.line, 4);
        let serde = doc.get("dependencies", "serde").unwrap();
        assert_eq!(serde.get("path").unwrap().as_str(), Some("x"));
        let feats = serde.get("features").unwrap().as_array().unwrap();
        assert_eq!(feats[0].as_str(), Some("derive"));
    }

    #[test]
    fn multiline_arrays_and_quoted_keys() {
        let doc = parse(
            "[features]\ndefault = [\n  \"parallel\", # keep\n  \"trace\",\n]\n[probes]\n\"svm.smo.calls\" = \"solver calls\"\n",
        );
        let default = doc.get("features", "default").unwrap().as_array().unwrap();
        assert_eq!(default.len(), 2);
        assert_eq!(default[1].as_str(), Some("trace"));
        let probes = doc.section("probes").unwrap();
        assert_eq!(probes.entries[0].key, ["svm.smo.calls"]);
        assert_eq!(probes.entries[0].value.as_str(), Some("solver calls"));
    }

    #[test]
    fn duplicate_keys_are_preserved() {
        let doc = parse("[spans]\na = \"1\"\na = \"2\"\n");
        assert_eq!(doc.section("spans").unwrap().entries.len(), 2);
    }

    #[test]
    fn array_of_tables_and_dotted_headers() {
        let doc = parse("[[bin]]\nname = \"edm-lint\"\n[workspace.lints.rust]\nx = 1\n");
        assert_eq!(doc.get("bin", "name").unwrap().as_str(), Some("edm-lint"));
        assert_eq!(doc.get("workspace.lints.rust", "x"), Some(&TomlValue::Int(1)));
        assert_eq!(doc.sections_under("workspace").count(), 1);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse("k = \"a # not comment\"\n");
        assert_eq!(doc.get("", "k").unwrap().as_str(), Some("a # not comment"));
    }
}
