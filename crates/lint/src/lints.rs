//! The lint registry and the seven lints.
//!
//! Every lint matches on the token stream from [`crate::scanner`] or
//! the parsed manifests from [`crate::manifest`] — never on raw text —
//! so occurrences inside comments, strings, and doc examples cannot
//! produce false findings. Needle identifiers below are written as
//! string literals for the same reason: this crate lints itself.

use std::collections::BTreeMap;

use crate::driver::{FileKind, SourceFile, Workspace};
use crate::report::{Finding, Severity};
use crate::scanner::{Suppression, Token, TokenKind};

/// `(id, one-line description)` for every lint, in run order.
pub const LINTS: &[(&str, &str)] = &[
    (
        "direct-thread-spawn",
        "std::thread::{spawn,scope} outside crates/par: route work through edm-par",
    ),
    (
        "unordered-iteration",
        "HashMap/HashSet in library code: iteration order varies across processes",
    ),
    ("ambient-entropy", "thread_rng/from_entropy/SystemTime::now make runs unreproducible"),
    ("probe-registry", "every edm-trace probe name must match trace-probes.toml exactly"),
    (
        "feature-forwarding",
        "crates must forward parallel/trace features of every dep that defines them",
    ),
    ("forbid-unsafe", "every non-compat crate root declares #![forbid(unsafe_code)]"),
    (
        "unwrap-in-lib",
        "unwrap() in library code, ratcheted against crates/lint/unwrap-baseline.toml",
    ),
    (
        "condvar-predicate-loop",
        "Condvar wait/wait_timeout must sit inside a predicate-recheck loop",
    ),
    (
        "lock-across-blocking",
        "a lock guard must not live across blocking I/O calls in the same scope",
    ),
    (
        "atomic-ordering-audit",
        "every atomic Ordering::* site must carry a justification in sync-orderings.toml",
    ),
    (
        "lock-order-graph",
        "the static acquired-while-held lock graph (results/lock-graph.json) must stay acyclic",
    ),
    (
        "env-knob-registry",
        "every EDM_* env knob must be documented in edm-env.toml and the README table",
    ),
    ("bad-suppression", "edm-allow comments must name a known lint and give a reason"),
];

/// True when `id` names a lint in [`LINTS`].
pub fn is_known_lint(id: &str) -> bool {
    LINTS.iter().any(|(known, _)| *known == id)
}

/// All inline suppressions, keyed by workspace-relative path, with
/// use-tracking so unused ones can be reported.
#[derive(Debug, Default)]
pub struct SuppressionTable {
    map: BTreeMap<String, Vec<Suppression>>,
}

impl SuppressionTable {
    /// Registers the suppressions scanned from one file.
    pub fn insert(&mut self, rel_path: &str, sups: Vec<Suppression>) {
        if !sups.is_empty() {
            self.map.insert(rel_path.to_string(), sups);
        }
    }

    /// True when a suppression covers (`lint`, `line`) in `rel_path`;
    /// marks the first matching suppression used. A line suppression
    /// covers its own line and the next line; a `-file` one covers the
    /// whole file. Reason-less suppressions still suppress — the
    /// missing reason is reported separately as `bad-suppression`.
    pub fn allows(&mut self, rel_path: &str, lint: &str, line: u32) -> bool {
        let Some(sups) = self.map.get_mut(rel_path) else {
            return false;
        };
        for s in sups.iter_mut() {
            if s.lint_id == lint && (s.whole_file || s.line == line || s.line + 1 == line) {
                s.used = true;
                return true;
            }
        }
        false
    }

    /// Consumes the table, yielding `(path, suppression)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (String, Suppression)> {
        self.map.into_iter().flat_map(|(p, sups)| sups.into_iter().map(move |s| (p.clone(), s)))
    }
}

/// Runs every lint and returns the findings (unsorted).
pub fn run_all(ws: &Workspace, sup: &mut SuppressionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    direct_thread_spawn(ws, sup, &mut findings);
    unordered_iteration(ws, sup, &mut findings);
    ambient_entropy(ws, sup, &mut findings);
    probe_registry(ws, sup, &mut findings);
    feature_forwarding(ws, sup, &mut findings);
    forbid_unsafe(ws, sup, &mut findings);
    unwrap_in_lib(ws, sup, &mut findings);
    crate::sync_lints::run_all(ws, sup, &mut findings);
    findings
}

/// Emits `bad-suppression` findings and unused-suppression warnings.
/// Call after [`run_all`] so use-tracking is complete.
pub fn finish_suppressions(sup: SuppressionTable, findings: &mut Vec<Finding>) {
    for (path, s) in sup.into_entries() {
        let form = if s.whole_file { "edm-allow-file" } else { "edm-allow" };
        if !is_known_lint(&s.lint_id) {
            findings.push(Finding {
                lint: "bad-suppression",
                severity: Severity::Error,
                file: path.clone(),
                line: s.line,
                message: format!("{form}({}) names an unknown lint", s.lint_id),
                grandfathered: false,
            });
            continue;
        }
        if s.reason.is_empty() {
            findings.push(Finding {
                lint: "bad-suppression",
                severity: Severity::Error,
                file: path.clone(),
                line: s.line,
                message: format!(
                    "{form}({}) has no reason; write `{form}({}): <why this is sound>`",
                    s.lint_id, s.lint_id
                ),
                grandfathered: false,
            });
        }
        if !s.used {
            findings.push(Finding {
                lint: "bad-suppression",
                severity: Severity::Warning,
                file: path,
                line: s.line,
                message: format!(
                    "unused {form}({}): nothing on the covered lines trips this lint",
                    s.lint_id
                ),
                grandfathered: false,
            });
        }
    }
}

/// Library-shaped, non-test source of non-compat crates: the scope
/// shared by the determinism lints.
pub(crate) fn lib_files(ws: &Workspace) -> impl Iterator<Item = (usize, &SourceFile)> {
    ws.files.iter().enumerate().filter(|(_, f)| {
        matches!(f.kind, FileKind::Lib | FileKind::Example) && !ws.crates[f.crate_idx].is_compat
    })
}

pub(crate) fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(id)) => Some(id.as_str()),
        _ => None,
    }
}

pub(crate) fn punct(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

pub(crate) fn string(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// `a :: b` at position `i` for any `b` in `names`.
fn path_pair(tokens: &[Token], i: usize, head: &str, names: &[&str]) -> bool {
    ident(tokens, i) == Some(head)
        && punct(tokens, i + 1) == Some(':')
        && punct(tokens, i + 2) == Some(':')
        && ident(tokens, i + 3).is_some_and(|id| names.contains(&id))
}

fn direct_thread_spawn(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "direct-thread-spawn";
    for (_, file) in lib_files(ws) {
        if ws.crates[file.crate_idx].rel_dir.ends_with("crates/par")
            || ws.crates[file.crate_idx].rel_dir == "crates/par"
        {
            continue;
        }
        let toks = &file.scanned.tokens;
        for i in 0..toks.len() {
            if !path_pair(toks, i, "thread", &["spawn", "scope"]) {
                continue;
            }
            let line = toks[i].line;
            if file.scanned.in_test_region(line) || sup.allows(&file.rel_path, LINT, line) {
                continue;
            }
            let what = ident(toks, i + 3).unwrap_or_default();
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "direct thread::{what}; use edm-par so worker counts, panics, and telemetry stay centralized"
                ),
                grandfathered: false,
            });
        }
    }
}

fn unordered_iteration(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "unordered-iteration";
    // Written split so this file's own tokens don't match the needle.
    let needles = [concat!("Hash", "Map"), concat!("Hash", "Set")];
    for (_, file) in lib_files(ws) {
        let toks = &file.scanned.tokens;
        for t in toks {
            let TokenKind::Ident(id) = &t.kind else { continue };
            if !needles.contains(&id.as_str()) {
                continue;
            }
            if file.scanned.in_test_region(t.line) || sup.allows(&file.rel_path, LINT, t.line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{id} in library code: iteration order varies across processes; use the BTree equivalent or sort before iterating"
                ),
                grandfathered: false,
            });
        }
    }
}

fn ambient_entropy(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "ambient-entropy";
    for (_, file) in lib_files(ws) {
        let toks = &file.scanned.tokens;
        for i in 0..toks.len() {
            let hit = match ident(toks, i) {
                Some("thread_rng") | Some("from_entropy") => ident(toks, i).map(str::to_string),
                Some("SystemTime") if path_pair(toks, i, "SystemTime", &["now"]) => {
                    Some(concat!("System", "Time::now").to_string())
                }
                _ => None,
            };
            let Some(what) = hit else { continue };
            let line = toks[i].line;
            if file.scanned.in_test_region(line) || sup.allows(&file.rel_path, LINT, line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{what} seeds state from the environment; take an explicit seed or timestamp parameter instead"
                ),
                grandfathered: false,
            });
        }
    }
}

/// Every probe call site in linted library code:
/// `(name, registry_section, rel_path, line)`. Used by the
/// `probe-registry` lint and by `edm-lint --dump-probes`.
pub fn collect_probes(ws: &Workspace) -> Vec<(String, &'static str, String, u32)> {
    let mut out = Vec::new();
    for (_, file) in lib_files(ws) {
        if ws.crates[file.crate_idx].rel_dir.ends_with("crates/trace") {
            continue;
        }
        let toks = &file.scanned.tokens;
        for i in 0..toks.len() {
            let Some(section) = ident(toks, i).and_then(probe_section) else { continue };
            if i > 0 && punct(toks, i - 1) == Some('.') {
                continue;
            }
            if punct(toks, i + 1) != Some('(') {
                continue;
            }
            let Some(name) = string(toks, i + 2) else { continue };
            if file.scanned.in_test_region(toks[i].line) {
                continue;
            }
            out.push((name.to_string(), section, file.rel_path.clone(), toks[i].line));
        }
    }
    out
}

/// Maps a probe call identifier to its registry section. Labeled
/// variants share their base call's section: a labeled counter is
/// still a counter.
fn probe_section(call: &str) -> Option<&'static str> {
    match call {
        "span" | "span_handle" => Some("spans"),
        "counter_add" | "counter_add_labeled" | "counter_handle" => Some("counters"),
        "record" | "record_full" | "record_labeled" | "hist_handle" => Some("histograms"),
        _ => None,
    }
}

fn probe_registry(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "probe-registry";
    const SECTIONS: [&str; 3] = ["spans", "counters", "histograms"];

    // 1. The registry itself: duplicates and missing descriptions.
    let mut registered: BTreeMap<String, (&'static str, u32)> = BTreeMap::new();
    for &section in &SECTIONS {
        let Some(sec) = ws.probe_registry.section(section) else { continue };
        for entry in &sec.entries {
            let name = entry.key.join(".");
            if entry.value.as_str().is_none_or(str::is_empty) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.probe_registry_rel.clone(),
                    line: entry.line,
                    message: format!("probe \"{name}\" has no description"),
                    grandfathered: false,
                });
            }
            if let Some((prev_sec, prev_line)) = registered.get(&name) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: ws.probe_registry_rel.clone(),
                    line: entry.line,
                    message: format!(
                        "duplicate probe \"{name}\" (already registered under [{prev_sec}] at line {prev_line})"
                    ),
                    grandfathered: false,
                });
            } else {
                registered.insert(name, (section, entry.line));
            }
        }
    }

    // 2. Call sites: every probe literal must be registered under the
    //    section its call kind implies. (collect_probes already skips
    //    crates/trace — the API definition mentions placeholder names —
    //    plus test regions and method calls like `hist.record(x)`.)
    let mut used: BTreeMap<String, &'static str> = BTreeMap::new();
    for (name, section, rel_path, line) in collect_probes(ws) {
        used.insert(name.clone(), section);
        let problem = match registered.get(&name) {
            Some((reg_sec, _)) if *reg_sec == section => None,
            Some((reg_sec, _)) => Some(format!(
                "probe \"{name}\" is registered under [{reg_sec}] but used as a {section} probe"
            )),
            None => Some(format!(
                "probe \"{name}\" is not in {}: add it or fix the typo",
                ws.probe_registry_rel
            )),
        };
        if let Some(message) = problem {
            if !sup.allows(&rel_path, LINT, line) {
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: rel_path,
                    line,
                    message,
                    grandfathered: false,
                });
            }
        }
    }

    // 3. Stale registry entries: documented but never used. A
    //    `# edm-allow(probe-registry)` comment in the registry itself
    //    covers probes emitted from inside crates/trace, which the
    //    call-site scan deliberately skips.
    for (name, (section, line)) in &registered {
        if !used.contains_key(name) {
            if sup.allows(&ws.probe_registry_rel, LINT, *line) {
                continue;
            }
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: ws.probe_registry_rel.clone(),
                line: *line,
                message: format!(
                    "stale registry entry: probe \"{name}\" ([{section}]) is not emitted anywhere"
                ),
                grandfathered: false,
            });
        }
    }
}

fn feature_forwarding(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "feature-forwarding";
    const FORWARDED: [&str; 2] = ["parallel", "trace"];

    // Which workspace crates define which forwardable features.
    let mut defines: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for krate in &ws.crates {
        if let Some(features) = krate.manifest.section("features") {
            let defined: Vec<&str> = FORWARDED
                .iter()
                .copied()
                .filter(|f| features.entries.iter().any(|e| e.key.len() == 1 && e.key[0] == *f))
                .collect();
            if !defined.is_empty() {
                defines.insert(&krate.name, defined);
            }
        }
    }

    for krate in ws.crates.iter().filter(|c| !c.is_compat) {
        let Some(deps) = krate.manifest.section("dependencies") else { continue };
        let features = krate.manifest.section("features");
        for dep in &deps.entries {
            let dep_name = dep.key[0].as_str();
            let Some(dep_defines) = defines.get(dep_name) else { continue };
            for feature in dep_defines {
                let forward = format!("{dep_name}/{feature}");
                let forward_opt = format!("{dep_name}?/{feature}");
                let entry = features.and_then(|sec| {
                    sec.entries.iter().find(|e| e.key.len() == 1 && e.key[0] == *feature)
                });
                let forwarded = entry.is_some_and(|e| {
                    e.value.as_array().is_some_and(|items| {
                        items.iter().any(|v| {
                            v.as_str() == Some(&forward) || v.as_str() == Some(&forward_opt)
                        })
                    })
                });
                if forwarded {
                    continue;
                }
                let line = entry.map(|e| e.line).unwrap_or(dep.line);
                if sup.allows(&krate.manifest_rel, LINT, line) {
                    continue;
                }
                let detail = if entry.is_some() {
                    format!("its `{feature}` feature does not forward \"{forward}\"")
                } else {
                    format!("it does not define a `{feature}` feature forwarding \"{forward}\"")
                };
                findings.push(Finding {
                    lint: LINT,
                    severity: Severity::Error,
                    file: krate.manifest_rel.clone(),
                    line,
                    message: format!(
                        "{} depends on {dep_name}, which defines `{feature}`, but {detail}",
                        krate.name
                    ),
                    grandfathered: false,
                });
            }
        }
    }
}

fn forbid_unsafe(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "forbid-unsafe";
    for (crate_idx, krate) in ws.crates.iter().enumerate() {
        if krate.is_compat {
            continue;
        }
        // The crate root: src/lib.rs, or src/main.rs for bin-only.
        let root_file = ws
            .files
            .iter()
            .filter(|f| f.crate_idx == crate_idx)
            .find(|f| f.rel_path.ends_with("src/lib.rs"))
            .or_else(|| {
                ws.files
                    .iter()
                    .filter(|f| f.crate_idx == crate_idx)
                    .find(|f| f.rel_path.ends_with("src/main.rs"))
            });
        let Some(file) = root_file else { continue };
        if has_forbid_unsafe(&file.scanned.tokens) {
            continue;
        }
        if sup.allows(&file.rel_path, LINT, 1) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            severity: Severity::Error,
            file: file.rel_path.clone(),
            line: 1,
            message: format!(
                "crate {} does not declare #![forbid(unsafe_code)] at its root",
                krate.name
            ),
            grandfathered: false,
        });
    }
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    for i in 0..tokens.len() {
        if punct(tokens, i) == Some('#')
            && punct(tokens, i + 1) == Some('!')
            && punct(tokens, i + 2) == Some('[')
            && ident(tokens, i + 3) == Some("forbid")
            && punct(tokens, i + 4) == Some('(')
        {
            let mut j = i + 5;
            while j < tokens.len() && punct(tokens, j) != Some(')') {
                if ident(tokens, j) == Some("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

fn unwrap_in_lib(ws: &Workspace, sup: &mut SuppressionTable, findings: &mut Vec<Finding>) {
    const LINT: &str = "unwrap-in-lib";
    for (_, file) in lib_files(ws) {
        if matches!(file.kind, FileKind::Example) {
            continue; // demo code may unwrap freely
        }
        let sites = unwrap_sites(file, sup);
        if sites.is_empty() {
            continue;
        }
        let baseline = ws
            .unwrap_baseline
            .iter()
            .find(|(path, _)| path == &file.rel_path)
            .map_or(0, |(_, n)| *n);
        let over = sites.len() > baseline;
        for line in &sites {
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: *line,
                message: if over {
                    format!(
                        "unwrap() in library code: {} site(s) vs baseline {baseline}; handle the error or ratchet via {}",
                        sites.len(),
                        ws.unwrap_baseline_rel
                    )
                } else {
                    format!(
                        "unwrap() in library code (grandfathered: {} site(s) within baseline {baseline})",
                        sites.len()
                    )
                },
                grandfathered: !over,
            });
        }
    }
    // A shrunk file means the ratchet can tighten.
    for (path, baseline) in &ws.unwrap_baseline {
        let current =
            ws.files.iter().find(|f| &f.rel_path == path).map(count_unwraps_non_test).unwrap_or(0);
        if current < *baseline {
            findings.push(Finding {
                lint: LINT,
                severity: Severity::Warning,
                file: ws.unwrap_baseline_rel.clone(),
                line: 0,
                message: format!(
                    "baseline for {path} is stale ({current} current vs {baseline} allowed); run edm-lint --write-baseline"
                ),
                grandfathered: false,
            });
        }
    }
}

/// Unsuppressed, non-test `.unwrap()` call lines in `file`.
fn unwrap_sites(file: &SourceFile, sup: &mut SuppressionTable) -> Vec<u32> {
    let toks = &file.scanned.tokens;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if punct(toks, i) == Some('.')
            && ident(toks, i + 1) == Some("unwrap")
            && punct(toks, i + 2) == Some('(')
        {
            let line = toks[i + 1].line;
            if !file.scanned.in_test_region(line)
                && !sup.allows(&file.rel_path, "unwrap-in-lib", line)
            {
                sites.push(line);
            }
        }
    }
    sites
}

/// Non-test `.unwrap()` site count, ignoring suppressions (used for
/// the stale-baseline check and `--write-baseline`).
pub fn count_unwraps_non_test(file: &SourceFile) -> usize {
    let toks = &file.scanned.tokens;
    (0..toks.len())
        .filter(|&i| {
            punct(toks, i) == Some('.')
                && ident(toks, i + 1) == Some("unwrap")
                && punct(toks, i + 2) == Some('(')
                && !file.scanned.in_test_region(toks[i + 1].line)
        })
        .count()
}
