//! # edm-bench — experiment harnesses for every table and figure
//!
//! One binary per paper result (run with
//! `cargo run --release -p edm-bench --bin <name>`):
//!
//! | Binary | Paper result |
//! |---|---|
//! | `fig03_kernel_trick` | Fig. 3 — kernel trick separability |
//! | `fig05_overfitting` | Fig. 5 — training vs validation error |
//! | `fig07_novel_test_selection` | Fig. 7 — simulation saving |
//! | `table1_template_refinement` | Table 1 — coverage after learning |
//! | `fig09_litho_variability` | Fig. 9 — fast variability prediction |
//! | `fig10_dstc` | Fig. 10 — slow-path diagnosis |
//! | `fig11_customer_returns` | Fig. 11 — return screening |
//! | `fig12_difficult_case` | Fig. 12 — the escapes |
//! | `tune_coverage` | (diagnostic) coverage profile of a template |
//!
//! `benches/experiments.rs` holds Criterion microbenchmarks of each
//! experiment's computational core.
//!
//! Every binary is seeded and deterministic; all print plain-text tables
//! mirroring the rows/series the paper reports, and exit non-zero if the
//! paper's qualitative claim fails to hold (so CI catches regressions in
//! the reproductions).

/// Prints a section header in a uniform style.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Asserts a reproduction claim, printing PASS/FAIL and returning
/// whether it held (binaries aggregate these into the exit code).
pub fn claim(description: &str, holds: bool) -> bool {
    println!("[{}] {description}", if holds { "PASS" } else { "FAIL" });
    holds
}

/// Exits with status 1 if any claim failed.
pub fn finish(claims: &[bool]) {
    if claims.iter().all(|&c| c) {
        println!("\nall {} reproduction claims hold", claims.len());
    } else {
        let failed = claims.iter().filter(|&&c| !c).count();
        eprintln!("\n{failed} reproduction claim(s) FAILED");
        std::process::exit(1);
    }
}
