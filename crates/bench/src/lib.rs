//! # edm-bench — experiment harnesses for every table and figure
//!
//! One binary per paper result (run with
//! `cargo run --release -p edm-bench --bin <name>`):
//!
//! | Binary | Paper result |
//! |---|---|
//! | `fig03_kernel_trick` | Fig. 3 — kernel trick separability |
//! | `fig05_overfitting` | Fig. 5 — training vs validation error |
//! | `fig07_novel_test_selection` | Fig. 7 — simulation saving |
//! | `table1_template_refinement` | Table 1 — coverage after learning |
//! | `fig09_litho_variability` | Fig. 9 — fast variability prediction |
//! | `fig10_dstc` | Fig. 10 — slow-path diagnosis |
//! | `fig11_customer_returns` | Fig. 11 — return screening |
//! | `fig12_difficult_case` | Fig. 12 — the escapes |
//! | `tune_coverage` | (diagnostic) coverage profile of a template |
//!
//! `benches/experiments.rs` holds Criterion microbenchmarks of each
//! experiment's computational core.
//!
//! Every binary is seeded and deterministic; all print plain-text tables
//! mirroring the rows/series the paper reports, and exit non-zero if the
//! paper's qualitative claim fails to hold (so CI catches regressions in
//! the reproductions).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Prints a section header in a uniform style.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Initializes telemetry for a harness run: level from `EDM_TRACE`
/// when set, else `summary`, so run manifests ([`emit_trace`]) carry
/// data by default. Call first in `main`, before any probe fires.
pub fn init_trace() {
    edm_trace::init_from_env_or(edm_trace::Level::Summary);
    // Label the harness thread's timeline ring so Chrome-trace exports
    // show "main" instead of a numeric default.
    edm_trace::name_thread("main");
}

/// Runs `f` under a named harness-level span (a one-line way to group
/// a phase of a harness under its own path in the trace manifest).
pub fn phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = edm_trace::span(name);
    f()
}

/// Derived headline numbers of a run manifest, so downstream tooling
/// need not walk the raw counter list for the common questions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total SMO iterations across every solver call in the run.
    pub smo_iterations: u64,
    /// SMO solver invocations.
    pub smo_calls: u64,
    /// Q-row cache hits across all caches dropped during the run.
    pub qcache_hits: u64,
    /// Q-row cache misses.
    pub qcache_misses: u64,
    /// Q-row cache evictions.
    pub qcache_evictions: u64,
    /// `hits / (hits + misses)` (0 when the cache was never touched).
    pub qcache_hit_rate: f64,
    /// Completed span activations (all paths).
    pub span_count: u64,
}

/// A `results/<name>.trace.json` run manifest: the run's identity
/// (name, seed, trace level) plus the full telemetry snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceManifest {
    /// Harness binary name.
    pub name: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Headline numbers.
    pub summary: TraceSummary,
    /// Full registry snapshot (spans, counters, histograms, events).
    pub report: edm_trace::TraceReport,
}

impl TraceManifest {
    /// Builds a manifest from the current trace registry contents.
    pub fn capture(name: &str, seed: u64) -> Self {
        let report = edm_trace::collect();
        let hits = report.counter("svm.qcache.hits");
        let misses = report.counter("svm.qcache.misses");
        let summary = TraceSummary {
            smo_iterations: report.counter("svm.smo.iterations"),
            smo_calls: report.counter("svm.smo.calls"),
            qcache_hits: hits,
            qcache_misses: misses,
            qcache_evictions: report.counter("svm.qcache.evictions"),
            qcache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            span_count: report.spans.iter().map(|s| s.count).sum(),
        };
        TraceManifest { name: name.to_string(), seed, summary, report }
    }
}

/// Captures the trace registry and writes the run manifest to
/// `results/<name>.trace.json` (creating `results/` if needed). Call
/// once at the end of a harness `main`, after all phase spans have
/// closed. Failures are reported on stderr but never fail the run —
/// telemetry must not break a reproduction.
pub fn emit_trace(name: &str, seed: u64) {
    let manifest = TraceManifest::capture(name, seed);
    let json = match serde_json::to_string(&manifest) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace manifest for {name} not serializable: {e}");
            return;
        }
    };
    let path = std::path::Path::new("results").join(format!("{name}.trace.json"));
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, json));
    // At `EDM_TRACE=full` also drop a flamegraph-ready collapsed-stack
    // file and a Chrome Trace Event file (load in Perfetto or
    // chrome://tracing) next to the manifest.
    if manifest.report.level == "full" {
        let folded = std::path::Path::new("results").join(format!("{name}.folded"));
        if let Err(e) = std::fs::write(&folded, manifest.report.to_collapsed_stacks()) {
            eprintln!("could not write {}: {e}", folded.display());
        } else {
            println!("collapsed stacks: {}", folded.display());
        }
        let chrome = std::path::Path::new("results").join(format!("{name}.chrome.json"));
        if let Err(e) = std::fs::write(&chrome, manifest.report.to_chrome_trace()) {
            eprintln!("could not write {}: {e}", chrome.display());
        } else {
            println!("chrome trace: {}", chrome.display());
        }
    }
    match write {
        // Span counts are thread-invariant; counter/histogram counts are
        // not (worker probes only fire on parallel dispatch), so only the
        // former is printed — harness stdout must stay bitwise identical
        // across EDM_NUM_THREADS values.
        Ok(()) => println!(
            "trace manifest: {} ({} spans, level {})",
            path.display(),
            manifest.summary.span_count,
            manifest.report.level,
        ),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Asserts a reproduction claim, printing PASS/FAIL and returning
/// whether it held (binaries aggregate these into the exit code).
pub fn claim(description: &str, holds: bool) -> bool {
    println!("[{}] {description}", if holds { "PASS" } else { "FAIL" });
    holds
}

/// Exits with status 1 if any claim failed.
pub fn finish(claims: &[bool]) {
    if claims.iter().all(|&c| c) {
        println!("\nall {} reproduction claims hold", claims.len());
    } else {
        let failed = claims.iter().filter(|&&c| !c).count();
        eprintln!("\n{failed} reproduction claim(s) FAILED");
        std::process::exit(1);
    }
}
