//! Fig. 9 — fast prediction of layout variability: an SVM over the
//! histogram-intersection kernel reproduces the golden lithography
//! simulation's hotspot labels at a fraction of the cost ("most of the
//! high variability areas identified by the simulation were correctly
//! identified by the learning model").

use edm_bench::{claim, finish, header, pct};
use edm_core::variability::{self, VariabilityConfig};
use edm_litho::layout::LayoutGenerator;
use edm_litho::variability::VariabilityAnalyzer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Figure 9: fast layout-variability prediction vs litho simulation");
    let config = VariabilityConfig { n_train: 400, n_test: 200, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(9);
    let (result, _predictor) = variability::run(
        &LayoutGenerator::default(),
        &VariabilityAnalyzer::default(),
        &config,
        &mut rng,
    )
    .expect("flow runs");

    println!("training clips: {}   test clips: {}", config.n_train, config.n_test);
    println!("golden-bad fraction in test set: {}", pct(result.bad_fraction));
    println!();
    println!("{:<26} {:>10} {:>12} {:>12}", "model", "accuracy", "bad recall", "false alarm");
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "SVC (HI kernel)",
        pct(result.svc.accuracy),
        pct(result.svc.bad_recall),
        pct(result.svc.false_alarm_rate)
    );
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "one-class SVM (good-only)",
        pct(result.one_class.accuracy),
        pct(result.one_class.bad_recall),
        pct(result.one_class.false_alarm_rate)
    );
    println!();
    println!(
        "golden simulation: {:.0} us/clip   model: {:.1} us/clip   speedup: {:.0}x",
        result.golden_us_per_clip,
        result.model_us_per_clip,
        result.speedup()
    );

    let claims = [
        claim("SVC tracks the golden labels (accuracy >= 80%)", result.svc.accuracy >= 0.80),
        claim(
            "most high-variability clips are identified (recall >= 75%)",
            result.svc.bad_recall >= 0.75,
        ),
        claim("the model is much faster than the simulation (>= 10x)", result.speedup() >= 10.0),
    ];
    edm_bench::emit_trace("fig09_litho_variability", 9);
    finish(&claims);
}
