//! Table 1 — coverage improvement after rule learning: the original
//! template's 400 tests cover only the common points; two rounds of
//! CN2-SD-driven template refinement (100 then 50 additional tests)
//! cover every point with high frequency.

use edm_bench::{claim, finish, header};
use edm_core::template_refine::{self, RefinementConfig};
use edm_verif::lsu::LsuSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Table 1: coverage improvement after learning");
    let sim = LsuSimulator::default_config();
    let config = RefinementConfig::default(); // 400 / 100 / 50 tests
    let mut rng = StdRng::seed_from_u64(1);
    let stages = template_refine::run(&sim, &config, &mut rng).expect("flow runs");

    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Stage", "#tests", "A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7"
    );
    for s in &stages {
        print!("{:<14} {:>8}", s.name, s.n_tests);
        for c in s.counts {
            print!(" {c:>7}");
        }
        println!();
    }

    println!("\nlearned rules fed back into the template:");
    for s in &stages {
        for r in &s.rules {
            println!("  [{}] {r}", s.name);
        }
    }

    let original = &stages[0];
    let last = stages.last().expect("at least one stage");
    let orig_covered = original.counts.iter().filter(|&&c| c > 0).count();
    let orig_rare_hits: u64 = original.counts[2..].iter().sum();
    let last_covered = last.counts.iter().filter(|&&c| c > 0).count();
    let orig_rate = orig_rare_hits as f64 / original.n_tests as f64;
    let last_rate = last.counts[2..].iter().sum::<u64>() as f64 / last.n_tests as f64;

    let claims = [
        claim(
            "original template leaves rare points nearly uncovered (< 0.3 hits/test on A2..A7)",
            orig_rate < 0.3,
        ),
        claim(
            "A0 and A1 are well covered from the start",
            original.counts[0] > 100 && original.counts[1] > 100,
        ),
        claim(
            &format!("final stage covers more points ({last_covered} vs {orig_covered})"),
            last_covered >= orig_covered && last_covered >= 7,
        ),
        claim(
            &format!(
                "rare-point hit rate grows by >= 5x ({orig_rate:.3} -> {last_rate:.3} hits/test)"
            ),
            last_rate >= 5.0 * orig_rate.max(0.02),
        ),
    ];
    edm_bench::emit_trace("table1_template_refinement", 1);
    finish(&claims);
}
