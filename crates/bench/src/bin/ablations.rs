//! Ablations of the design choices the methodology flows depend on —
//! the paper's central claim is that domain knowledge enters through the
//! kernel and the features, so each ablation removes one piece of that
//! knowledge and measures the damage.
//!
//! 1. Fig. 9 kernel choice: histogram-intersection (the paper's choice)
//!    vs RBF vs χ² on the same density histograms.
//! 2. Fig. 7 filter kernel: length-weighted vs flat spectrum grams, and
//!    a ν sweep.
//! 3. Fig. 11 feature selection: the selected 3-test space vs the full
//!    test space for the Mahalanobis screen.

use edm_bench::{claim, finish, header, pct};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablate_fig9_kernels() -> Vec<bool> {
    use edm_kernels::{Chi2Kernel, HistogramIntersectionKernel, Kernel, RbfKernel};
    use edm_litho::features::{density_histogram, HistogramSpec};
    use edm_litho::layout::LayoutGenerator;
    use edm_litho::variability::{VariabilityAnalyzer, VariabilityLabel};
    use edm_svm::{SvcParams, SvcTrainer};

    header("ablation 1: Fig. 9 kernel choice on density histograms");
    let generator = LayoutGenerator::default();
    let analyzer = VariabilityAnalyzer::default();
    let spec = HistogramSpec::default();
    let mut rng = StdRng::seed_from_u64(91);
    let n_train = 200;
    let n_test = 100;
    let mut hists = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..(n_train + n_test) {
        let clip = generator.generate_random(&mut rng).1;
        hists.push(density_histogram(&clip, &spec));
        labels.push(if analyzer.analyze(&clip).label == VariabilityLabel::Bad {
            1.0
        } else {
            -1.0
        });
    }
    let (train_h, test_h) = hists.split_at(n_train);
    let (train_l, test_l) = labels.split_at(n_train);

    fn accuracy<K: Kernel<[f64]> + Clone>(
        k: K,
        train_h: &[Vec<f64>],
        train_l: &[f64],
        test_h: &[Vec<f64>],
        test_l: &[f64],
    ) -> f64 {
        let m = SvcTrainer::new(SvcParams::default().with_c(10.0))
            .kernel(k)
            .fit(train_h, train_l)
            .expect("fit");
        test_h.iter().zip(test_l).filter(|(h, &l)| m.predict(h) == l).count() as f64
            / test_h.len() as f64
    }
    let hi = accuracy(HistogramIntersectionKernel::new(), train_h, train_l, test_h, test_l);
    let rbf = accuracy(RbfKernel::new(10.0), train_h, train_l, test_h, test_l);
    let chi2 = accuracy(Chi2Kernel::new(1.0), train_h, train_l, test_h, test_l);
    println!("HI kernel   accuracy: {}", pct(hi));
    println!("RBF kernel  accuracy: {}", pct(rbf));
    println!("chi2 kernel accuracy: {}", pct(chi2));
    vec![
        claim("HI kernel is competitive with the best alternative (within 3%)", {
            hi + 0.03 >= rbf.max(chi2)
        }),
        claim("all kernels beat the majority-class baseline", {
            let base = test_l.iter().filter(|&&l| l == 1.0).count() as f64 / test_l.len() as f64;
            let majority = base.max(1.0 - base);
            hi > majority && rbf > majority - 0.05 && chi2 > majority - 0.05
        }),
    ]
}

fn ablate_fig7_filter() -> Vec<bool> {
    use edm_core::noveltest::{run_stream, NovelSelectionConfig};
    use edm_verif::lsu::{LsuConfig, LsuSimulator};
    use edm_verif::template::MixtureTemplate;

    header("ablation 2: Fig. 7 novelty-filter parameters");
    let template = MixtureTemplate::verification_plan();
    let sim = LsuSimulator::new(LsuConfig { store_buffer_depth: 6, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(92);
    let tests: Vec<_> = (0..3000).map(|_| template.generate(&mut rng)).collect();

    println!("{:>6} {:>8} {:>14} {:>12}", "nu", "lweight", "sims to max", "saving");
    let mut rows = Vec::new();
    for &(nu, lw) in &[(0.15, 2.0), (0.15, 1.0), (0.40, 2.0), (0.05, 2.0)] {
        let config = NovelSelectionConfig {
            n_tests: tests.len(),
            nu,
            ngram: 3,
            length_weight: lw,
            ..Default::default()
        };
        let r = run_stream(&tests, &sim, &config).expect("flow runs");
        let sims = r.filtered_tests_to_max;
        let saving = r.simulation_saving();
        match (sims, saving) {
            (Some(s), Some(sv)) => println!("{nu:>6} {lw:>8} {s:>14} {:>12}", pct(sv)),
            _ => println!("{nu:>6} {lw:>8} {:>14} {:>12}", "stalled", "-"),
        }
        rows.push((nu, lw, sims, saving));
    }
    let default_cfg = rows[0].3.unwrap_or(0.0);
    vec![
        claim("the tuned configuration reaches max coverage", rows[0].2.is_some()),
        claim(
            &format!("tuned configuration saves >= 60% ({})", pct(default_cfg)),
            default_cfg >= 0.60,
        ),
        claim(
            "at least one ablated configuration is strictly worse (stalls or saves less)",
            rows[1..].iter().any(|(_, _, sims, saving)| {
                sims.is_none() || saving.unwrap_or(0.0) < default_cfg - 0.02
            }),
        ),
    ]
}

fn ablate_fig11_feature_selection() -> Vec<bool> {
    use edm_mfgtest::product::ProductModel;
    use edm_mfgtest::returns::FieldModel;
    use edm_mfgtest::testflow::TestFlow;
    use edm_novelty::{MahalanobisDetector, NoveltyDetector};

    header("ablation 3: Fig. 11 selected 3-test space vs full space");
    let product = ProductModel::automotive().with_defect_rate(2e-3);
    let flow = TestFlow::new(product.spec_limits().to_vec());
    let field = FieldModel::default();
    let mut rng = StdRng::seed_from_u64(93);
    let mut devices = Vec::new();
    for lot in 0..6 {
        devices.extend(product.generate_lot(lot, 3_000, &mut rng));
    }
    let (shipped, _) = flow.screen(&devices);
    let (returns, survivors) = field.field_exposure(&shipped, &mut rng);
    assert!(!returns.is_empty(), "need returns for the ablation");

    // Selected space: the defect-bearing tests (iddq, vmin, leak_hi).
    let idx_sel: Vec<usize> = ["iddq", "vmin", "leak_hi"]
        .iter()
        .map(|n| product.test_index(n).expect("test exists"))
        .collect();
    let idx_all: Vec<usize> = (0..product.n_tests()).collect();

    let detect_rate = |idx: &[usize]| -> f64 {
        let pop: Vec<Vec<f64>> =
            survivors.iter().map(|d| idx.iter().map(|&t| d.measurements[t]).collect()).collect();
        let det = MahalanobisDetector::fit(&pop, 0.999).expect("fit");
        let caught = returns
            .iter()
            .filter(|d| {
                let z: Vec<f64> = idx.iter().map(|&t| d.measurements[t]).collect();
                det.is_novel(&z)
            })
            .count();
        caught as f64 / returns.len() as f64
    };
    let sel = detect_rate(&idx_sel);
    let all = detect_rate(&idx_all);
    println!("returns: {}", returns.len());
    println!("selected 3-test space detection rate: {}", pct(sel));
    println!("full 8-test space detection rate:     {}", pct(all));
    vec![
        claim("the selected subspace catches most returns", sel >= 0.7),
        claim("feature selection does not lose detection vs the full space", sel >= all - 0.10),
    ]
}

fn main() {
    edm_bench::init_trace();
    let mut claims = Vec::new();
    claims.extend(ablate_fig9_kernels());
    claims.extend(ablate_fig7_filter());
    claims.extend(ablate_fig11_feature_selection());
    edm_bench::emit_trace("ablations", 91);
    finish(&claims);
}
