//! Fig. 3 — the kernel trick: ring-vs-disc data is not linearly
//! separable in the input space but is under k(x,x') = ⟨x,x'⟩².
//!
//! Prints training error of a linear SVM in the input space, the same
//! linear algorithm in the explicit feature space Φ(x) = (x₁², x₂²,
//! √2·x₁x₂), and the implicit kernel path — demonstrating both halves of
//! the paper's Fig. 3.

use edm_bench::{claim, finish, header, pct};
use edm_kernels::{LinearKernel, PolyKernel};
use edm_svm::{SvcParams, SvcTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ring_disc(n: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        // inner disc, class -1
        let r = 0.8 * rng.gen::<f64>();
        let a = rng.gen::<f64>() * std::f64::consts::TAU;
        x.push(vec![r * a.cos(), r * a.sin()]);
        y.push(-1.0);
        // outer ring, class +1
        let r = 1.6 + 0.6 * rng.gen::<f64>();
        let a = rng.gen::<f64>() * std::f64::consts::TAU;
        x.push(vec![r * a.cos(), r * a.sin()]);
        y.push(1.0);
    }
    (x, y)
}

fn phi(v: &[f64]) -> Vec<f64> {
    vec![v[0] * v[0], v[1] * v[1], std::f64::consts::SQRT_2 * v[0] * v[1]]
}

fn training_error<K: edm_kernels::Kernel<[f64]> + Clone>(
    kernel: K,
    x: &[Vec<f64>],
    y: &[f64],
) -> f64 {
    let model = SvcTrainer::new(SvcParams::default().with_c(10.0))
        .kernel(kernel)
        .fit(x, y)
        .expect("training succeeds");
    let wrong = x.iter().zip(y).filter(|(xi, &yi)| model.predict(xi) != yi).count();
    wrong as f64 / x.len() as f64
}

fn main() {
    edm_bench::init_trace();
    header("Figure 3: kernel trick on ring-vs-disc data");
    let mut rng = StdRng::seed_from_u64(3);
    let (x, y) = ring_disc(100, &mut rng);

    let linear_err = training_error(LinearKernel::new(), &x, &y);
    let explicit: Vec<Vec<f64>> = x.iter().map(|v| phi(v)).collect();
    let explicit_err = training_error(LinearKernel::new(), &explicit, &y);
    let kernel_err = training_error(PolyKernel::homogeneous(2), &x, &y);

    println!("samples: {} per class {}", x.len(), x.len() / 2);
    println!("{:<44} {:>10}", "model", "train err");
    println!("{:<44} {:>10}", "linear SVM, input space", pct(linear_err));
    println!("{:<44} {:>10}", "linear SVM, explicit feature space Phi", pct(explicit_err));
    println!("{:<44} {:>10}", "SVM with kernel <x,x'>^2 (implicit Phi)", pct(kernel_err));

    let claims = [
        claim("input space is NOT linearly separable (error > 10%)", linear_err > 0.10),
        claim("explicit feature space IS separable (error = 0)", explicit_err == 0.0),
        claim("kernel path matches the explicit map (error = 0)", kernel_err == 0.0),
    ];
    edm_bench::emit_trace("fig03_kernel_trick", 3);
    finish(&claims);
}
