//! Fig. 5 — overfitting in view of model complexity: training error
//! falls monotonically as complexity grows, validation error turns back
//! up past the sweet spot.
//!
//! Two sweeps: polynomial-degree regression (complexity = degree) and
//! RBF-SVC bandwidth (complexity = Σα, the paper's measure).

use edm_bench::{claim, finish, header};
use edm_data::metrics::rmse;
use edm_kernels::RbfKernel;
use edm_learn::linreg::{polynomial_features, LeastSquares};
use edm_svm::{SvcParams, SvcTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    edm_bench::init_trace();
    header("Figure 5: overfitting vs model complexity");

    // --- Sweep 1: polynomial regression on noisy data ---------------
    let mut rng = StdRng::seed_from_u64(5);
    let truth = |x: f64| (1.8 * x).sin() + 0.3 * x;
    let noisy =
        |x: f64, rng: &mut StdRng| truth(x) + 0.25 * edm_linalg::sample::standard_normal(rng);
    let train_x: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64 * 0.25 - 3.0]).collect();
    let train_y: Vec<f64> = train_x.iter().map(|v| noisy(v[0], &mut rng)).collect();
    let val_x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.06 - 3.0]).collect();
    let val_y: Vec<f64> = val_x.iter().map(|v| noisy(v[0], &mut rng)).collect();

    println!("\npolynomial regression (n_train = {}):", train_x.len());
    println!("{:>7} {:>12} {:>12}", "degree", "train RMSE", "val RMSE");
    let degrees: Vec<u32> = (1..=15).collect();
    let mut train_errs = Vec::new();
    let mut val_errs = Vec::new();
    for &d in &degrees {
        let xt = polynomial_features(&train_x, d);
        let model = LeastSquares::fit(&xt, &train_y).expect("fit");
        let tr = rmse(&train_y, &model.predict_batch(&xt));
        let xv = polynomial_features(&val_x, d);
        let vr = rmse(&val_y, &model.predict_batch(&xv));
        println!("{d:>7} {tr:>12.4} {vr:>12.4}");
        train_errs.push(tr);
        val_errs.push(vr);
    }
    // Shape checks.
    let train_decreases = train_errs.first().expect("degree sweep ran")
        > train_errs.last().expect("degree sweep ran");
    let best = val_errs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("degree sweep ran");
    let val_u_shape = best > 0
        && best < val_errs.len() - 1
        && *val_errs.last().expect("degree sweep ran") > 1.5 * val_errs[best];

    // --- Sweep 2: RBF-SVC bandwidth, complexity = sum of alphas -----
    let mut rng = StdRng::seed_from_u64(55);
    let mut cx = Vec::new();
    let mut cy = Vec::new();
    for _ in 0..80 {
        // overlapping blobs
        let c = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        cx.push(vec![
            c * 0.7 + edm_linalg::sample::standard_normal(&mut rng),
            edm_linalg::sample::standard_normal(&mut rng),
        ]);
        cy.push(c);
    }
    let mut vx = Vec::new();
    let mut vy = Vec::new();
    for _ in 0..400 {
        let c = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        vx.push(vec![
            c * 0.7 + edm_linalg::sample::standard_normal(&mut rng),
            edm_linalg::sample::standard_normal(&mut rng),
        ]);
        vy.push(c);
    }
    println!("\nRBF-SVC bandwidth sweep (C = 50):");
    println!("{:>8} {:>14} {:>12} {:>12}", "gamma", "complexity Σα", "train err", "val err");
    let gammas = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    let mut svc_train = Vec::new();
    let mut svc_val = Vec::new();
    for &g in &gammas {
        let model = SvcTrainer::new(SvcParams::default().with_c(50.0))
            .kernel(RbfKernel::new(g))
            .fit(&cx, &cy)
            .expect("fit");
        let err = |xs: &[Vec<f64>], ys: &[f64]| {
            xs.iter().zip(ys).filter(|(x, &y)| model.predict(x) != y).count() as f64
                / xs.len() as f64
        };
        let (te, ve) = (err(&cx, &cy), err(&vx, &vy));
        println!("{g:>8} {:>14.1} {te:>12.3} {ve:>12.3}", model.complexity());
        svc_train.push(te);
        svc_val.push(ve);
    }
    let svc_train_drops =
        svc_train.last().expect("gamma sweep ran") < svc_train.first().expect("gamma sweep ran");
    let svc_best = svc_val
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("gamma sweep ran");
    let svc_overfits = *svc_val.last().expect("gamma sweep ran") > svc_val[svc_best] + 0.05;

    let claims = [
        claim("poly: training error decreases with degree", train_decreases),
        claim("poly: validation error is U-shaped (interior minimum)", val_u_shape),
        claim("svc: training error decreases with gamma", svc_train_drops),
        claim("svc: validation error rises past the optimum", svc_overfits),
    ];
    edm_bench::emit_trace("fig05_overfitting", 5);
    finish(&claims);
}
