//! Scaling harness for the parallel kernel-compute layer and the SMO
//! Q-row cache. Emits `BENCH_kernel_compute.json` in the working
//! directory.
//!
//! Measurements (RBF kernel, d = 32, deterministic data):
//!
//! * Gram-matrix build at n ∈ {500, 2000, 8000}, serial
//!   (`EDM_NUM_THREADS=1`) vs parallel (`EDM_NUM_THREADS=4`), with a
//!   bitwise checksum comparison proving the two paths agree exactly;
//! * SVC training at the same sizes, serial, with the Q-row cache on
//!   (default budget) vs off (`cache_bytes = 0`).
//!
//! Thread counts are swept in-process via the `EDM_NUM_THREADS`
//! override that `edm_par::num_threads()` re-reads on every call. The
//! host core count is recorded alongside the timings: on a single-core
//! machine the parallel sweep measures dispatch overhead rather than
//! speedup, and the JSON says so instead of fabricating a scaling
//! number.

use std::fmt::Write as _;
use std::time::Instant;

use edm_kernels::{gram_matrix, RbfKernel};
use edm_svm::{SvcParams, SvcTrainer};

const DIM: usize = 32;
const GAMMA: f64 = 0.5;
const SIZES: [usize; 3] = [500, 2000, 8000];
/// Thread count the parallel sweep pins (the acceptance scenario).
const PAR_THREADS: usize = 4;

/// Deterministic SplitMix64 stream.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut m = Mix(seed);
    (0..n).map(|_| (0..d).map(|_| m.next_f64()).collect()).collect()
}

/// Two shifted blobs with alternating ±1 labels: trivially separable,
/// so SVC converges quickly and the timing isolates kernel compute.
fn blobs(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = points(7, n, d);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.5;
        }
    }
    (x, y)
}

fn set_threads(n: usize) {
    std::env::set_var("EDM_NUM_THREADS", n.to_string());
}

/// FNV-1a over the bit patterns — order-sensitive, so equal checksums
/// on row-major buffers mean bitwise-equal matrices.
fn checksum(rows: usize, m: &edm_linalg::Matrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..rows {
        for v in m.row(i) {
            h = (h ^ v.to_bits()).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Median wall time of `runs` executions, in milliseconds.
///
/// One untimed warmup run first, and the previous result is dropped
/// *before* each timed run starts: keeping a second multi-hundred-MB
/// buffer alive while the next one is allocated perturbs page-fault
/// behaviour enough to swing large-`n` timings by 3×.
fn time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    drop(f());
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        drop(last.take());
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[times.len() / 2], last.expect("runs > 0"))
}

struct GramRow {
    n: usize,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

struct SvcRow {
    n: usize,
    cache_on_ms: f64,
    cache_off_ms: f64,
    iterations: usize,
}

fn main() {
    edm_bench::init_trace();
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "kernel-compute bench: d = {DIM}, rbf gamma = {GAMMA}, host cores = {host_cores}, \
         parallel feature = {}",
        edm_par::parallel_enabled()
    );

    let mut gram_rows = Vec::new();
    for &n in &SIZES {
        let runs = if n >= 8000 { 3 } else { 5 };
        let pts = points(1, n, DIM);
        let k = RbfKernel::new(GAMMA);
        set_threads(1);
        let (serial_ms, g_serial) = time_ms(runs, || gram_matrix(&k, &pts));
        let sum_serial = checksum(n, &g_serial);
        drop(g_serial);
        set_threads(PAR_THREADS);
        let (parallel_ms, g_par) = time_ms(runs, || gram_matrix(&k, &pts));
        let sum_par = checksum(n, &g_par);
        drop(g_par);
        let row = GramRow { n, serial_ms, parallel_ms, bitwise_identical: sum_serial == sum_par };
        println!(
            "gram n={n:5}: serial {serial_ms:9.2} ms | {PAR_THREADS} threads {parallel_ms:9.2} ms \
             | speedup {:.2}x | bitwise identical: {}",
            row.serial_ms / row.parallel_ms,
            row.bitwise_identical
        );
        assert!(row.bitwise_identical, "parallel gram diverged from serial");
        gram_rows.push(row);
    }

    set_threads(1); // cache comparison is a serial, algorithmic effect
    let mut svc_rows = Vec::new();
    for &n in &SIZES {
        let runs = 3;
        let (x, y) = blobs(n, DIM);
        let on = SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(GAMMA));
        let off =
            SvcTrainer::new(SvcParams::default().with_cache_bytes(0)).kernel(RbfKernel::new(GAMMA));
        let (cache_on_ms, model) = time_ms(runs, || on.fit(&x, &y).expect("separable blobs"));
        let (cache_off_ms, model_off) = time_ms(runs, || off.fit(&x, &y).expect("separable blobs"));
        assert_eq!(
            model.iterations(),
            model_off.iterations(),
            "cache changed the optimization trajectory"
        );
        let row = SvcRow { n, cache_on_ms, cache_off_ms, iterations: model.iterations() };
        println!(
            "svc  n={n:5}: cache on {cache_on_ms:9.2} ms | cache off {cache_off_ms:9.2} ms \
             | win {:.2}x | {} iterations",
            row.cache_off_ms / row.cache_on_ms,
            row.iterations
        );
        svc_rows.push(row);
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"config\": {{\"d\": {DIM}, \"kernel\": \"rbf\", \"gamma\": {GAMMA}, \
         \"host_cores\": {host_cores}, \"parallel_threads\": {PAR_THREADS}, \
         \"parallel_feature\": {}}},",
        edm_par::parallel_enabled()
    );
    let _ = writeln!(j, "  \"gram_build\": [");
    for (i, r) in gram_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"n\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"bitwise_identical\": {}}}{}",
            r.n,
            r.serial_ms,
            r.parallel_ms,
            r.serial_ms / r.parallel_ms,
            r.bitwise_identical,
            if i + 1 < gram_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"svc_train_serial\": [");
    for (i, r) in svc_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"n\": {}, \"cache_on_ms\": {:.3}, \"cache_off_ms\": {:.3}, \
             \"cache_win\": {:.3}, \"iterations\": {}}}{}",
            r.n,
            r.cache_on_ms,
            r.cache_off_ms,
            r.cache_off_ms / r.cache_on_ms,
            r.iterations,
            if i + 1 < svc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let gram2000 = gram_rows.iter().find(|r| r.n == 2000).expect("n=2000 measured");
    let cache_win =
        svc_rows.iter().map(|r| r.cache_off_ms / r.cache_on_ms).fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(j, "  \"claims\": {{");
    let _ = writeln!(
        j,
        "    \"gram_n2000_speedup_on_{PAR_THREADS}_threads\": {:.3},",
        gram2000.serial_ms / gram2000.parallel_ms
    );
    let _ = writeln!(j, "    \"gram_speedup_measurable_on_host\": {},", host_cores >= 2);
    let _ = writeln!(j, "    \"best_svc_cache_win\": {cache_win:.3},");
    let _ = writeln!(j, "    \"svc_cache_win_ge_1\": {},", cache_win > 1.0);
    let _ = writeln!(
        j,
        "    \"note\": \"speedup numbers are wall-clock medians on this host; with fewer \
         cores than parallel_threads the gram sweep measures dispatch overhead, not scaling\""
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    std::fs::write("BENCH_kernel_compute.json", &j).expect("write BENCH_kernel_compute.json");
    println!("\nwrote BENCH_kernel_compute.json");
    edm_bench::emit_trace("bench_kernel_compute", 1);
}
