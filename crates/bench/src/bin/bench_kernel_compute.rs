//! Scaling harness for the blocked kernel-compute layer and the SMO
//! Q-row cache. Emits `BENCH_kernel_compute.json` in the working
//! directory; `--quick` runs a trimmed variant for CI smoke.
//!
//! Measurements (RBF kernel, d = 32, deterministic data):
//!
//! * Gram-matrix build at n ∈ {500, 2000, 8000} ({500, 1500} under
//!   `--quick`), three ways: the **seed baseline** (the deprecated
//!   row-sharded `gram_matrix_rows` pinned to one thread — what the
//!   repo shipped before the blocked rework), the tiled builder at one
//!   thread, and the tiled builder at the parallel thread count. A
//!   bitwise checksum comparison proves all three agree exactly.
//! * A tile-geometry sweep over `EDM_BLOCK` at one fixed size, so a
//!   host with a different cache hierarchy can see what retuning buys.
//! * SVC training at the same sizes, serial, with the Q-row cache on
//!   (default budget) vs off (`cache_bytes = 0`).
//!
//! Thread counts are swept in-process via the `EDM_NUM_THREADS`
//! override that `edm_par::num_threads()` re-reads on every call. The
//! parallel sweep is clamped to the host's available parallelism and
//! the JSON records the true `host_cores`: claiming a 4-thread speedup
//! measured on one core would be fiction, so on small hosts the
//! "parallel" column degenerates to the tiled serial path and the
//! headline speedup is carried by cache locality alone.
//!
//! The claims block is load-bearing. Full mode exits nonzero unless
//! the tiled+parallel path strictly beats the seed baseline at the
//! largest size (where the old row-sharded builder's 0.89× parallel
//! regression lived), stays within a 0.9 no-regression floor at every
//! other size, and the tiled serial path is ≥ 1.1× the seed at the
//! largest size. Quick mode (CI) enforces a ≥ 0.9 floor only. The
//! asymmetry is honesty, not leniency: at n ≤ 2000 both builders do
//! the same n²/2 cache-resident kernel evaluations and their true
//! ratio is ~1.0, so a strict win-gate there would be a coin flip on
//! scheduler noise.
//!
//! On the tiling ceiling: both builders evaluate the same n²/2 kernel
//! cells, and at d = 32 the RBF evaluation itself (an order-pinned
//! 32-term reduction plus `exp`) dominates. Tiling removes the seed's
//! per-row dispatch and its element-wise strided mirror, which is
//! worth ~1.2× at n = 8000 — not the multiples a memory-bound loop
//! would show, because the sample set (2 MB) never leaves cache.

use std::fmt::Write as _;
use std::time::Instant;

#[allow(deprecated)]
use edm_kernels::gram_matrix_rows;
use edm_kernels::{gram_matrix, RbfKernel};
use edm_svm::{SvcParams, SvcTrainer};

const DIM: usize = 32;
const GAMMA: f64 = 0.5;
const SIZES: [usize; 3] = [500, 2000, 8000];
const QUICK_SIZES: [usize; 2] = [500, 1500];
/// Thread count the parallel sweep requests (clamped to the host).
const PAR_THREADS: usize = 4;
/// Tile geometries swept at a fixed size, `band_rows x col_tile`.
const TILE_SWEEP: [&str; 4] = ["16x32", "32x64", "64x128", "128x256"];

/// Deterministic SplitMix64 stream.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut m = Mix(seed);
    (0..n).map(|_| (0..d).map(|_| m.next_f64()).collect()).collect()
}

/// Two shifted blobs with alternating ±1 labels: trivially separable,
/// so SVC converges quickly and the timing isolates kernel compute.
fn blobs(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = points(7, n, d);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.5;
        }
    }
    (x, y)
}

fn set_threads(n: usize) {
    std::env::set_var("EDM_NUM_THREADS", n.to_string());
}

/// FNV-1a over the bit patterns — order-sensitive, so equal checksums
/// on row-major buffers mean bitwise-equal matrices.
fn checksum(rows: usize, m: &edm_linalg::Matrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..rows {
        for v in m.row(i) {
            h = (h ^ v.to_bits()).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Best (minimum) wall time of `runs` executions, in milliseconds.
///
/// One untimed warmup run first, and the previous result is dropped
/// *before* each timed run starts: keeping a second multi-hundred-MB
/// buffer alive while the next one is allocated perturbs page-fault
/// behaviour enough to swing large-`n` timings by 3×. Minimum (not
/// median) because scheduler/background interference on shared hosts
/// is strictly additive — the fastest rep is the closest observation
/// of what the code itself costs.
fn time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    drop(f());
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        drop(last.take());
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("runs > 0"))
}

/// Best-of-`rounds` for a set of variants measured **interleaved**:
/// one timed rep of each variant per round, round-robin. Slow phases
/// of background load then hit every variant equally instead of
/// landing on whichever one was being measured in bulk, and the
/// per-variant minimum discards the polluted rounds entirely. The
/// first (untimed) warmup pass over all variants is where callers
/// should latch checksums/iteration counts from their closures; timed
/// reps drop each result outside the measured window so deallocation
/// of a multi-hundred-MB buffer never lands in the timing.
fn time_interleaved_ms<T>(rounds: usize, variants: &mut [&mut dyn FnMut() -> T]) -> Vec<f64> {
    for f in variants.iter_mut() {
        drop(f()); // warmup, untimed
    }
    let mut best = vec![f64::INFINITY; variants.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(variants.iter_mut()) {
            let t0 = Instant::now();
            let out = f();
            *b = b.min(t0.elapsed().as_secs_f64() * 1e3);
            drop(out);
        }
    }
    best
}

struct GramRow {
    n: usize,
    seed_serial_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

impl GramRow {
    /// Production path (tiled, parallel) vs what the repo used to ship.
    fn speedup(&self) -> f64 {
        self.seed_serial_ms / self.parallel_ms
    }

    /// Tiling alone, threads held at one.
    fn tiled_vs_seed(&self) -> f64 {
        self.seed_serial_ms / self.serial_ms
    }
}

struct SvcRow {
    n: usize,
    cache_on_ms: f64,
    cache_off_ms: f64,
    iterations: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    edm_bench::init_trace();
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let par_threads = PAR_THREADS.min(host_cores);
    let sizes: &[usize] = if quick { &QUICK_SIZES } else { &SIZES };
    println!(
        "kernel-compute bench{}: d = {DIM}, rbf gamma = {GAMMA}, host cores = {host_cores}, \
         parallel threads = {par_threads} (requested {PAR_THREADS}), parallel feature = {}",
        if quick { " (quick)" } else { "" },
        edm_par::parallel_enabled()
    );

    let mut gram_rows = Vec::new();
    for &n in sizes {
        // Small sizes finish in single-digit milliseconds, so buy many
        // rounds (still cheap) to stabilize the best-of-k minimum.
        let rounds = if n >= 8000 {
            5
        } else if n >= 2000 {
            15
        } else {
            30
        };
        let pts = points(1, n, DIM);
        let k = RbfKernel::new(GAMMA);
        let mut sum_seed: Option<u64> = None;
        let mut sum_serial: Option<u64> = None;
        let mut sum_par: Option<u64> = None;
        let mut f_seed = || {
            set_threads(1);
            #[allow(deprecated)]
            let g = gram_matrix_rows(&k, &pts);
            if sum_seed.is_none() {
                sum_seed = Some(checksum(n, &g));
            }
            g
        };
        let mut f_serial = || {
            set_threads(1);
            let g = gram_matrix(&k, &pts);
            if sum_serial.is_none() {
                sum_serial = Some(checksum(n, &g));
            }
            g
        };
        let mut f_par = || {
            set_threads(par_threads);
            let g = gram_matrix(&k, &pts);
            if sum_par.is_none() {
                sum_par = Some(checksum(n, &g));
            }
            g
        };
        let best = time_interleaved_ms(rounds, &mut [&mut f_seed, &mut f_serial, &mut f_par]);
        let (seed_serial_ms, serial_ms, parallel_ms) = (best[0], best[1], best[2]);
        let row = GramRow {
            n,
            seed_serial_ms,
            serial_ms,
            parallel_ms,
            bitwise_identical: sum_seed.is_some()
                && sum_seed == sum_serial
                && sum_serial == sum_par,
        };
        println!(
            "gram n={n:5}: seed {seed_serial_ms:9.2} ms | tiled {serial_ms:9.2} ms | \
             {par_threads} threads {parallel_ms:9.2} ms | speedup {:.2}x | bitwise identical: {}",
            row.speedup(),
            row.bitwise_identical
        );
        assert!(row.bitwise_identical, "tiled gram diverged from the seed builder");
        gram_rows.push(row);
    }

    // Tile-geometry sweep: tiled serial build at one size per EDM_BLOCK.
    set_threads(1);
    let sweep_n = if quick { 1500 } else { 2000 };
    let sweep_pts = points(1, sweep_n, DIM);
    let sweep_k = RbfKernel::new(GAMMA);
    let mut tile_rows = Vec::new();
    for block in TILE_SWEEP {
        std::env::set_var("EDM_BLOCK", block);
        let (ms, g) = time_ms(3, || gram_matrix(&sweep_k, &sweep_pts));
        drop(g);
        println!("tile sweep n={sweep_n}: EDM_BLOCK={block:8} {ms:9.2} ms");
        tile_rows.push((block, ms));
    }
    std::env::remove_var("EDM_BLOCK");

    set_threads(1); // cache comparison is a serial, algorithmic effect
    let mut svc_rows = Vec::new();
    for &n in sizes {
        let rounds = 3;
        let (x, y) = blobs(n, DIM);
        let on = SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(GAMMA));
        let off =
            SvcTrainer::new(SvcParams::default().with_cache_bytes(0)).kernel(RbfKernel::new(GAMMA));
        let mut iters_on: Option<usize> = None;
        let mut iters_off: Option<usize> = None;
        let mut f_on = || {
            let m = on.fit(&x, &y).expect("separable blobs");
            iters_on.get_or_insert(m.iterations());
            m
        };
        let mut f_off = || {
            let m = off.fit(&x, &y).expect("separable blobs");
            iters_off.get_or_insert(m.iterations());
            m
        };
        let best = time_interleaved_ms(rounds, &mut [&mut f_on, &mut f_off]);
        let (cache_on_ms, cache_off_ms) = (best[0], best[1]);
        let iterations = iters_on.expect("warmup ran");
        assert_eq!(Some(iterations), iters_off, "cache changed the optimization trajectory");
        let row = SvcRow { n, cache_on_ms, cache_off_ms, iterations };
        println!(
            "svc  n={n:5}: cache on {cache_on_ms:9.2} ms | cache off {cache_off_ms:9.2} ms \
             | win {:.2}x | {} iterations",
            row.cache_off_ms / row.cache_on_ms,
            row.iterations
        );
        svc_rows.push(row);
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"config\": {{\"d\": {DIM}, \"kernel\": \"rbf\", \"gamma\": {GAMMA}, \
         \"host_cores\": {host_cores}, \"parallel_threads\": {par_threads}, \
         \"parallel_feature\": {}, \"quick\": {quick}}},",
        edm_par::parallel_enabled()
    );
    let _ = writeln!(j, "  \"gram_build\": [");
    for (i, r) in gram_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"n\": {}, \"seed_serial_ms\": {:.3}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"tiled_vs_seed\": {:.3}, \
             \"bitwise_identical\": {}}}{}",
            r.n,
            r.seed_serial_ms,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.tiled_vs_seed(),
            r.bitwise_identical,
            if i + 1 < gram_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"tile_sweep\": [");
    for (i, (block, ms)) in tile_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"n\": {sweep_n}, \"block\": \"{block}\", \"serial_ms\": {ms:.3}}}{}",
            if i + 1 < tile_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"svc_train_serial\": [");
    for (i, r) in svc_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"n\": {}, \"cache_on_ms\": {:.3}, \"cache_off_ms\": {:.3}, \
             \"cache_win\": {:.3}, \"iterations\": {}}}{}",
            r.n,
            r.cache_on_ms,
            r.cache_off_ms,
            r.cache_off_ms / r.cache_on_ms,
            r.iterations,
            if i + 1 < svc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let min_speedup = gram_rows.iter().map(GramRow::speedup).fold(f64::INFINITY, f64::min);
    let largest = gram_rows.last().expect("at least one size");
    let cache_win =
        svc_rows.iter().map(|r| r.cache_off_ms / r.cache_on_ms).fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(j, "  \"claims\": {{");
    let _ = writeln!(j, "    \"gram_min_speedup_vs_seed\": {min_speedup:.3},");
    let _ = writeln!(j, "    \"gram_speedup_at_largest_n\": {:.3},", largest.speedup());
    let _ = writeln!(j, "    \"gram_speedup_gt_1_at_every_n\": {},", min_speedup > 1.0);
    let _ = writeln!(
        j,
        "    \"gram_tiled_serial_vs_seed_n{}\": {:.3},",
        largest.n,
        largest.tiled_vs_seed()
    );
    let _ = writeln!(j, "    \"best_svc_cache_win\": {cache_win:.3},");
    let _ = writeln!(j, "    \"svc_cache_win_ge_1\": {},", cache_win > 1.0);
    let _ = writeln!(
        j,
        "    \"note\": \"interleaved best-of-k wall times on this host; seed_serial_ms is the \
         pre-rework row-sharded builder at one thread, parallel_threads is clamped to \
         host_cores, so on small hosts the speedup column isolates cache blocking rather than \
         thread scaling\""
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    std::fs::write("BENCH_kernel_compute.json", &j).expect("write BENCH_kernel_compute.json");
    println!("\nwrote BENCH_kernel_compute.json");
    edm_bench::emit_trace("bench_kernel_compute", 1);

    // Hard gates — a regression here must fail the run, not just
    // reword the JSON. The strict win is demanded at the largest size,
    // where the old builder actually regressed and where tiling has
    // headroom; the smaller cache-resident sizes get a no-regression
    // floor because their true ratio is ~1.0 (see the module docs).
    if quick {
        assert!(
            min_speedup >= 0.9,
            "tiled+parallel gram build regressed past noise vs the seed baseline \
             (min speedup {min_speedup:.3}, floor 0.9)"
        );
    } else {
        assert!(
            largest.speedup() > 1.0,
            "tiled+parallel gram at n={} no faster than the seed baseline ({:.3}x)",
            largest.n,
            largest.speedup()
        );
        assert!(
            min_speedup >= 0.9,
            "tiled+parallel gram build regressed past noise vs the seed baseline \
             (min speedup {min_speedup:.3}, floor 0.9)"
        );
        assert!(
            largest.tiled_vs_seed() >= 1.1,
            "tiled serial gram at n={} is only {:.3}x the seed baseline (need >= 1.1x; \
             the eval-bound ceiling at d=32 is ~1.2-1.3x, see the module docs)",
            largest.n,
            largest.tiled_vs_seed()
        );
    }
}
