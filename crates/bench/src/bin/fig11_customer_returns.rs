//! Fig. 11 — modeling customer returns: a return projects as an extreme
//! outlier in a selected 3-test space (plot 1), the same model catches a
//! return manufactured months later (plot 2) and returns from a sister
//! product a year later (plot 3).

use edm_bench::{claim, finish, header, pct};
use edm_core::returns::{self, ReturnScreeningConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Figure 11: customer-return screening");
    let config = ReturnScreeningConfig {
        lot_size: 10_000,
        n_lots: 10,
        defect_rate: 3e-4,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(11);
    let result = returns::run(&config, &mut rng).expect("flow runs");

    println!("baseline window: {} lots x {} devices", config.n_lots, config.lot_size);
    println!("selected test space: {:?}", result.screen.selected_names);
    println!("\nplot 1 — returns as outliers in the selected space:");
    println!("  baseline returns: {}", result.n_baseline_returns);
    for (i, p) in result.baseline_return_percentiles.iter().enumerate() {
        println!("  return #{i}: outlier-score percentile {}", pct(*p));
    }
    println!("\nplot 2 — later production (months later):");
    println!("  model catches {}/{} returns", result.later_caught, result.later_total);
    println!("\nplot 3 — sister product (a year later):");
    println!("  model catches {}/{} returns", result.sister_caught, result.sister_total);
    println!("\noverkill on healthy devices: {}", pct(result.overkill_rate));

    let min_pct = result.baseline_return_percentiles.iter().fold(1.0_f64, |m, &p| m.min(p));
    let claims = [
        claim(
            &format!("returns are extreme outliers (min percentile {})", pct(min_pct)),
            min_pct > 0.95,
        ),
        claim(
            "the model catches later-production returns",
            result.later_total == 0 || result.later_caught * 3 >= result.later_total * 2,
        ),
        claim(
            "the model transfers to the sister product",
            result.sister_total == 0 || result.sister_caught * 2 >= result.sister_total,
        ),
        claim(
            &format!("overkill stays small ({})", pct(result.overkill_rate)),
            result.overkill_rate < 0.01,
        ),
    ];
    edm_bench::emit_trace("fig11_customer_returns", 11);
    finish(&claims);
}
