//! Load harness for the `edm-serve` scoring service. Emits
//! `BENCH_serve.json` in the working directory.
//!
//! Measurements against live servers on ephemeral loopback ports:
//!
//! * **keep-alive closed loop** — persistent connections, each client
//!   issuing framed requests back-to-back (one in flight); sustained
//!   rps is compared against the PR 7 connection-per-request baseline
//!   (2937.3 rps on this harness);
//! * **pipelined keep-alive closed loop** — the peak-throughput
//!   headline: each connection keeps a window of requests in flight
//!   (HTTP/1.1 pipelining), eliminating the per-request round-trip
//!   wait;
//! * **legacy closed loop** — connection-per-request, with **connect
//!   time and request time reported as separate distributions** (the
//!   old harness conflated them, hiding the server-side cost);
//! * **open loop** — an arrival-rate sweep over pipelined keep-alive
//!   connections; requests are sent on a fixed schedule and latency is
//!   measured from the *scheduled* send time (coordinated-omission
//!   free), reporting the saturation knee = the highest offered rate
//!   with achieved ≥ 0.95 × offered;
//! * **micro-batch coalescing** — concurrent clients against a slow
//!   model must produce coalesced `predict_batch` flushes, visible in
//!   `/metrics` and `/v1/trace`;
//! * **admission tiers** — a quota'd slow model under a hot client
//!   swarm returns tier 503s while an untiered model keeps serving;
//! * a correctness probe: predictions served over HTTP are bitwise
//!   identical to the in-process `predict_batch` path;
//! * deterministic queue-full backpressure (one worker, one slot) and
//!   mid-run `/metrics` + `/v1/trace` liveness checks.
//!
//! `--quick` shrinks the request counts for CI smoke use.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use edm::prelude::*;
use edm_serve::json::{self, Value};
use edm_serve::{AdmissionTier, ModelRegistry, Server, ServerConfig};

const DIM: usize = 8;
const TRAIN_N: usize = 240;
/// Rows per scoring request.
const BATCH: usize = 16;
/// Concurrent closed-loop clients (and keep-alive connections).
const CLIENTS: usize = 8;
/// PR 7 sustained rps on this harness (connection-per-request).
const PR7_BASELINE_RPS: f64 = 2937.3;

/// Deterministic SplitMix64 stream.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut m = Mix(seed);
    (0..n).map(|_| (0..d).map(|_| m.next_f64()).collect()).collect()
}

/// Two separable blobs with ±1 labels.
fn blobs(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = points(seed, n, DIM);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.3;
        }
    }
    (x, y)
}

fn predict_body(rows: &[Vec<f64>]) -> String {
    let inputs = Value::Array(
        rows.iter().map(|r| Value::Array(r.iter().map(|&v| Value::Number(v)).collect())).collect(),
    );
    Value::Object(vec![("inputs".to_string(), inputs)]).encode()
}

fn predict_request(path: &str, body: &str) -> String {
    format!("POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}", body.len())
}

/// Runs `f(0..n)` on `n` plain scoped threads and collects the results
/// in index order. The load phases use this instead of
/// `edm_par::map_indexed` on purpose: the server under test lives in
/// this same process, and steering `EDM_NUM_THREADS` to size the
/// client pool would also make every server-side `predict_batch` fan
/// out across that many threads — pure spawn/join overhead per
/// micro-batch flush on a small host, and a measurement artifact the
/// harness must not introduce.
fn fan_out<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let f = &f;
    // edm-allow(direct-thread-spawn): load clients must not share the server's edm-par pool sizing
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n).map(|i| s.spawn(move || f(i))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
}

/// Parses the leading unsigned integer of `bytes` (after skipping
/// blanks), e.g. the status code after `HTTP/1.1 ` or a
/// `content-length` value.
fn leading_uint(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    let mut seen = false;
    for &b in bytes {
        match b {
            b'0'..=b'9' => {
                v = v * 10 + u64::from(b - b'0');
                seen = true;
            }
            b' ' | b'\t' if !seen => {}
            _ => break,
        }
    }
    v
}

/// Reads one `content-length`-framed response off a keep-alive stream,
/// discarding the body without copying it. `line` is caller-owned
/// scratch so the hot loop does no per-response allocation. Returns the
/// status code.
fn read_framed<R: BufRead>(reader: &mut R, line: &mut Vec<u8>) -> std::io::Result<u16> {
    let mut status = 0u16;
    let mut content_length = 0usize;
    loop {
        line.clear();
        let n = reader.read_until(b'\n', line)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "EOF in headers"));
        }
        let mut end = line.len();
        while end > 0 && (line[end - 1] == b'\n' || line[end - 1] == b'\r') {
            end -= 1;
        }
        let l = &line[..end];
        if l.is_empty() {
            break;
        }
        if status == 0 && l.starts_with(b"HTTP/") {
            let after = l.iter().position(|&b| b == b' ').map_or(l.len(), |i| i + 1);
            status = leading_uint(&l[after..]) as u16;
        } else if l.len() > 15 && l[..15].eq_ignore_ascii_case(b"content-length:") {
            content_length = leading_uint(&l[15..]) as usize;
        }
    }
    // Skip the body straight out of the BufReader's buffer.
    let mut remaining = content_length;
    while remaining > 0 {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "EOF in body"));
        }
        let take = available.len().min(remaining);
        reader.consume(take);
        remaining -= take;
    }
    Ok(status)
}

/// One connection-per-request exchange with split timings; returns
/// `(status, body, connect_ns, request_ns)`. Socket failures come back
/// as status 0 so a load phase never panics mid-measurement.
fn exchange(addr: SocketAddr, request: &str) -> (u16, String, u64, u64) {
    let t0 = Instant::now();
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return (0, String::new(), t0.elapsed().as_nanos() as u64, 0),
    };
    let connect_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let run = |mut stream: TcpStream| -> std::io::Result<String> {
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(request.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    };
    let response = match run(stream) {
        Ok(r) => r,
        Err(_) => return (0, String::new(), connect_ns, t1.elapsed().as_nanos() as u64),
    };
    let request_ns = t1.elapsed().as_nanos() as u64;
    let status = response.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map_or(String::new(), |(_, b)| b.to_string());
    (status, body, connect_ns, request_ns)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (s, b, _, _) =
        exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n"));
    (s, b)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let (s, b, _, _) = exchange(addr, &raw);
    (s, b)
}

/// Value of the first exposition line starting with `prefix`
/// (`name{labels} value`), if any.
fn metric_value(body: &str, prefix: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Sum of every exposition line starting with `prefix`.
fn metric_sum(body: &str, prefix: &str) -> f64 {
    body.lines()
        .filter(|l| l.starts_with(prefix))
        .filter_map(|l| l.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()))
        .sum()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn sorted_ms(ns: impl Iterator<Item = u64>) -> Vec<f64> {
    let mut v: Vec<f64> = ns.map(|n| n as f64 / 1e6).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

/// Outcome of one closed-loop keep-alive run.
struct ClosedLoop {
    statuses: Vec<u16>,
    latencies_ns: Vec<u64>,
    wall_s: f64,
}

/// `clients` persistent connections, each issuing `per_client`
/// framed requests back-to-back.
fn run_keepalive_closed_loop(
    addr: SocketAddr,
    request: &str,
    clients: usize,
    per_client: usize,
) -> ClosedLoop {
    let t0 = Instant::now();
    let per: Vec<Vec<(u16, u64)>> = fan_out(clients, |_| {
        let Ok(stream) = TcpStream::connect(addr) else {
            return vec![(0u16, 0u64); per_client];
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(read_half) = stream.try_clone() else {
            return vec![(0u16, 0u64); per_client];
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = Vec::new();
        (0..per_client)
            .map(|_| {
                let t = Instant::now();
                if writer.write_all(request.as_bytes()).is_err() {
                    return (0u16, 0u64);
                }
                match read_framed(&mut reader, &mut line) {
                    Ok(status) => (status, t.elapsed().as_nanos() as u64),
                    Err(_) => (0u16, 0u64),
                }
            })
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut statuses = Vec::new();
    let mut latencies_ns = Vec::new();
    for conn in per {
        for (s, ns) in conn {
            statuses.push(s);
            latencies_ns.push(ns);
        }
    }
    ClosedLoop { statuses, latencies_ns, wall_s }
}

/// Pipelined closed loop: each connection keeps up to `window` requests
/// in flight (HTTP/1.1 pipelining), writing refill bursts as single
/// syscalls once the window half-drains. This removes the per-request
/// client↔server round-trip wait of the strict closed loop and keeps
/// the server's connection readers always hot, so it measures peak
/// server throughput; per-request latency is meaningless here (it is
/// dominated by the client's own queue) and is not reported.
fn run_pipelined_closed_loop(
    addr: SocketAddr,
    request: &str,
    clients: usize,
    per_client: usize,
    window: usize,
) -> (usize, f64) {
    let burst: Vec<u8> = request.as_bytes().repeat(window);
    let req_len = request.len();
    let t0 = Instant::now();
    let ok_per_conn: Vec<usize> = fan_out(clients, |_| {
        let Ok(stream) = TcpStream::connect(addr) else { return 0 };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(read_half) = stream.try_clone() else { return 0 };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = Vec::new();
        let (mut sent, mut done, mut ok) = (0usize, 0usize, 0usize);
        while done < per_client {
            let in_flight = sent - done;
            if sent < per_client && in_flight <= window / 2 {
                let n = (window - in_flight).min(per_client - sent);
                if writer.write_all(&burst[..n * req_len]).is_err() {
                    return ok;
                }
                sent += n;
            }
            match read_framed(&mut reader, &mut line) {
                Ok(200) => {
                    ok += 1;
                    done += 1;
                }
                Ok(_) => done += 1,
                Err(_) => return ok,
            }
        }
        ok
    });
    (ok_per_conn.iter().sum(), t0.elapsed().as_secs_f64())
}

/// One open-loop sweep step at `offered_rps` across `conns` pipelined
/// keep-alive connections for ~`duration`. Latency is measured from the
/// scheduled send time.
struct OpenLoopStep {
    offered_rps: f64,
    achieved_rps: f64,
    delivered: usize,
    sent: usize,
    p50_ms: f64,
    p99_ms: f64,
}

fn run_open_loop_step(
    addr: SocketAddr,
    request: &str,
    conns: usize,
    offered_rps: f64,
    duration: Duration,
) -> OpenLoopStep {
    let per_conn_rate = offered_rps / conns as f64;
    let count = ((per_conn_rate * duration.as_secs_f64()).round() as usize).max(1);
    let offered_actual = count as f64 * conns as f64 / duration.as_secs_f64();
    let streams: Vec<TcpStream> = (0..conns)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("open-loop connect");
            s.set_nodelay(true).expect("nodelay");
            s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
            s
        })
        .collect();
    let t0 = Instant::now();
    // Jobs 0..conns write on a fixed schedule; jobs conns..2*conns read
    // framed responses off the same sockets and stamp completion times.
    // Writers use catch-up pacing: sleep until the next unsent request
    // is due, then send *every* request already due in one burst — on a
    // contended host this avoids a sleep/wake cycle per request while
    // keeping the schedule (latency is still measured from the
    // scheduled send time, so bursts cannot hide queueing).
    let outcomes: Vec<Vec<(u16, u64)>> = fan_out(2 * conns, |job| {
        if job < conns {
            let mut stream = &streams[job];
            let mut sent = 0usize;
            'writer: while sent < count {
                let due = ((t0.elapsed().as_secs_f64() * per_conn_rate) as usize + 1).min(count);
                while sent < due {
                    if stream.write_all(request.as_bytes()).is_err() {
                        break 'writer;
                    }
                    sent += 1;
                }
                if sent < count {
                    let next = t0 + Duration::from_secs_f64(sent as f64 / per_conn_rate);
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
            }
            Vec::new()
        } else {
            let mut reader = BufReader::new(&streams[job - conns]);
            let mut line = Vec::new();
            (0..count)
                .map(|_| match read_framed(&mut reader, &mut line) {
                    Ok(status) => (status, t0.elapsed().as_nanos() as u64),
                    Err(_) => (0u16, 0u64),
                })
                .collect()
        }
    });
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut delivered = 0usize;
    let mut last_completion_ns = 0u64;
    for conn_events in outcomes.iter().filter(|v| !v.is_empty()) {
        for (k, &(status, completion_ns)) in conn_events.iter().enumerate() {
            if status != 200 {
                continue;
            }
            delivered += 1;
            last_completion_ns = last_completion_ns.max(completion_ns);
            let sched_ns = (k as f64 / per_conn_rate * 1e9) as u64;
            latencies_ns.push(completion_ns.saturating_sub(sched_ns));
        }
    }
    let lat_ms = sorted_ms(latencies_ns.into_iter());
    let elapsed_s = (last_completion_ns as f64 / 1e9).max(duration.as_secs_f64());
    OpenLoopStep {
        offered_rps: offered_actual,
        achieved_rps: delivered as f64 / elapsed_s,
        delivered,
        sent: count * conns,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
    }
}

/// A deliberately slow predictor (deterministic spin) so the
/// backpressure / coalescing / tier phases can saturate a server.
struct SpinPredictor {
    spin_iters: u64,
}

impl Predictor for SpinPredictor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        let mut acc = 0.0f64;
        for i in 0..self.spin_iters {
            acc += (i as f64).sqrt();
        }
        Ok(vec![acc.fract(); xs.len()])
    }

    fn n_features(&self) -> usize {
        DIM
    }

    fn name(&self) -> &'static str {
        "spin"
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    edm_bench::init_trace();
    let quick = std::env::args().any(|a| a == "--quick");
    let ka_requests = if quick { 480 } else { 12_000 };
    let legacy_requests = if quick { 64 } else { 640 };
    let burst = if quick { 32 } else { 96 };
    let sweep_duration = Duration::from_secs_f64(if quick { 0.4 } else { 1.2 });
    let mut claims = Vec::new();

    edm_bench::header("edm-serve scoring service");
    println!(
        "d = {DIM}, batch = {BATCH} rows/request, clients = {CLIENTS}, \
         keepalive requests = {ka_requests}, legacy requests = {legacy_requests}, quick = {quick}"
    );

    // --- server with real models ------------------------------------
    let (x, y) = blobs(3, TRAIN_N);
    let svc = SvcTrainer::new(SvcParams::default())
        .kernel(RbfKernel::new(0.4))
        .fit(&x, &y)
        .expect("separable blobs train");
    let ridge = Ridge::fit(&x, &y, 0.1).expect("ridge fits");
    let queries = points(11, BATCH, DIM);
    let expected = svc.predict_batch(&queries);

    let mut reg = ModelRegistry::new();
    reg.register("svc", svc).expect("register svc");
    reg.register("ridge", ridge).expect("register ridge");
    // Keep-alive pins one worker per connection: size the pool to the
    // connection count, not the request count.
    let config =
        ServerConfig { workers: 2 * CLIENTS + 2, queue_capacity: 64, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind an ephemeral port");
    let addr = server.local_addr();
    let body = predict_body(&queries);
    let request = predict_request("/v1/models/svc:predict", &body);

    // Wire-format correctness probe before any load.
    let (status, resp_body) = post(addr, "/v1/models/svc:predict", &body);
    let served: Vec<f64> = json::parse(&resp_body)
        .ok()
        .and_then(|doc| {
            doc.get("predictions")
                .and_then(Value::as_array)
                .map(|preds| preds.iter().filter_map(Value::as_f64).collect())
        })
        .unwrap_or_default();
    let bitwise = status == 200
        && served.len() == expected.len()
        && served.iter().zip(&expected).all(|(s, e)| s.to_bits() == e.to_bits());
    claims.push(edm_bench::claim(
        "HTTP predictions are bitwise equal to in-process scoring",
        bitwise,
    ));

    // --- legacy closed loop: connection per request -----------------
    let legacy_request = format!(
        "POST /v1/models/svc:predict HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    for _ in 0..CLIENTS {
        let (s, _, _, _) = exchange(addr, &legacy_request);
        assert_eq!(s, 200, "legacy warmup request failed");
    }
    let t0 = Instant::now();
    // CLIENTS concurrent clients, each opening a fresh connection per
    // request and splitting the total request count evenly.
    let legacy: Vec<(u16, u64, u64)> = fan_out(CLIENTS, |c| {
        let share = legacy_requests / CLIENTS + usize::from(c < legacy_requests % CLIENTS);
        (0..share)
            .map(|_| {
                let (status, _, connect_ns, request_ns) = exchange(addr, &legacy_request);
                (status, connect_ns, request_ns)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let legacy_wall_s = t0.elapsed().as_secs_f64();
    let legacy_ok = legacy.iter().filter(|(s, _, _)| *s == 200).count();
    let legacy_rps = legacy_requests as f64 / legacy_wall_s;
    let connect_ms = sorted_ms(legacy.iter().map(|(_, c, _)| *c));
    let req_ms = sorted_ms(legacy.iter().map(|(_, _, r)| *r));
    let (connect_p50, connect_p99) = (percentile(&connect_ms, 0.5), percentile(&connect_ms, 0.99));
    let (req_p50, req_p99) = (percentile(&req_ms, 0.5), percentile(&req_ms, 0.99));
    println!(
        "legacy closed loop: {legacy_ok}/{legacy_requests} ok | {legacy_rps:9.1} req/s | \
         connect p50 {connect_p50:6.3} ms p99 {connect_p99:6.3} ms | \
         request p50 {req_p50:6.3} ms p99 {req_p99:6.3} ms"
    );

    // --- keep-alive closed loop (headline) --------------------------
    // Two halves with a /metrics scrape between them so the labeled
    // per-model series are proven live *mid-run*.
    let half = ka_requests / 2 / CLIENTS;
    let first = run_keepalive_closed_loop(addr, &request, CLIENTS, half);
    let (mid_status, mid_metrics) = get(addr, "/metrics");
    let mid_count = metric_value(
        &mid_metrics,
        "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"200\"}",
    )
    .unwrap_or(0.0);
    let mid_window_p50 = metric_value(
        &mid_metrics,
        "edm_serve_latency_quantile_ms{endpoint=\"predict\",model=\"svc\",window=\"60s\",quantile=\"0.5\"}",
    );
    let mid_run_scrape_ok = mid_status == 200
        && mid_count >= (half * CLIENTS) as f64
        && mid_window_p50.is_some_and(|v| v > 0.0);
    println!(
        "mid-run /metrics: status {mid_status}, predict×svc 200s = {mid_count:.0}, \
         rolling-window p50 = {mid_window_p50:?} ms"
    );
    let second = run_keepalive_closed_loop(addr, &request, CLIENTS, half);
    let ka_total = 2 * half * CLIENTS;
    let ka_ok = first.statuses.iter().chain(&second.statuses).filter(|&&s| s == 200).count();
    let ka_wall_s = first.wall_s + second.wall_s;
    let sustained_rps = ka_total as f64 / ka_wall_s;
    let ka_ms = sorted_ms(
        first.latencies_ns.iter().chain(&second.latencies_ns).copied().filter(|&n| n > 0),
    );
    let p50_ms = percentile(&ka_ms, 0.50);
    let p99_ms = percentile(&ka_ms, 0.99);
    let speedup = sustained_rps / PR7_BASELINE_RPS;
    println!(
        "keep-alive closed loop: {ka_ok}/{ka_total} ok | {sustained_rps:9.1} req/s sustained \
         ({speedup:.2}x PR7 baseline {PR7_BASELINE_RPS}) | p50 {p50_ms:7.3} ms | p99 {p99_ms:7.3} ms"
    );
    claims.push(edm_bench::claim(
        "every keep-alive load request scored (no drops)",
        ka_ok == ka_total,
    ));
    claims.push(edm_bench::claim(
        "keep-alive sustained throughput is positive and finite",
        sustained_rps.is_finite() && sustained_rps > 0.0,
    ));
    let rows_per_s = sustained_rps * BATCH as f64;

    // --- pipelined keep-alive closed loop (peak throughput) ----------
    // Twice the strict-loop connection count: pipelined clients spend
    // most of their time parked in `read`, and more connections let the
    // micro-batch scheduler coalesce deeper per flush.
    const PIPELINE_WINDOW: usize = 32;
    let pipe_conns = CLIENTS;
    let pipe_per_client = ka_requests / pipe_conns;
    let (pipe_ok, pipe_wall_s) =
        run_pipelined_closed_loop(addr, &request, pipe_conns, pipe_per_client, PIPELINE_WINDOW);
    let pipe_total = pipe_per_client * pipe_conns;
    let pipelined_rps = pipe_total as f64 / pipe_wall_s;
    let pipe_speedup = pipelined_rps / PR7_BASELINE_RPS;
    println!(
        "pipelined keep-alive ({pipe_conns} conns, window {PIPELINE_WINDOW}): \
         {pipe_ok}/{pipe_total} ok | {pipelined_rps:9.1} req/s sustained \
         ({pipe_speedup:.2}x PR7 baseline)"
    );
    claims.push(edm_bench::claim(
        "every pipelined keep-alive request scored (no drops)",
        pipe_ok == pipe_total,
    ));
    let best_rps = sustained_rps.max(pipelined_rps);
    let best_speedup = best_rps / PR7_BASELINE_RPS;

    // --- open-loop arrival-rate sweep -------------------------------
    edm_bench::header("open-loop arrival sweep");
    let factors: &[f64] = if quick { &[0.5, 0.8, 1.1] } else { &[0.3, 0.5, 0.7, 0.85, 1.0, 1.15] };
    let mut sweep = Vec::new();
    let mut knee_rps = 0.0f64;
    for &f in factors {
        let offered = best_rps * f;
        let step = run_open_loop_step(addr, &request, CLIENTS, offered, sweep_duration);
        println!(
            "offered {:9.1} req/s -> achieved {:9.1} req/s | delivered {}/{} | \
             p50 {:7.3} ms | p99 {:7.3} ms",
            step.offered_rps,
            step.achieved_rps,
            step.delivered,
            step.sent,
            step.p50_ms,
            step.p99_ms
        );
        if step.achieved_rps >= 0.95 * step.offered_rps {
            knee_rps = knee_rps.max(step.offered_rps);
        }
        sweep.push(step);
    }
    let knee_found = knee_rps > 0.0;
    println!("saturation knee: {knee_rps:.1} req/s (achieved >= 0.95 x offered)");
    claims.push(edm_bench::claim("open-loop sweep found a saturation knee", knee_found));

    // --- server-side telemetry cross-checks -------------------------
    let (metrics_status, metrics_body) = get(addr, "/metrics");
    let openmetrics_ok = metrics_status == 200 && metrics_body.ends_with("# EOF\n");
    claims.push(edm_bench::claim("/metrics is OpenMetrics text ending in # EOF", openmetrics_ok));
    claims.push(edm_bench::claim(
        "mid-run /metrics exposed live labeled predict×svc series",
        mid_run_scrape_ok,
    ));
    let svc_series = "edm_serve_latency_quantile_ms{endpoint=\"predict\",model=\"svc\"";
    let server_p50_ms = metric_value(
        &metrics_body,
        &format!("{svc_series},window=\"lifetime\",quantile=\"0.5\"}}"),
    )
    .unwrap_or(0.0);
    let server_p99_ms = metric_value(
        &metrics_body,
        &format!("{svc_series},window=\"lifetime\",quantile=\"0.99\"}}"),
    )
    .unwrap_or(0.0);
    let server_count = metric_value(
        &metrics_body,
        "edm_serve_request_latency_ns_count{endpoint=\"predict\",model=\"svc\"}",
    )
    .unwrap_or(0.0);
    // The server times request handling only; its p50 must be positive
    // and within one decilog bucket (~26%) + slack of the client's
    // keep-alive p50 (which excludes connect but includes the wire).
    let latency_cross_check = server_p50_ms > 0.0
        && server_p50_ms <= p50_ms * 1.26 + 1.0
        && server_count >= ka_total as f64;
    println!(
        "latency cross-check: server p50 {server_p50_ms:.3} ms vs client keep-alive p50 \
         {p50_ms:.3} ms | server series count {server_count:.0}"
    );
    claims.push(edm_bench::claim(
        "server-side per-model latency agrees with client measurements (within tolerance)",
        latency_cross_check,
    ));
    let (trace_status, trace_body) = get(addr, "/v1/trace");
    let trace_endpoint_ok = trace_status == 200
        && json::parse(&trace_body).ok().is_some_and(|doc| doc.get("level").is_some());
    claims.push(edm_bench::claim(
        "/v1/trace returns a live report our own JSON parser accepts",
        trace_endpoint_ok,
    ));
    let (models_status, _) = get(addr, "/v1/models");
    claims.push(edm_bench::claim("/v1/models answers 200 under no load", models_status == 200));
    server.shutdown();

    // --- micro-batch coalescing under a slow model ------------------
    edm_bench::header("micro-batch coalescing: slow model, concurrent clients");
    let mut coal_reg = ModelRegistry::new();
    let coal_iters = if quick { 400_000 } else { 1_000_000 };
    coal_reg.register("spin", SpinPredictor { spin_iters: coal_iters }).expect("register spin");
    let coal_server = Server::start(
        "127.0.0.1:0",
        coal_reg,
        ServerConfig { workers: CLIENTS + 2, queue_capacity: 64, ..ServerConfig::default() },
    )
    .expect("bind coalescing server");
    let coal_addr = coal_server.local_addr();
    let spin_body = predict_body(&queries[..1]);
    let spin_request = predict_request("/v1/models/spin:predict", &spin_body);
    let coal_per_client = if quick { 8 } else { 24 };
    let coal = run_keepalive_closed_loop(coal_addr, &spin_request, 6, coal_per_client);
    let coal_ok = coal.statuses.iter().filter(|&&s| s == 200).count();
    let (_, coal_metrics) = get(coal_addr, "/metrics");
    let coalesced_batches =
        metric_value(&coal_metrics, "edm_serve_coalesced_batches_total").unwrap_or(0.0);
    let coalesced_requests =
        metric_value(&coal_metrics, "edm_serve_coalesced_requests_total").unwrap_or(0.0);
    let batch_rows_max = metric_value(&coal_metrics, "edm_serve_batch_rows_max").unwrap_or(0.0);
    let flushes_total = metric_sum(&coal_metrics, "edm_serve_batches_total{reason=");
    let (_, coal_trace) = get(coal_addr, "/v1/trace");
    let trace_has_flush_probe = coal_trace.contains("serve.batch.flush_reason");
    println!(
        "coalescing: {coal_ok}/{} ok | {flushes_total:.0} flushes | {coalesced_batches:.0} \
         coalesced batches covering {coalesced_requests:.0} requests | largest flush \
         {batch_rows_max:.0} rows | trace probe seen = {trace_has_flush_probe}",
        6 * coal_per_client
    );
    let coalescing_observed = coalesced_batches >= 1.0 && coal_ok == 6 * coal_per_client;
    claims.push(edm_bench::claim(
        "concurrent requests against a busy model coalesce into shared predict_batch calls",
        coalescing_observed,
    ));
    coal_server.shutdown();

    // --- admission tiers: hot model cannot starve the registry ------
    edm_bench::header("admission tiers: quota'd hot model + untiered neighbor");
    let mut tier_reg = ModelRegistry::new();
    tier_reg
        .register_tiered(
            "spin",
            SpinPredictor { spin_iters: coal_iters },
            AdmissionTier::new("hot", 1),
        )
        .expect("register tiered spin");
    tier_reg
        .register("ridge", Ridge::fit(&x, &y, 0.1).expect("ridge fits"))
        .expect("register ridge");
    let tier_server = Server::start(
        "127.0.0.1:0",
        tier_reg,
        ServerConfig { workers: CLIENTS + 2, queue_capacity: 64, ..ServerConfig::default() },
    )
    .expect("bind tier server");
    let tier_addr = tier_server.local_addr();
    let ridge_body = predict_body(&queries);
    let ridge_request = predict_request("/v1/models/ridge:predict", &ridge_body);
    let tier_per_client = if quick { 6 } else { 16 };
    // 4 hot clients hammer the quota'd model while 2 quiet clients use
    // the untiered one; both loops run concurrently via one fan-out.
    // Hot clients pipeline all their requests up-front so the server
    // always has hot work buffered on 4 connections — on a single-core
    // host, strict one-in-flight clients can serialize by accident and
    // never contend for the tier quota.
    let tier_results: Vec<Vec<u16>> = fan_out(6, |c| {
        let req = if c < 4 { &spin_request } else { &ridge_request };
        let Ok(stream) = TcpStream::connect(tier_addr) else { return vec![0u16; tier_per_client] };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(read_half) = stream.try_clone() else { return vec![0u16; tier_per_client] };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = Vec::new();
        if c < 4 {
            if writer.write_all(req.as_bytes().repeat(tier_per_client).as_slice()).is_err() {
                return vec![0u16; tier_per_client];
            }
            (0..tier_per_client).map(|_| read_framed(&mut reader, &mut line).unwrap_or(0)).collect()
        } else {
            (0..tier_per_client)
                .map(|_| {
                    if writer.write_all(req.as_bytes()).is_err() {
                        return 0u16;
                    }
                    read_framed(&mut reader, &mut line).unwrap_or(0)
                })
                .collect()
        }
    });
    let hot: Vec<u16> = tier_results[..4].iter().flatten().copied().collect();
    let quiet: Vec<u16> = tier_results[4..].iter().flatten().copied().collect();
    let hot_ok = hot.iter().filter(|&&s| s == 200).count();
    let hot_rejected = hot.iter().filter(|&&s| s == 503).count();
    let quiet_ok = quiet.iter().filter(|&&s| s == 200).count();
    let (_, tier_metrics) = get(tier_addr, "/metrics");
    let tier_rejected_total =
        metric_value(&tier_metrics, "edm_serve_tier_rejected_total{model=\"spin\",tier=\"hot\"}")
            .unwrap_or(0.0);
    println!(
        "tiers: hot {hot_ok} ok + {hot_rejected} tier-503 of {} | quiet {quiet_ok}/{} ok | \
         tier_rejected_total {tier_rejected_total:.0}",
        hot.len(),
        quiet.len()
    );
    let tier_isolation = hot_rejected >= 1
        && quiet_ok == quiet.len()
        && hot_ok >= 1
        && hot_ok + hot_rejected == hot.len();
    claims.push(edm_bench::claim(
        "a quota'd hot model sheds load with tier 503s while the untiered model serves fully",
        tier_isolation,
    ));
    tier_server.shutdown();

    // --- backpressure under queue-full load ------------------------
    edm_bench::header("backpressure: 1 worker, 1 queue slot");
    let mut slow_reg = ModelRegistry::new();
    let spin_iters = if quick { 2_000_000 } else { 8_000_000 };
    slow_reg.register("spin", SpinPredictor { spin_iters }).expect("register spin");
    let slow_server = Server::start(
        "127.0.0.1:0",
        slow_reg,
        ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() },
    )
    .expect("bind backpressure server");
    let slow_addr = slow_server.local_addr();
    let slow_request = format!(
        "POST /v1/models/spin:predict HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{spin_body}",
        spin_body.len()
    );
    let burst_results = fan_out(burst, |_| {
        let (status, _, _, _) = exchange(slow_addr, &slow_request);
        status
    });
    let served_count = burst_results.iter().filter(|&&s| s == 200).count();
    let rejected_503 = burst_results.iter().filter(|&&s| s == 503).count();
    let other = burst - served_count - rejected_503;
    println!(
        "burst of {burst}: {served_count} served, {rejected_503} rejected with 503, {other} other"
    );
    claims.push(edm_bench::claim(
        "overload overflow is refused with 503, not hung or dropped",
        rejected_503 >= 1 && other == 0,
    ));
    claims.push(edm_bench::claim(
        "the saturated server still serves (worker + queue drain)",
        served_count >= 2,
    ));
    slow_server.shutdown();

    // The 5x acceptance claim is meaningful on the full run only; quick
    // mode still records the measured speedup. The headline is the best
    // closed-loop number: strict (one in flight) or pipelined.
    let speedup_target_met = best_speedup >= 5.0;
    claims.push(edm_bench::claim(
        "keep-alive + micro-batching sustain >= 5x the PR7 connection-per-request baseline",
        speedup_target_met || quick,
    ));

    // --- manifest --------------------------------------------------
    use std::fmt::Write as _;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"config\": {{\"d\": {DIM}, \"batch_rows\": {BATCH}, \"clients\": {CLIENTS}, \
         \"keepalive_requests\": {ka_total}, \"legacy_requests\": {legacy_requests}, \
         \"burst\": {burst}, \"quick\": {quick}, \"host_cores\": {}}},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(j, "  \"baseline\": {{\"pr7_sustained_rps\": {PR7_BASELINE_RPS}}},");
    let _ = writeln!(j, "  \"closed_loop\": {{");
    let _ = writeln!(j, "    \"keepalive\": {{");
    let _ = writeln!(j, "      \"sustained_rps\": {sustained_rps:.1},");
    let _ = writeln!(j, "      \"rows_per_s\": {rows_per_s:.1},");
    let _ = writeln!(j, "      \"p50_latency_ms\": {p50_ms:.3},");
    let _ = writeln!(j, "      \"p99_latency_ms\": {p99_ms:.3},");
    let _ = writeln!(j, "      \"completed\": {ka_ok},");
    let _ = writeln!(j, "      \"speedup_vs_pr7\": {speedup:.2}");
    let _ = writeln!(j, "    }},");
    let _ = writeln!(j, "    \"pipelined_keepalive\": {{");
    let _ = writeln!(j, "      \"window\": {PIPELINE_WINDOW},");
    let _ = writeln!(j, "      \"connections\": {pipe_conns},");
    let _ = writeln!(j, "      \"sustained_rps\": {pipelined_rps:.1},");
    let _ = writeln!(j, "      \"rows_per_s\": {:.1},", pipelined_rps * BATCH as f64);
    let _ = writeln!(j, "      \"completed\": {pipe_ok},");
    let _ = writeln!(j, "      \"speedup_vs_pr7\": {pipe_speedup:.2}");
    let _ = writeln!(j, "    }},");
    let _ = writeln!(j, "    \"legacy_connection_per_request\": {{");
    let _ = writeln!(j, "      \"sustained_rps\": {legacy_rps:.1},");
    let _ = writeln!(j, "      \"connect_p50_ms\": {connect_p50:.3},");
    let _ = writeln!(j, "      \"connect_p99_ms\": {connect_p99:.3},");
    let _ = writeln!(j, "      \"request_p50_ms\": {req_p50:.3},");
    let _ = writeln!(j, "      \"request_p99_ms\": {req_p99:.3},");
    let _ = writeln!(j, "      \"completed\": {legacy_ok}");
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"open_loop\": {{");
    let _ = writeln!(j, "    \"sweep\": [");
    for (i, s) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"delivered\": {}, \
             \"sent\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            s.offered_rps, s.achieved_rps, s.delivered, s.sent, s.p50_ms, s.p99_ms
        );
    }
    let _ = writeln!(j, "    ],");
    let _ = writeln!(j, "    \"knee_rps\": {knee_rps:.1},");
    let _ = writeln!(j, "    \"knee_criterion\": \"achieved >= 0.95 * offered\"");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"batching\": {{");
    let _ = writeln!(j, "    \"flushes\": {flushes_total:.0},");
    let _ = writeln!(j, "    \"coalesced_batches\": {coalesced_batches:.0},");
    let _ = writeln!(j, "    \"coalesced_requests\": {coalesced_requests:.0},");
    let _ = writeln!(j, "    \"batch_rows_max\": {batch_rows_max:.0},");
    let _ = writeln!(j, "    \"trace_flush_probe_seen\": {trace_has_flush_probe}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"tiers\": {{");
    let _ = writeln!(j, "    \"hot_requests\": {},", hot.len());
    let _ = writeln!(j, "    \"hot_ok\": {hot_ok},");
    let _ = writeln!(j, "    \"hot_rejected_503\": {hot_rejected},");
    let _ = writeln!(j, "    \"quiet_requests\": {},", quiet.len());
    let _ = writeln!(j, "    \"quiet_ok\": {quiet_ok},");
    let _ = writeln!(j, "    \"tier_rejected_total\": {tier_rejected_total:.0}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"telemetry\": {{");
    let _ = writeln!(j, "    \"client_p50_ms\": {p50_ms:.3},");
    let _ = writeln!(j, "    \"client_p99_ms\": {p99_ms:.3},");
    let _ = writeln!(j, "    \"server_p50_ms\": {server_p50_ms:.3},");
    let _ = writeln!(j, "    \"server_p99_ms\": {server_p99_ms:.3},");
    let _ = writeln!(j, "    \"server_latency_count\": {server_count:.0},");
    let _ = writeln!(j, "    \"mid_run_scrape_ok\": {mid_run_scrape_ok},");
    let _ = writeln!(j, "    \"latency_cross_check\": {latency_cross_check},");
    let _ = writeln!(j, "    \"trace_endpoint_ok\": {trace_endpoint_ok}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"backpressure\": {{");
    let _ = writeln!(j, "    \"burst\": {burst},");
    let _ = writeln!(j, "    \"served\": {served_count},");
    let _ = writeln!(j, "    \"rejected_503\": {rejected_503},");
    let _ = writeln!(j, "    \"unexpected_statuses\": {other}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"claims\": {{");
    let _ = writeln!(j, "    \"bitwise_identical_over_http\": {bitwise},");
    let _ = writeln!(j, "    \"openmetrics_eof_framing\": {openmetrics_ok},");
    let _ = writeln!(j, "    \"backpressure_503_seen\": {},", rejected_503 >= 1);
    let _ = writeln!(j, "    \"open_loop_knee_found\": {knee_found},");
    let _ = writeln!(j, "    \"coalescing_observed\": {coalescing_observed},");
    let _ = writeln!(j, "    \"tier_isolation_observed\": {tier_isolation},");
    let _ = writeln!(j, "    \"keepalive_speedup_x\": {best_speedup:.2},");
    let _ = writeln!(j, "    \"keepalive_5x_vs_pr7\": {speedup_target_met},");
    let _ = writeln!(
        j,
        "    \"note\": \"closed-loop keep-alive load from {CLIENTS} persistent connections; \
         keepalive_speedup_x is the best closed-loop rps (strict or pipelined window \
         {PIPELINE_WINDOW}) over the PR7 baseline; keep-alive latency excludes connect \
         (reported separately under legacy_connection_per_request); open-loop latency \
         measured from scheduled send time\""
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    std::fs::write("BENCH_serve.json", &j).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    edm_bench::emit_trace("bench_serve", 3);
    edm_bench::finish(&claims);
}
