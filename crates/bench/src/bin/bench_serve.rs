//! Load harness for the `edm-serve` scoring service. Emits
//! `BENCH_serve.json` in the working directory.
//!
//! Measurements against a live server on an ephemeral loopback port:
//!
//! * sustained scoring throughput and p50/p99 end-to-end latency,
//!   driven by concurrent closed-loop clients (`edm_par::map_indexed`
//!   fan-out — one connection per request, as the protocol dictates);
//! * a correctness probe: predictions served over HTTP are bitwise
//!   identical to the in-process `predict_batch` path;
//! * deterministic queue-full backpressure: a one-worker, one-slot
//!   server under a client burst must answer `503` (never hang) for
//!   the overflow, and every request must get *some* response;
//! * `/metrics` is valid OpenMetrics text ending in `# EOF`, scraped
//!   **mid-run** to prove the labeled per-model series are live, and
//!   the server-side `predict × svc` latency series is cross-checked
//!   against the client-observed percentiles (server-side handling
//!   must be positive and below the client's connect-inclusive p50,
//!   within tolerance);
//! * `/v1/trace` returns a live trace report that our own JSON parser
//!   accepts.
//!
//! `--quick` shrinks the request counts for CI smoke use.

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use edm::prelude::*;
use edm_serve::json::{self, Value};
use edm_serve::{ModelRegistry, Server, ServerConfig};

const DIM: usize = 8;
const TRAIN_N: usize = 240;
/// Rows per scoring request.
const BATCH: usize = 16;
/// Concurrent closed-loop clients in the throughput phase.
const CLIENTS: usize = 8;

/// Deterministic SplitMix64 stream.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut m = Mix(seed);
    (0..n).map(|_| (0..d).map(|_| m.next_f64()).collect()).collect()
}

/// Two separable blobs with ±1 labels.
fn blobs(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = points(seed, n, DIM);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.3;
        }
    }
    (x, y)
}

fn predict_body(rows: &[Vec<f64>]) -> String {
    let inputs = Value::Array(
        rows.iter().map(|r| Value::Array(r.iter().map(|&v| Value::Number(v)).collect())).collect(),
    );
    Value::Object(vec![("inputs".to_string(), inputs)]).encode()
}

/// One full HTTP exchange; returns `(status, body, latency_ns)`.
/// Socket failures come back as status 0 so a load phase never
/// panics mid-measurement — the claims catch any non-200/503 status.
fn exchange(addr: SocketAddr, request: &str) -> (u16, String, u64) {
    let t0 = Instant::now();
    let run = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(request.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    };
    let response = match run() {
        Ok(r) => r,
        Err(_) => return (0, String::new(), t0.elapsed().as_nanos() as u64),
    };
    let latency_ns = t0.elapsed().as_nanos() as u64;
    let status = response.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map_or(String::new(), |(_, b)| b.to_string());
    (status, body, latency_ns)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, u64) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, u64) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Value of the first exposition line starting with `prefix`
/// (`name{labels} value`), if any.
fn metric_value(body: &str, prefix: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// A deliberately slow predictor (deterministic spin) so the
/// backpressure phase can saturate a one-worker server.
struct SpinPredictor {
    spin_iters: u64,
}

impl Predictor for SpinPredictor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        let mut acc = 0.0f64;
        for i in 0..self.spin_iters {
            acc += (i as f64).sqrt();
        }
        Ok(vec![acc.fract(); xs.len()])
    }

    fn n_features(&self) -> usize {
        DIM
    }

    fn name(&self) -> &'static str {
        "spin"
    }
}

fn main() {
    edm_bench::init_trace();
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 120 } else { 1200 };
    let burst = if quick { 32 } else { 96 };
    let mut claims = Vec::new();

    edm_bench::header("edm-serve scoring service");
    println!(
        "d = {DIM}, batch = {BATCH} rows/request, clients = {CLIENTS}, requests = {requests}, \
         quick = {quick}"
    );

    // --- throughput + latency against real models ------------------
    let (x, y) = blobs(3, TRAIN_N);
    let svc = SvcTrainer::new(SvcParams::default())
        .kernel(RbfKernel::new(0.4))
        .fit(&x, &y)
        .expect("separable blobs train");
    let ridge = Ridge::fit(&x, &y, 0.1).expect("ridge fits");
    let queries = points(11, BATCH, DIM);
    let expected = svc.predict_batch(&queries);

    let mut reg = ModelRegistry::new();
    reg.register("svc", svc).expect("register svc");
    reg.register("ridge", ridge).expect("register ridge");
    let server = Server::start("127.0.0.1:0", reg, ServerConfig::default())
        .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let body = predict_body(&queries);
    let request = format!(
        "POST /v1/models/svc:predict HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );

    // Wire-format correctness probe before any load.
    let (status, resp_body, _) = post(addr, "/v1/models/svc:predict", &body);
    let served: Vec<f64> = json::parse(&resp_body)
        .ok()
        .and_then(|doc| {
            doc.get("predictions")
                .and_then(Value::as_array)
                .map(|preds| preds.iter().filter_map(Value::as_f64).collect())
        })
        .unwrap_or_default();
    let bitwise = status == 200
        && served.len() == expected.len()
        && served.iter().zip(&expected).all(|(s, e)| s.to_bits() == e.to_bits());
    claims.push(edm_bench::claim(
        "HTTP predictions are bitwise equal to in-process scoring",
        bitwise,
    ));

    // Warmup, then the measured closed-loop fan-out — in two halves,
    // with a /metrics scrape between them so the labeled per-model
    // series are proven live *mid-run*, not just post-mortem.
    for _ in 0..CLIENTS {
        let (s, _, _) = exchange(addr, &request);
        assert_eq!(s, 200, "warmup request failed");
    }
    std::env::set_var("EDM_NUM_THREADS", CLIENTS.to_string());
    let half = requests / 2;
    let t0 = Instant::now();
    let mut results = edm_par::map_indexed(half, |_| {
        let (status, _, latency_ns) = exchange(addr, &request);
        (status, latency_ns)
    });
    let first_half_s = t0.elapsed().as_secs_f64();
    let (mid_status, mid_metrics, _) = get(addr, "/metrics");
    let mid_count = metric_value(
        &mid_metrics,
        "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"200\"}",
    )
    .unwrap_or(0.0);
    let mid_window_p50 = metric_value(
        &mid_metrics,
        "edm_serve_latency_quantile_ms{endpoint=\"predict\",model=\"svc\",window=\"60s\",quantile=\"0.5\"}",
    );
    let mid_run_scrape_ok =
        mid_status == 200 && mid_count >= half as f64 && mid_window_p50.is_some_and(|v| v > 0.0);
    println!(
        "mid-run /metrics: status {mid_status}, predict×svc 200s = {mid_count:.0}, \
         rolling-window p50 = {:?} ms",
        mid_window_p50
    );
    let t1 = Instant::now();
    results.extend(edm_par::map_indexed(requests - half, |_| {
        let (status, _, latency_ns) = exchange(addr, &request);
        (status, latency_ns)
    }));
    let wall_s = first_half_s + t1.elapsed().as_secs_f64();

    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let mut latencies_ms: Vec<f64> = results.iter().map(|(_, ns)| *ns as f64 / 1e6).collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let sustained_rps = requests as f64 / wall_s;
    let p50_ms = percentile(&latencies_ms, 0.50);
    let p99_ms = percentile(&latencies_ms, 0.99);
    println!(
        "throughput: {ok}/{requests} ok | {sustained_rps:9.1} req/s sustained | \
         p50 {p50_ms:7.3} ms | p99 {p99_ms:7.3} ms"
    );
    claims.push(edm_bench::claim(
        "every load request scored (no drops at default queue depth)",
        ok == requests,
    ));
    claims.push(edm_bench::claim(
        "sustained throughput is positive and finite",
        sustained_rps.is_finite() && sustained_rps > 0.0,
    ));

    // Rows-per-second through the model for scale: each request
    // carries BATCH rows.
    let rows_per_s = sustained_rps * BATCH as f64;

    let (metrics_status, metrics_body, _) = get(addr, "/metrics");
    let openmetrics_ok = metrics_status == 200 && metrics_body.ends_with("# EOF\n");
    claims.push(edm_bench::claim("/metrics is OpenMetrics text ending in # EOF", openmetrics_ok));
    claims.push(edm_bench::claim(
        "mid-run /metrics exposed live labeled predict×svc series",
        mid_run_scrape_ok,
    ));

    // Cross-check the server-side latency series against the client's
    // own measurements. The server times request handling only (after
    // accept), so its p50 must be positive and must not exceed the
    // client's connect-inclusive p50 beyond decilog-bucket tolerance
    // (one ~26% bucket edge) plus scheduling slack.
    let svc_series = "edm_serve_latency_quantile_ms{endpoint=\"predict\",model=\"svc\"";
    let server_p50_ms = metric_value(
        &metrics_body,
        &format!("{svc_series},window=\"lifetime\",quantile=\"0.5\"}}"),
    )
    .unwrap_or(0.0);
    let server_p99_ms = metric_value(
        &metrics_body,
        &format!("{svc_series},window=\"lifetime\",quantile=\"0.99\"}}"),
    )
    .unwrap_or(0.0);
    let window_p50_ms =
        metric_value(&metrics_body, &format!("{svc_series},window=\"60s\",quantile=\"0.5\"}}"))
            .unwrap_or(0.0);
    let server_count = metric_value(
        &metrics_body,
        "edm_serve_request_latency_ns_count{endpoint=\"predict\",model=\"svc\"}",
    )
    .unwrap_or(0.0);
    let latency_cross_check = server_p50_ms > 0.0
        && server_p50_ms <= p50_ms * 1.26 + 1.0
        && server_count >= requests as f64;
    println!(
        "latency cross-check: server p50 {server_p50_ms:.3} ms (window {window_p50_ms:.3}) vs \
         client p50 {p50_ms:.3} ms | server series count {server_count:.0}"
    );
    claims.push(edm_bench::claim(
        "server-side per-model latency agrees with client measurements (within tolerance)",
        latency_cross_check,
    ));

    let (trace_status, trace_body, _) = get(addr, "/v1/trace");
    let trace_endpoint_ok = trace_status == 200
        && json::parse(&trace_body).ok().is_some_and(|doc| doc.get("level").is_some());
    claims.push(edm_bench::claim(
        "/v1/trace returns a live report our own JSON parser accepts",
        trace_endpoint_ok,
    ));
    let (models_status, _, _) = get(addr, "/v1/models");
    claims.push(edm_bench::claim("/v1/models answers 200 under no load", models_status == 200));
    server.shutdown();

    // --- backpressure under queue-full load ------------------------
    edm_bench::header("backpressure: 1 worker, 1 queue slot");
    let mut slow_reg = ModelRegistry::new();
    let spin_iters = if quick { 2_000_000 } else { 8_000_000 };
    slow_reg.register("spin", SpinPredictor { spin_iters }).expect("register spin");
    let slow_server = Server::start(
        "127.0.0.1:0",
        slow_reg,
        ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() },
    )
    .expect("bind backpressure server");
    let slow_addr = slow_server.local_addr();
    let slow_body = predict_body(&queries[..1]);
    let slow_request = format!(
        "POST /v1/models/spin:predict HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{slow_body}",
        slow_body.len()
    );
    let burst_results = edm_par::map_indexed(burst, |_| {
        let (status, _, _) = exchange(slow_addr, &slow_request);
        status
    });
    let served_count = burst_results.iter().filter(|&&s| s == 200).count();
    let rejected_503 = burst_results.iter().filter(|&&s| s == 503).count();
    let other = burst - served_count - rejected_503;
    println!(
        "burst of {burst}: {served_count} served, {rejected_503} rejected with 503, {other} other"
    );
    claims.push(edm_bench::claim(
        "overload overflow is refused with 503, not hung or dropped",
        rejected_503 >= 1 && other == 0,
    ));
    claims.push(edm_bench::claim(
        "the saturated server still serves (worker + queue drain)",
        served_count >= 2,
    ));
    slow_server.shutdown();

    // --- manifest --------------------------------------------------
    use std::fmt::Write as _;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"config\": {{\"d\": {DIM}, \"batch_rows\": {BATCH}, \"clients\": {CLIENTS}, \
         \"requests\": {requests}, \"burst\": {burst}, \"quick\": {quick}, \
         \"host_cores\": {}}},",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    let _ = writeln!(j, "  \"throughput\": {{");
    let _ = writeln!(j, "    \"sustained_rps\": {sustained_rps:.1},");
    let _ = writeln!(j, "    \"rows_per_s\": {rows_per_s:.1},");
    let _ = writeln!(j, "    \"p50_latency_ms\": {p50_ms:.3},");
    let _ = writeln!(j, "    \"p99_latency_ms\": {p99_ms:.3},");
    let _ = writeln!(j, "    \"completed\": {ok}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"telemetry\": {{");
    let _ = writeln!(j, "    \"client_p50_ms\": {p50_ms:.3},");
    let _ = writeln!(j, "    \"client_p99_ms\": {p99_ms:.3},");
    let _ = writeln!(j, "    \"server_p50_ms\": {server_p50_ms:.3},");
    let _ = writeln!(j, "    \"server_p99_ms\": {server_p99_ms:.3},");
    let _ = writeln!(j, "    \"server_window_p50_ms\": {window_p50_ms:.3},");
    let _ = writeln!(j, "    \"server_latency_count\": {server_count:.0},");
    let _ = writeln!(j, "    \"mid_run_scrape_ok\": {mid_run_scrape_ok},");
    let _ = writeln!(j, "    \"latency_cross_check\": {latency_cross_check},");
    let _ = writeln!(j, "    \"trace_endpoint_ok\": {trace_endpoint_ok}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"backpressure\": {{");
    let _ = writeln!(j, "    \"burst\": {burst},");
    let _ = writeln!(j, "    \"served\": {served_count},");
    let _ = writeln!(j, "    \"rejected_503\": {rejected_503},");
    let _ = writeln!(j, "    \"unexpected_statuses\": {other}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"claims\": {{");
    let _ = writeln!(j, "    \"bitwise_identical_over_http\": {bitwise},");
    let _ = writeln!(j, "    \"openmetrics_eof_framing\": {openmetrics_ok},");
    let _ = writeln!(j, "    \"backpressure_503_seen\": {},", rejected_503 >= 1);
    let _ = writeln!(
        j,
        "    \"note\": \"closed-loop loopback load from {CLIENTS} concurrent clients; \
         latency includes connect + request + score + response on this host\""
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    std::fs::write("BENCH_serve.json", &j).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    edm_bench::emit_trace("bench_serve", 3);
    edm_bench::finish(&claims);
}
