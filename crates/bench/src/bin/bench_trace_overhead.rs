//! Overhead proof for the `edm-trace` telemetry layer. Emits
//! `BENCH_trace_overhead.json` in the working directory.
//!
//! Two properties are checked, because telemetry is only acceptable if
//! it is free when idle and invisible when active:
//!
//! * **Disabled cost ≤ 2%.** With `EDM_TRACE=off` every probe reduces
//!   to one relaxed atomic load. The harness microbenchmarks that
//!   check, counts how many probe checks one SVC training run actually
//!   fires (from a `full`-level registry snapshot of the same
//!   workload), and bounds the disabled-path overhead as
//!   `checks × check_ns / train_ns`. Wall-clock medians at `off` vs
//!   `full` are also recorded, but the estimate is the claim: the
//!   delta of two medians of a millisecond-scale run is noisier than
//!   the nanosecond-scale quantity being proven.
//! * **Ring-buffer-on cost ≤ 2%.** At `EDM_TRACE=full` every span
//!   begin/end and counter flush also pushes a timestamped event into
//!   the bounded per-thread ring. The harness microbenchmarks one ring
//!   event, counts how many events a training run actually attempts
//!   (timeline length + dropped), and bounds the full-path ring cost
//!   as `events × event_ns / train_ns`.
//! * **Bitwise-identical results.** Training SVC and k-means at
//!   `full` must produce exactly the models produced at `off` —
//!   probes observe, they never perturb. Models are compared through
//!   bit-pattern fingerprints (FNV-1a over `f64::to_bits`), not an
//!   epsilon.

use std::hint::black_box;
use std::time::Instant;

use edm_bench::{claim, finish, header};
use edm_kernels::RbfKernel;
use edm_svm::{SvcModel, SvcParams, SvcTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const SEED: u64 = 42;
const N: usize = 1200;
const DIM: usize = 16;
const GAMMA: f64 = 0.25;
/// Timed repetitions per level (median reported).
const RUNS: usize = 5;
/// Iterations of the disabled-probe microbenchmark.
const CHECK_ITERS: u64 = 10_000_000;

/// Deterministic SplitMix64 stream.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

/// Two shifted blobs with alternating ±1 labels.
fn blobs(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut m = Mix(SEED);
    let mut x: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| m.next_f64()).collect()).collect();
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.0;
        }
    }
    (x, y)
}

fn fnv(h: u64, bits: u64) -> u64 {
    (h ^ bits).wrapping_mul(0x100_0000_01b3)
}

/// Bit-pattern fingerprint of everything the model exposes: rho,
/// support vectors, and the decision function on a probe grid. Equal
/// fingerprints mean the optimizer walked the identical trajectory.
fn svc_fingerprint(m: &SvcModel<RbfKernel>, probes: &[Vec<f64>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv(h, m.rho().to_bits());
    h = fnv(h, m.n_support() as u64);
    h = fnv(h, m.iterations() as u64);
    for sv in m.support_vectors() {
        for v in sv {
            h = fnv(h, v.to_bits());
        }
    }
    for p in probes {
        h = fnv(h, m.decision_function(p).to_bits());
    }
    h
}

/// Median wall time of `RUNS` executions in milliseconds (after one
/// untimed warmup), plus the last result.
fn time_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    drop(f());
    let mut times = Vec::with_capacity(RUNS);
    let mut last = None;
    for _ in 0..RUNS {
        drop(last.take());
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[times.len() / 2], last.expect("RUNS > 0"))
}

/// Nanoseconds per disabled-probe check (`edm_trace::enabled()` under
/// `EDM_TRACE=off` — one relaxed atomic load plus branch).
fn disabled_check_ns() -> f64 {
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..CHECK_ITERS {
        if black_box(edm_trace::enabled()) {
            hits += 1;
        }
    }
    black_box(hits);
    t0.elapsed().as_secs_f64() * 1e9 / CHECK_ITERS as f64
}

/// Iterations of the ring-event microbenchmark (each iteration is one
/// span activation = two ring events).
const RING_ITERS: u64 = 200_000;

/// Nanoseconds per ring event at `EDM_TRACE=full`: aggregate span
/// update plus the bounded drop-oldest ring push. Must be called with
/// the level already at `Full`.
fn ring_event_ns() -> f64 {
    let t0 = Instant::now();
    for _ in 0..RING_ITERS {
        black_box(edm_trace::span("bench.ring.span"));
    }
    t0.elapsed().as_secs_f64() * 1e9 / (2.0 * RING_ITERS as f64)
}

#[derive(Debug, Serialize, Deserialize)]
struct OverheadReport {
    workload: Workload,
    disabled_path: DisabledPath,
    ring_path: RingPath,
    timings: Timings,
    bitwise: Bitwise,
    claims: Claims,
}

#[derive(Debug, Serialize, Deserialize)]
struct Workload {
    n: usize,
    d: usize,
    gamma: f64,
    seed: u64,
    trace_compiled: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct DisabledPath {
    check_ns: f64,
    probe_checks_per_train: u64,
    train_off_ms: f64,
    est_overhead_pct: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct RingPath {
    event_ns: f64,
    ring_events_per_train: u64,
    ring_capacity: usize,
    dropped_events: u64,
    est_overhead_pct: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Timings {
    train_off_ms: f64,
    train_full_ms: f64,
    full_minus_off_pct: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Bitwise {
    svc_identical: bool,
    kmeans_identical: bool,
    svc_iterations: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct Claims {
    disabled_overhead_le_2pct: bool,
    ring_overhead_le_2pct: bool,
    results_bitwise_identical: bool,
}

fn main() {
    edm_bench::init_trace();
    header("trace overhead: disabled-path cost and bitwise invariance");
    let (x, y) = blobs(N, DIM);
    let probes: Vec<Vec<f64>> = {
        let mut m = Mix(SEED ^ 0xdead_beef);
        (0..64).map(|_| (0..DIM).map(|_| m.next_f64()).collect()).collect()
    };
    let trainer = SvcTrainer::new(SvcParams::default().with_c(1.0)).kernel(RbfKernel::new(GAMMA));
    let kmeans_pts: Vec<Vec<f64>> = x.iter().take(300).cloned().collect();
    let train_svc = || trainer.fit(&x, &y).expect("separable blobs");
    let train_kmeans = || {
        edm_cluster::kmeans::kmeans(&kmeans_pts, 4, 100, &mut StdRng::seed_from_u64(SEED))
            .expect("valid k-means input")
    };

    // --- Bitwise invariance: off vs full ----------------------------
    edm_trace::set_level(edm_trace::Level::Off);
    let fp_off = svc_fingerprint(&train_svc(), &probes);
    let km_off = train_kmeans();
    edm_trace::set_level(edm_trace::Level::Full);
    edm_trace::reset();
    let model_full = train_svc();
    let fp_full = svc_fingerprint(&model_full, &probes);
    let km_full = train_kmeans();
    let svc_identical = fp_off == fp_full;
    let kmeans_identical = km_off == km_full;
    println!(
        "svc fingerprint off = {fp_off:#018x}, full = {fp_full:#018x} ({})",
        if svc_identical { "identical" } else { "DIVERGED" }
    );
    println!("k-means off vs full: {}", if kmeans_identical { "identical" } else { "DIVERGED" });

    // --- Probe census at full level ---------------------------------
    // One train ran since reset; its registry snapshot counts every
    // probe that fired: span activations, histogram samples (the
    // per-iteration KKT-gap probe dominates), and counter flushes.
    let report = edm_trace::collect();
    let spans: u64 = report.spans.iter().map(|s| s.count).sum();
    let hist_samples: u64 = report.histograms.iter().map(|h| h.count).sum();
    let counter_flushes = report.counters.len() as u64;
    let probe_checks = spans + hist_samples + counter_flushes;
    // Ring events the same train attempted: everything still in the
    // per-thread rings plus everything evicted by drop-oldest.
    let ring_events = report.timeline.len() as u64 + report.dropped_events;

    // --- Timings ----------------------------------------------------
    edm_trace::set_level(edm_trace::Level::Off);
    let (train_off_ms, _) = time_ms(train_svc);
    edm_trace::set_level(edm_trace::Level::Full);
    let (train_full_ms, _) = time_ms(train_svc);
    let check_ns = {
        edm_trace::set_level(edm_trace::Level::Off);
        disabled_check_ns()
    };
    let est_overhead_pct = 100.0 * (probe_checks as f64 * check_ns) / (train_off_ms * 1e6);
    let full_minus_off_pct = 100.0 * (train_full_ms - train_off_ms) / train_off_ms;
    // Ring microbenchmark runs at full, then the registry is reset so
    // the run manifest below reflects real training work only.
    edm_trace::set_level(edm_trace::Level::Full);
    let event_ns = ring_event_ns();
    edm_trace::reset();
    let est_ring_overhead_pct = 100.0 * (ring_events as f64 * event_ns) / (train_off_ms * 1e6);
    println!("disabled probe check: {check_ns:.2} ns");
    println!("probe checks per train: {probe_checks} (spans {spans}, histogram samples {hist_samples}, counter flushes {counter_flushes})");
    println!(
        "ring event: {event_ns:.2} ns | events per train: {ring_events} ({} retained, {} dropped, cap {})",
        report.timeline.len(),
        report.dropped_events,
        edm_trace::event_capacity(),
    );
    println!("svc train: off {train_off_ms:.2} ms | full {train_full_ms:.2} ms ({full_minus_off_pct:+.2}%)");
    println!("estimated disabled-path overhead: {est_overhead_pct:.4}%");
    println!("estimated ring-buffer-on overhead: {est_ring_overhead_pct:.4}%");

    let report_out = OverheadReport {
        workload: Workload {
            n: N,
            d: DIM,
            gamma: GAMMA,
            seed: SEED,
            trace_compiled: edm_trace::compiled(),
        },
        disabled_path: DisabledPath {
            check_ns,
            probe_checks_per_train: probe_checks,
            train_off_ms,
            est_overhead_pct,
        },
        ring_path: RingPath {
            event_ns,
            ring_events_per_train: ring_events,
            ring_capacity: edm_trace::event_capacity(),
            dropped_events: report.dropped_events,
            est_overhead_pct: est_ring_overhead_pct,
        },
        timings: Timings { train_off_ms, train_full_ms, full_minus_off_pct },
        bitwise: Bitwise {
            svc_identical,
            kmeans_identical,
            svc_iterations: model_full.iterations(),
        },
        claims: Claims {
            disabled_overhead_le_2pct: est_overhead_pct <= 2.0,
            ring_overhead_le_2pct: est_ring_overhead_pct <= 2.0,
            results_bitwise_identical: svc_identical && kmeans_identical,
        },
    };
    let json = serde_json::to_string(&report_out).expect("report serializes");
    std::fs::write("BENCH_trace_overhead.json", json).expect("write BENCH_trace_overhead.json");
    println!("\nwrote BENCH_trace_overhead.json");

    // Re-arm full level and run one more train so the manifest (and
    // its Chrome trace) reflects real training work, not the ring
    // microbenchmark.
    edm_trace::set_level(edm_trace::Level::Full);
    drop(black_box(train_svc()));
    let claims = vec![
        claim("disabled-path overhead is <= 2%", est_overhead_pct <= 2.0),
        claim("ring-buffer-on overhead is <= 2%", est_ring_overhead_pct <= 2.0),
        claim(
            "tracing never changes numerical results (bitwise)",
            svc_identical && kmeans_identical,
        ),
    ];
    edm_bench::emit_trace("bench_trace_overhead", SEED);
    finish(&claims);
}
