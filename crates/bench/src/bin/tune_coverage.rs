//! Diagnostic: coverage profile of the constrained-random templates.
//!
//! Prints, for the Table 1 "original" template and a heavily refined
//! variant, (a) total per-point hit counts, (b) how many tests hit each
//! point at least once, and (c) how many tests it takes to *first* hit
//! each point under the Fig. 7 deep-store-buffer unit. This is the tool
//! used to tune `TestTemplate::default` so the original row has the
//! paper's shape (A0/A1 covered, the rest ≈ 0) and to size the Fig. 7
//! stream.

use edm_verif::coverage::{CoverageMap, CoveragePoint};
use edm_verif::lsu::{LsuConfig, LsuSimulator};
use edm_verif::template::TestTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile(name: &str, t: &TestTemplate, n: usize, seed: u64) {
    let sim = LsuSimulator::default_config();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = CoverageMap::new();
    let mut tests_hitting = [0usize; 8];
    for _ in 0..n {
        let out = sim.simulate(&t.generate(&mut rng));
        total.merge(&out.coverage);
        for pt in CoveragePoint::ALL {
            if out.coverage.covered(pt) {
                tests_hitting[pt.index()] += 1;
            }
        }
    }
    println!("{name}: counts {total}");
    print!("{name}: tests-hitting");
    for (i, h) in tests_hitting.iter().enumerate() {
        print!(" A{i}={h}");
    }
    println!();
}

/// How many tests until each point is first hit, on a given unit.
fn first_hit(name: &str, t: &TestTemplate, n: usize, seed: u64, sim: &LsuSimulator) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut first = [None::<usize>; 8];
    for i in 0..n {
        let out = sim.simulate(&t.generate(&mut rng));
        for pt in CoveragePoint::ALL {
            if out.coverage.covered(pt) && first[pt.index()].is_none() {
                first[pt.index()] = Some(i + 1);
            }
        }
    }
    print!("{name}: first-hit");
    for (i, f) in first.iter().enumerate() {
        match f {
            Some(v) => print!(" A{i}={v}"),
            None => print!(" A{i}=never"),
        }
    }
    println!();
}

fn main() {
    edm_bench::init_trace();
    // (a)/(b): the Table 1 shape — the default template leaves A2..A7
    // at or near zero over 400 tests; the refined knobs cover them all.
    let orig = TestTemplate::default();
    edm_bench::phase("tune.profile.orig", || profile("orig(400)", &orig, 400, 1));
    let mut refined = TestTemplate::default();
    refined.boost_reuse(0.25);
    refined.boost_stores(0.25);
    refined.boost_subword(0.35);
    refined.boost_unaligned(0.35);
    refined.boost_mem_burst(0.5);
    refined.reduce_locality(0.2);
    edm_bench::phase("tune.profile.refined", || profile("refined(100)", &refined, 100, 2));

    // (c): the Fig. 7 regime — with a 6-deep store buffer the
    // buffer-full point takes thousands of default-template tests.
    let deep = LsuSimulator::new(LsuConfig { store_buffer_depth: 6, ..Default::default() });
    edm_bench::phase("tune.first_hit", || {
        for seed in [3, 4, 5] {
            first_hit(&format!("deep6 seed{seed}"), &orig, 12_000, seed, &deep);
        }
    });
    edm_bench::emit_trace("tune_coverage", 1);
}
