//! Paper §1 / ref \[3\] — the PAC escape hatch: learning a 3-term-DNF-
//! style Boolean function is NP-hard *if* you demand simultaneous
//! guarantees on success probability and error (the PAC model), but
//! "if one only seeks good results without guarantee, learning a Boolean
//! function with a high percentage of accuracy can be quite feasible."
//!
//! We sample vectors from a hidden 3-term DNF over 12 variables (the
//! "vector simulation" of ref \[3\]), train a CART tree and a random
//! forest, and measure held-out accuracy — high, but *without* any
//! guarantee, which is exactly the paper's point.

use edm_bench::{claim, finish, header, pct};
use edm_learn::forest::{ForestParams, RandomForestClassifier};
use edm_learn::tree::{DecisionTreeClassifier, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_VARS: usize = 12;

/// The hidden function: x0x1x2 + x3x4'x5 + x6x7x8'.
fn hidden_dnf(x: &[bool]) -> bool {
    (x[0] && x[1] && x[2]) || (x[3] && !x[4] && x[5]) || (x[6] && x[7] && !x[8])
}

fn sample(n: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<i32>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let bits: Vec<bool> = (0..N_VARS).map(|_| rng.gen()).collect();
        ys.push(i32::from(hidden_dnf(&bits)));
        xs.push(bits.iter().map(|&b| f64::from(u8::from(b))).collect());
    }
    (xs, ys)
}

fn main() {
    edm_bench::init_trace();
    header("ref [3]: Boolean-function learning without guarantees");
    let mut rng = StdRng::seed_from_u64(3);
    let (train_x, train_y) = sample(2_000, &mut rng);
    let (test_x, test_y) = sample(4_000, &mut rng);

    let tree = DecisionTreeClassifier::fit(
        &train_x,
        &train_y,
        TreeParams { max_depth: 14, ..Default::default() },
    )
    .expect("tree fits");
    let forest = RandomForestClassifier::fit(
        &train_x,
        &train_y,
        ForestParams {
            n_trees: 60,
            max_features: Some(N_VARS), // pure bagging: every term's literals stay visible
            tree: TreeParams { max_depth: 14, ..Default::default() },
        },
        &mut rng,
    )
    .expect("forest fits");

    let acc = |f: &dyn Fn(&[f64]) -> i32| {
        test_x.iter().zip(&test_y).filter(|(x, &y)| f(x) == y).count() as f64 / test_x.len() as f64
    };
    let tree_acc = acc(&|x| tree.predict(x));
    let forest_acc = acc(&|x| forest.predict(x));
    println!("hidden function: 3-term DNF over {N_VARS} vars; train 2000 / test 4000 vectors");
    println!("decision tree accuracy: {} ({} leaves)", pct(tree_acc), tree.n_leaves());
    println!("random forest accuracy: {}", pct(forest_acc));
    println!(
        "\n(no guarantee is claimed for any particular run — that is the paper's point: \
         drop the simultaneous PAC guarantee and the problem becomes easy in practice)"
    );

    let claims = [
        claim("a plain CART tree learns the DNF to >= 97% accuracy", tree_acc >= 0.97),
        claim("a random forest matches or beats it", forest_acc >= tree_acc - 0.01),
    ];
    edm_bench::emit_trace("ref03_boolean_learning", 3);
    finish(&claims);
}
