//! SMO convergence study: first-order (WSS1) vs second-order (WSS2)
//! working-set selection, with and without shrinking, on the paper's
//! workload substrates. Emits `BENCH_smo_convergence.json` in the
//! working directory and a `results/smo_convergence.trace.json` run
//! manifest.
//!
//! Five training workloads across the paper's application domains:
//!
//! * `svc/litho_hotspots` — Fig. 9's C-SVC over the
//!   histogram-intersection kernel on layout density histograms;
//! * `svr/mfgtest_fmax` — ref \[20\]'s ε-SVR predicting Fmax from the
//!   automotive product's other parametric tests;
//! * `one_class/verif_coverage` — Fig. 7's one-class novelty model
//!   over standardized LSU coverage signatures (coverage-point hit
//!   counts, cycles, program length) of constrained-random tests;
//! * `one_class/verif_spectrum` — the same programs under the weighted
//!   spectrum kernel's cosine Gram. Deliberately kept as a contrast
//!   row: the near-uniform Gram makes first-order selection already
//!   near-optimal, so second-order selection gains little here;
//! * `one_class/mfgtest_returns` — Fig. 11's one-class novelty model
//!   over standardized parametric measurements.
//!
//! Every workload trains under three solver configurations (WSS1,
//! WSS2, WSS2+shrinking) and records SMO iterations and wall time; the
//! harness asserts the second-order + shrinking solver needs at least
//! 2× fewer iterations than WSS1 on the Fig. 7 and Fig. 11 workloads
//! and that all configurations produce the same predictions. Batch
//! prediction throughput (scalar loop vs `predict_batch` fan-out) is
//! measured on the SVC, SVR, and one-class models with a bitwise
//! identity check.
//!
//! Pass `--quick` for a CI-sized run (smaller substrates, one timing
//! rep).

use std::time::Instant;

use edm_bench::{claim, finish, header};
use edm_kernels::{HistogramIntersectionKernel, RbfKernel, SpectrumKernel, SpectrumProfile};
use edm_linalg::Matrix;
use edm_litho::features::{density_histogram, HistogramSpec};
use edm_litho::layout::LayoutGenerator;
use edm_litho::variability::{VariabilityAnalyzer, VariabilityLabel};
use edm_mfgtest::product::ProductModel;
use edm_svm::{
    solve_one_class, OneClassModel, OneClassParams, OneClassSvm, SvcModel, SvcParams, SvcTrainer,
    SvrModel, SvrParams, SvrTrainer, WorkingSet,
};
use edm_verif::lsu::{LsuConfig, LsuSimulator};
use edm_verif::template::MixtureTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const SEED: u64 = 14;

/// One solver configuration under test.
#[derive(Clone, Copy)]
struct SolverCfg {
    label: &'static str,
    working_set: WorkingSet,
    shrinking: bool,
}

const CONFIGS: [SolverCfg; 3] = [
    SolverCfg { label: "wss1", working_set: WorkingSet::FirstOrder, shrinking: false },
    SolverCfg { label: "wss2", working_set: WorkingSet::SecondOrder, shrinking: false },
    SolverCfg { label: "wss2_shrink", working_set: WorkingSet::SecondOrder, shrinking: true },
];

#[derive(Debug, Serialize, Deserialize)]
struct ConfigResult {
    label: String,
    iterations: usize,
    train_ms: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct WorkloadResult {
    name: String,
    n_train: usize,
    configs: Vec<ConfigResult>,
    /// `iterations(wss1) / iterations(wss2_shrink)`.
    iter_reduction: f64,
    /// All configurations predict identically (up to KKT-ambiguous
    /// points on the decision boundary).
    predictions_match: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct BatchPredictResult {
    model: String,
    n_queries: usize,
    scalar_ms: f64,
    batch_ms: f64,
    speedup: f64,
    bitwise_identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct Claims {
    fig07_iter_reduction_ge_2x: bool,
    fig11_iter_reduction_ge_2x: bool,
    all_predictions_match: bool,
    batch_bitwise_identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct ConvergenceReport {
    seed: u64,
    quick: bool,
    workers: usize,
    workloads: Vec<WorkloadResult>,
    batch_predict: Vec<BatchPredictResult>,
    claims: Claims,
}

/// Median wall time of `reps` executions in milliseconds (no warmup:
/// every run retrains from scratch), plus the last result.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        drop(last.take());
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (times[times.len() / 2], last.expect("reps > 0"))
}

/// Signs agree everywhere the reference decision value is clear of the
/// KKT tolerance band (inside it, solvers stopped at different points
/// within `tol` of the optimum and the sign is genuinely ambiguous).
fn signs_agree(reference: &[f64], other: &[f64], band: f64) -> bool {
    reference
        .iter()
        .zip(other)
        .all(|(&r, &o)| r.abs() < band || o.abs() < band || (r > 0.0) == (o > 0.0))
}

fn summarize(
    name: &str,
    n_train: usize,
    configs: Vec<ConfigResult>,
    matches: bool,
) -> WorkloadResult {
    let iters =
        |label: &str| configs.iter().find(|c| c.label == label).map_or(1, |c| c.iterations.max(1));
    let reduction = iters("wss1") as f64 / iters("wss2_shrink") as f64;
    println!("  {:<28} {:>10} {:>12}", "config", "iterations", "train ms");
    for c in &configs {
        println!("  {:<28} {:>10} {:>12.2}", c.label, c.iterations, c.train_ms);
    }
    println!(
        "  iteration reduction (wss1 / wss2_shrink): {reduction:.2}x   predictions match: {matches}"
    );
    WorkloadResult {
        name: name.to_string(),
        n_train,
        configs,
        iter_reduction: reduction,
        predictions_match: matches,
    }
}

/// Fig. 9 substrate: layout clips labeled by the golden simulator,
/// C-SVC over the histogram-intersection kernel.
fn run_svc_litho(
    quick: bool,
    reps: usize,
) -> (WorkloadResult, SvcModel<HistogramIntersectionKernel>, Vec<Vec<f64>>) {
    let (n_train, n_test) = if quick { (120, 60) } else { (400, 200) };
    header("workload svc/litho_hotspots (Fig. 9)");
    let generator = LayoutGenerator::default();
    let analyzer = VariabilityAnalyzer::default();
    let spec = HistogramSpec::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let clips: Vec<_> =
        (0..n_train + n_test).map(|_| generator.generate_random(&mut rng).1).collect();
    let hists: Vec<Vec<f64>> = clips.iter().map(|c| density_histogram(c, &spec)).collect();
    let labels: Vec<f64> = clips
        .iter()
        .map(|c| if analyzer.analyze(c).label == VariabilityLabel::Bad { 1.0 } else { -1.0 })
        .collect();
    let (train_h, test_h) = hists.split_at(n_train);
    let (train_y, _) = labels.split_at(n_train);

    let mut configs = Vec::new();
    let mut decisions: Vec<Vec<f64>> = Vec::new();
    let mut model_out = None;
    for cfg in CONFIGS {
        let params = SvcParams::default()
            .with_c(10.0)
            .with_working_set(cfg.working_set)
            .with_shrinking(cfg.shrinking);
        let trainer = SvcTrainer::new(params).kernel(HistogramIntersectionKernel::new());
        let (ms, model) = time_ms(reps, || trainer.fit(train_h, train_y).expect("litho SVC fits"));
        configs.push(ConfigResult {
            label: cfg.label.to_string(),
            iterations: model.iterations(),
            train_ms: ms,
        });
        decisions.push(test_h.iter().map(|h| model.decision_function(h)).collect());
        model_out = Some(model);
    }
    let band = 10.0 * SvcParams::default().tol;
    let matches = decisions[1..].iter().all(|d| signs_agree(&decisions[0], d, band));
    let result = summarize("svc/litho_hotspots", n_train, configs, matches);
    (result, model_out.expect("three configs ran"), test_h.to_vec())
}

/// Ref \[20\] substrate: ε-SVR predicting Fmax from the automotive
/// product's other standardized parametric tests.
fn run_svr_fmax(quick: bool, reps: usize) -> (WorkloadResult, SvrModel<RbfKernel>, Vec<Vec<f64>>) {
    let (n_train, n_test) = if quick { (150, 60) } else { (600, 200) };
    header("workload svr/mfgtest_fmax (ref [20])");
    let product = ProductModel::automotive();
    let fmax_idx = product.test_index("fmax").expect("model has fmax");
    let mut rng = StdRng::seed_from_u64(SEED ^ 20);
    let devices = product.generate_lot(0, n_train + n_test, &mut rng);
    let raw: Vec<Vec<f64>> = devices
        .iter()
        .map(|d| {
            d.measurements
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != fmax_idx)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect();
    let y_all: Vec<f64> = devices.iter().map(|d| d.measurements[fmax_idx]).collect();
    let ds = edm_data::Dataset::unlabeled(raw);
    let scaler = edm_data::StandardScaler::fit(&ds);
    let x_all: Vec<Vec<f64>> = ds.rows().iter().map(|r| scaler.transform_sample(r)).collect();
    let (x_train, x_test) = x_all.split_at(n_train);
    let (y_train, _) = y_all.split_at(n_train);

    let mut configs = Vec::new();
    let mut preds: Vec<Vec<f64>> = Vec::new();
    let mut model_out = None;
    for cfg in CONFIGS {
        let params = SvrParams::default()
            .with_c(10.0)
            .with_epsilon(0.02)
            .with_working_set(cfg.working_set)
            .with_shrinking(cfg.shrinking);
        let trainer = SvrTrainer::new(params).kernel(RbfKernel::new(0.1));
        let (ms, model) = time_ms(reps, || trainer.fit(x_train, y_train).expect("fmax SVR fits"));
        configs.push(ConfigResult {
            label: cfg.label.to_string(),
            iterations: model.iterations(),
            train_ms: ms,
        });
        preds.push(x_test.iter().map(|x| model.predict(x)).collect());
        model_out = Some(model);
    }
    // Regression outputs of near-optimal duals agree to a small
    // multiple of ε; the paper's use (ranking chips by Fmax) is
    // insensitive at this scale.
    let matches =
        preds[1..].iter().all(|p| preds[0].iter().zip(p).all(|(&a, &b)| (a - b).abs() <= 0.02));
    let result = summarize("svr/mfgtest_fmax", n_train, configs, matches);
    (result, model_out.expect("three configs ran"), x_test.to_vec())
}

/// Fig. 7 substrate: one-class novelty model over standardized LSU
/// coverage signatures of constrained-random test programs. The
/// signature of a program is the log1p-scaled coverage-point hit
/// vector plus log1p(cycles) and the program length — the features the
/// mode mixture drives jointly, giving the correlated geometry where
/// working-set selection matters.
fn run_one_class_verif(quick: bool, reps: usize) -> WorkloadResult {
    let n = if quick { 100 } else { 300 };
    header("workload one_class/verif_coverage (Fig. 7)");
    let template = MixtureTemplate::verification_plan();
    let sim = LsuSimulator::new(LsuConfig { store_buffer_depth: 6, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(7);
    let raw: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let program = template.generate(&mut rng);
            let out = sim.simulate(&program);
            let mut f: Vec<f64> =
                out.coverage.as_row().iter().map(|&c| (c as f64).ln_1p()).collect();
            f.push((out.cycles as f64).ln_1p());
            f.push(program.tokens().len() as f64);
            f
        })
        .collect();
    let ds = edm_data::Dataset::unlabeled(raw);
    let scaler = edm_data::StandardScaler::fit(&ds);
    let x: Vec<Vec<f64>> = ds.rows().iter().map(|r| scaler.transform_sample(r)).collect();

    let mut configs = Vec::new();
    let mut decisions: Vec<Vec<f64>> = Vec::new();
    for cfg in CONFIGS {
        let mut params = OneClassParams::default()
            .with_nu(0.05)
            .with_working_set(cfg.working_set)
            .with_shrinking(cfg.shrinking);
        params.tol = 1e-6;
        let svm = OneClassSvm::new(params).kernel(RbfKernel::new(0.1));
        let (ms, model) = time_ms(reps, || svm.fit(&x).expect("coverage one-class fits"));
        configs.push(ConfigResult {
            label: cfg.label.to_string(),
            iterations: model.iterations(),
            train_ms: ms,
        });
        decisions.push(x.iter().map(|xi| model.decision_function(xi)).collect());
    }
    let band = 1e-4;
    let matches = decisions[1..].iter().all(|d| signs_agree(&decisions[0], d, band));
    summarize("one_class/verif_coverage", n, configs, matches)
}

/// Contrast row for the Fig. 7 substrate: the ν one-class dual over
/// the weighted spectrum kernel's cosine Gram on the same kind of
/// test programs, solved straight from the Gram matrix (the
/// non-vector path of paper Fig. 4). The normalized Gram is close to
/// uniform, so the maximal-violating pair is already near-optimal and
/// second-order selection cannot gain much — the honest counterpoint
/// documented in DESIGN.md.
fn run_one_class_spectrum(quick: bool, reps: usize) -> WorkloadResult {
    let n = if quick { 90 } else { 280 };
    header("workload one_class/verif_spectrum (Fig. 7)");
    let template = MixtureTemplate::verification_plan();
    let kernel = SpectrumKernel::weighted(3, 2.0);
    let mut rng = StdRng::seed_from_u64(7);
    let profiles: Vec<SpectrumProfile> = (0..n)
        .map(|_| {
            let tokens = template.generate(&mut rng).tokens();
            SpectrumProfile::build(&tokens, &kernel)
        })
        .collect();
    let mut gram = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = profiles[i].cosine(&profiles[j]);
            gram[(i, j)] = v;
            gram[(j, i)] = v;
        }
    }

    let mut configs = Vec::new();
    let mut decisions: Vec<Vec<f64>> = Vec::new();
    for cfg in CONFIGS {
        let mut params = OneClassParams::default()
            .with_nu(0.5)
            .with_working_set(cfg.working_set)
            .with_shrinking(cfg.shrinking);
        params.tol = 1e-5;
        let (ms, (alpha, rho, iterations)) =
            time_ms(reps, || solve_one_class(&gram, &params).expect("spectrum one-class solves"));
        configs.push(ConfigResult { label: cfg.label.to_string(), iterations, train_ms: ms });
        // Training-set decision values f(xᵢ) = Σⱼ αⱼK(xᵢ,xⱼ) − ρ.
        decisions.push(
            (0..n).map(|i| (0..n).map(|j| alpha[j] * gram[(i, j)]).sum::<f64>() - rho).collect(),
        );
    }
    let band = 10.0 * OneClassParams::default().tol;
    let matches = decisions[1..].iter().all(|d| signs_agree(&decisions[0], d, band));
    summarize("one_class/verif_spectrum", n, configs, matches)
}

/// Fig. 11 substrate: one-class novelty over standardized parametric
/// measurements of passing automotive devices. Returns the trained
/// model and a held-out lot of query devices for batch-predict timing.
fn run_one_class_returns(
    quick: bool,
    reps: usize,
) -> (WorkloadResult, OneClassModel<RbfKernel>, Vec<Vec<f64>>) {
    let (n, n_test) = if quick { (200, 100) } else { (700, 300) };
    // The kernel bandwidth tracks the training-set size: the smoothed
    // γ = 0.02 model is the right scale for the quick run's 200
    // devices, γ = 0.05 for the full run's 700.
    let gamma = if quick { 0.02 } else { 0.05 };
    header("workload one_class/mfgtest_returns (Fig. 11)");
    let product = ProductModel::automotive();
    let mut rng = StdRng::seed_from_u64(11);
    let devices = product.generate_lot(0, n, &mut rng);
    let raw: Vec<Vec<f64>> = devices.iter().map(|d| d.measurements.clone()).collect();
    let ds = edm_data::Dataset::unlabeled(raw);
    let scaler = edm_data::StandardScaler::fit(&ds);
    let x: Vec<Vec<f64>> = ds.rows().iter().map(|r| scaler.transform_sample(r)).collect();
    // Queries come from a fresh lot, standardized by the training
    // scaler — the screening deployment of Fig. 11.
    let x_test: Vec<Vec<f64>> = product
        .generate_lot(1, n_test, &mut rng)
        .iter()
        .map(|d| scaler.transform_sample(&d.measurements))
        .collect();

    let mut configs = Vec::new();
    let mut decisions: Vec<Vec<f64>> = Vec::new();
    let mut model_out = None;
    for cfg in CONFIGS {
        let mut params = OneClassParams::default()
            .with_nu(0.05)
            .with_working_set(cfg.working_set)
            .with_shrinking(cfg.shrinking);
        params.tol = 1e-6;
        let svm = OneClassSvm::new(params).kernel(RbfKernel::new(gamma));
        let (ms, model) = time_ms(reps, || svm.fit(&x).expect("returns one-class fits"));
        configs.push(ConfigResult {
            label: cfg.label.to_string(),
            iterations: model.iterations(),
            train_ms: ms,
        });
        decisions.push(x.iter().map(|xi| model.decision_function(xi)).collect());
        model_out = Some(model);
    }
    let band = 1e-4;
    let matches = decisions[1..].iter().all(|d| signs_agree(&decisions[0], d, band));
    let result = summarize("one_class/mfgtest_returns", n, configs, matches);
    (result, model_out.expect("three configs ran"), x_test)
}

/// Scalar loop vs `predict_batch` fan-out on a trained model: wall
/// times, speedup, and the bitwise identity of every output.
fn batch_predict_timing(
    model_name: &str,
    reps: usize,
    queries: usize,
    scalar: impl Fn() -> Vec<f64>,
    batch: impl Fn() -> Vec<f64>,
) -> BatchPredictResult {
    let (scalar_ms, scalar_out) = time_ms(reps, &scalar);
    let (batch_ms, batch_out) = time_ms(reps, &batch);
    let bitwise = scalar_out.len() == batch_out.len()
        && scalar_out.iter().zip(&batch_out).all(|(a, b)| a.to_bits() == b.to_bits());
    let speedup = scalar_ms / batch_ms.max(1e-9);
    println!(
        "  {model_name}: scalar {scalar_ms:.2} ms | batch {batch_ms:.2} ms | speedup {speedup:.2}x | bitwise {}",
        if bitwise { "identical" } else { "DIVERGED" }
    );
    BatchPredictResult {
        model: model_name.to_string(),
        n_queries: queries,
        scalar_ms,
        batch_ms,
        speedup,
        bitwise_identical: bitwise,
    }
}

fn main() {
    edm_bench::init_trace();
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    header(&format!(
        "SMO convergence: WSS1 vs WSS2 vs WSS2+shrinking ({} mode, {} worker thread(s))",
        if quick { "quick" } else { "full" },
        edm_par::num_threads(),
    ));

    let (svc_result, svc_model, svc_queries) = run_svc_litho(quick, reps);
    let (svr_result, svr_model, svr_queries) = run_svr_fmax(quick, reps);
    let coverage_result = run_one_class_verif(quick, reps);
    let spectrum_result = run_one_class_spectrum(quick, reps);
    let (returns_result, oc_model, oc_queries) = run_one_class_returns(quick, reps);

    header("batch prediction: scalar loop vs parallel fan-out");
    let batch_reps = if quick { 3 } else { 5 };
    let batch = vec![
        batch_predict_timing(
            "svc/litho_hotspots",
            batch_reps,
            svc_queries.len(),
            || svc_queries.iter().map(|q| svc_model.decision_function(q)).collect(),
            || svc_model.decision_function_batch(&svc_queries),
        ),
        batch_predict_timing(
            "svr/mfgtest_fmax",
            batch_reps,
            svr_queries.len(),
            || svr_queries.iter().map(|q| svr_model.predict(q)).collect(),
            || svr_model.predict_batch(&svr_queries),
        ),
        batch_predict_timing(
            "one_class/mfgtest_returns",
            batch_reps,
            oc_queries.len(),
            || oc_queries.iter().map(|q| oc_model.decision_function(q)).collect(),
            || oc_model.decision_function_batch(&oc_queries),
        ),
    ];

    let workloads = vec![svc_result, svr_result, coverage_result, spectrum_result, returns_result];
    let fig07 = workloads.iter().find(|w| w.name == "one_class/verif_coverage").expect("ran");
    let fig11 = workloads.iter().find(|w| w.name == "one_class/mfgtest_returns").expect("ran");
    let report = ConvergenceReport {
        seed: SEED,
        quick,
        workers: edm_par::num_threads(),
        claims: Claims {
            fig07_iter_reduction_ge_2x: fig07.iter_reduction >= 2.0,
            fig11_iter_reduction_ge_2x: fig11.iter_reduction >= 2.0,
            all_predictions_match: workloads.iter().all(|w| w.predictions_match),
            batch_bitwise_identical: batch.iter().all(|b| b.bitwise_identical),
        },
        workloads,
        batch_predict: batch,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_smo_convergence.json", json).expect("write BENCH_smo_convergence.json");
    println!("\nwrote BENCH_smo_convergence.json");

    let claims = vec![
        claim(
            "Fig. 7 workload: WSS2+shrinking needs >= 2x fewer iterations",
            report.claims.fig07_iter_reduction_ge_2x,
        ),
        claim(
            "Fig. 11 workload: WSS2+shrinking needs >= 2x fewer iterations",
            report.claims.fig11_iter_reduction_ge_2x,
        ),
        claim("all solver configurations predict identically", report.claims.all_predictions_match),
        claim(
            "batch prediction is bitwise identical to scalar",
            report.claims.batch_bitwise_identical,
        ),
    ];
    edm_bench::emit_trace("smo_convergence", SEED);
    finish(&claims);
}
