//! Fig. 12 — the difficult case for data mining: on the first
//! production window every test-A fail is covered by tests 1/2 and the
//! measurements are 0.97/0.96 correlated, so mining recommends dropping
//! test A; the next production window contains chips (the yellow dots)
//! that fail ONLY test A. A guaranteed-escape formulation cannot be
//! mined from data that does not contain the mechanism.

use edm_bench::{claim, finish, header};
use edm_core::testcost::{self, TestCostConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Figure 12: test-cost reduction and its escapes");
    let config = TestCostConfig::default(); // 200k analysis + 100k follow-on
    let mut rng = StdRng::seed_from_u64(12);
    let result = testcost::run(&config, &mut rng);

    let a = &result.analysis;
    println!("phase 1 ({} chips) mining analysis of {}:", config.phase1_chips, a.test_name);
    for (name, r) in &a.correlations {
        println!("  correlation with {name}: {r:.3}");
    }
    println!("  {} fails, {} caught ONLY by {}", a.fails, a.unique_catches, a.test_name);
    println!(
        "  recommendation: {}",
        if a.recommend_drop { "DROP the test (fully covered)" } else { "keep the test" }
    );
    println!(
        "\nphase 2 ({} chips, tail mechanism now active at {} ppm):",
        result.phase2_chips,
        config.tail_rate * 1e6
    );
    println!("  escapes (pass reduced program, fail dropped test): {}", result.escapes);
    println!("  of which caused by the new tail mechanism: {}", result.escapes_from_tail_mechanism);

    let claims = [
        claim(
            "phase-1 correlations are ~0.97/0.96 (>= 0.95)",
            a.correlations.iter().all(|&(_, r)| r >= 0.95),
        ),
        claim("phase-1 data shows zero unique catches for test A", a.unique_catches == 0),
        claim("mining therefore recommends dropping test A", a.recommend_drop),
        claim(
            &format!("...and phase 2 still produces escapes ({})", result.escapes),
            result.escapes > 0,
        ),
        claim(
            "the escapes come from the unseen mechanism, not noise",
            result.escapes_from_tail_mechanism * 10 >= result.escapes * 8,
        ),
    ];
    edm_bench::emit_trace("fig12_difficult_case", 12);
    finish(&claims);
}
