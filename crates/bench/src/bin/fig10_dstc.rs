//! Fig. 10 — diagnosing unexpected timing paths: paths from one design
//! block split into fast-vs-slow clusters against prediction, and rule
//! learning uncovers "many layer-4-5 and layer-5-6 vias ⇒ slow" — the
//! injected (and, in the paper, silicon-confirmed) metal-5 root cause.

use edm_bench::{claim, finish, header};
use edm_core::dstc::{self, DstcConfig};
use edm_timing::path::PathGenerator;
use edm_timing::silicon::{SiliconModel, SystematicEffect};
use edm_timing::sta::Timer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Figure 10: design-silicon timing correlation diagnosis");
    let silicon = SiliconModel::default()
        .with_effect(SystematicEffect::ViaResistance { lower_layer: 4, extra_ps: 7.0 })
        .with_effect(SystematicEffect::ViaResistance { lower_layer: 5, extra_ps: 7.0 });
    let config = DstcConfig { n_paths: 1200, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(10);
    let result =
        dstc::run(&PathGenerator::default(), &Timer::default(), &silicon, &config, &mut rng)
            .expect("flow runs");

    let slow: Vec<_> = result.points.iter().filter(|p| p.cluster == 1).collect();
    let fast: Vec<_> = result.points.iter().filter(|p| p.cluster == 0).collect();
    println!("paths analyzed: {}", result.points.len());
    println!(
        "fast cluster: {} paths, mean mismatch {:+.1} ps",
        fast.len(),
        result.fast_cluster_mismatch
    );
    println!(
        "slow cluster: {} paths, mean mismatch {:+.1} ps",
        slow.len(),
        result.slow_cluster_mismatch
    );
    println!("\nscatter sample (predicted ps -> measured ps, cluster):");
    for p in result.points.iter().step_by(151) {
        println!(
            "  {:>7.1} -> {:>7.1}   {}",
            p.predicted,
            p.measured,
            if p.cluster == 1 { "slow" } else { "fast" }
        );
    }
    println!("\nlearned rules explaining the slow cluster:");
    for r in &result.rules {
        println!("  {r}");
    }

    let gap = result.slow_cluster_mismatch - result.fast_cluster_mismatch;
    let claims = [
        claim(&format!("two clusters separate clearly (gap {gap:.1} ps)"), gap > 10.0),
        claim(
            "the rule implicates the layer-4-5 / 5-6 vias (the injected root cause)",
            result.implicates("via45") || result.implicates("via56"),
        ),
        claim(
            "the rule does NOT implicate an innocent feature as its primary condition",
            result
                .raw_rules
                .first()
                .map(|r| {
                    let names = edm_timing::path::TimingPath::feature_names(6);
                    r.conditions.iter().any(|c| {
                        names[c.feature].starts_with("via4") || names[c.feature].starts_with("via5")
                    })
                })
                .unwrap_or(false),
        ),
    ];
    edm_bench::emit_trace("fig10_dstc", 10);
    finish(&claims);
}
