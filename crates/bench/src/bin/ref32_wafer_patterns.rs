//! Paper ref \[32\] — "A Pattern Mining Framework for Inter-Wafer
//! Abnormality Analysis": wafer failures cluster into spatial
//! signatures; mining across wafers surfaces which signatures recur and
//! what co-occurs with them.
//!
//! Two mining passes over a generated production window:
//! 1. cluster wafers in spatial-feature space and check the clusters
//!    recover the injected signature families;
//! 2. Apriori over per-wafer fail-bin transactions to surface the
//!    signature bins that co-occur with excursion lots.

use edm_bench::{claim, finish, header, pct};
use edm_cluster::kmeans::kmeans;
use edm_cluster::metrics::rand_index;
use edm_learn::rules::apriori::{mine, AprioriParams};
use edm_mfgtest::wafer::{SpatialSignature, WaferMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    edm_bench::init_trace();
    header("ref [32]: inter-wafer abnormality pattern mining");
    let mut rng = StdRng::seed_from_u64(32);
    let n_per_class = 40;
    let mut wafers = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..n_per_class {
        // healthy: light random defectivity
        wafers.push(WaferMap::new(21).with_random_defects(0.02, &mut rng));
        truth.push(0usize);
        // edge-ring excursion
        wafers.push(
            WaferMap::new(21).with_random_defects(0.02, &mut rng).with_signature(
                SpatialSignature::EdgeRing { inner: 0.85, fail_prob: 0.8 },
                &mut rng,
            ),
        );
        truth.push(1);
        // scratch excursion
        wafers.push(WaferMap::new(21).with_random_defects(0.02, &mut rng).with_signature(
            SpatialSignature::Scratch {
                angle: rng.gen::<f64>() * std::f64::consts::PI,
                fail_prob: 0.95,
            },
            &mut rng,
        ));
        truth.push(2);
    }

    // Pass 1: cluster in spatial-feature space.
    let features: Vec<Vec<f64>> = wafers.iter().map(WaferMap::spatial_features).collect();
    let ds = edm_data::Dataset::unlabeled(features.clone());
    let scaler = edm_data::StandardScaler::fit(&ds);
    let scaled: Vec<Vec<f64>> = features.iter().map(|f| scaler.transform_sample(f)).collect();
    let clustering = kmeans(&scaled, 3, 200, &mut rng).expect("kmeans runs");
    let ri = rand_index(&clustering.labels, &truth);
    println!(
        "{} wafers, 3 signature families; k-means on {:?}",
        wafers.len(),
        WaferMap::spatial_feature_names()
    );
    println!("rand index vs injected ground truth: {ri:.3}");

    // Pass 2: association mining over per-wafer fail-bin transactions.
    // Item space: fail bins (1 = random, 2 = edge, 4 = scratch) plus a
    // low-yield marker item (100).
    let transactions: Vec<Vec<u32>> = wafers
        .iter()
        .map(|w| {
            let mut items = w.fail_bins();
            if w.yield_fraction() < 0.85 {
                items.push(100);
            }
            items
        })
        .collect();
    let (frequent, rules) =
        mine(&transactions, AprioriParams { min_support: 0.1, min_confidence: 0.7, max_len: 3 })
            .expect("mining runs");
    println!("\nfrequent itemsets: {}   rules: {}", frequent.len(), rules.len());
    for r in rules.iter().take(5) {
        println!(
            "  {:?} => {:?}  (supp {}, conf {}, lift {:.2})",
            r.antecedent,
            r.consequent,
            pct(r.support),
            pct(r.confidence),
            r.lift
        );
    }
    // The signature bins should imply the low-yield marker.
    let signature_implies_low_yield = rules.iter().any(|r| {
        r.consequent == vec![100]
            && (r.antecedent.contains(&2) || r.antecedent.contains(&4))
            && r.lift > 1.0
    });

    let claims = [
        claim(
            &format!("clusters recover the signature families (rand index {ri:.2} >= 0.85)"),
            ri >= 0.85,
        ),
        claim("association mining links signature bins to low yield", signature_implies_low_yield),
    ];
    edm_bench::emit_trace("ref32_wafer_patterns", 32);
    finish(&claims);
}
