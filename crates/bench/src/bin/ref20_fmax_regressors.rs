//! Paper §2.4 / ref \[20\] — "Data learning techniques and methodology
//! for Fmax prediction": compare the five regression families the paper
//! names (nearest neighbor, LSF, regularized LSF, SVR, Gaussian process)
//! on the task of predicting a chip's maximum frequency from its other
//! parametric tests.
//!
//! The data comes from `edm-mfgtest`: `fmax` is one of the automotive
//! product's measurements, driven by the shared process factors that
//! also drive the other tests — so it is genuinely predictable from
//! them, with irreducible per-test noise.

use edm_bench::{claim, finish, header};
use edm_data::metrics::{r2, rmse};
use edm_kernels::RbfKernel;
use edm_learn::gp::GpRegressor;
use edm_learn::knn::KnnRegressor;
use edm_learn::linreg::{LeastSquares, Ridge};
use edm_mfgtest::product::ProductModel;
use edm_svm::{SvrParams, SvrTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("ref [20]: five regressor families on Fmax prediction");
    let product = ProductModel::automotive();
    let fmax_idx = product.test_index("fmax").expect("model has fmax");
    let mut rng = StdRng::seed_from_u64(20);
    let devices = product.generate_lot(0, 1_400, &mut rng);

    // X = all tests except fmax (standardized), y = fmax.
    let raw: Vec<Vec<f64>> = devices
        .iter()
        .map(|d| {
            d.measurements
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != fmax_idx)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect();
    let y_all: Vec<f64> = devices.iter().map(|d| d.measurements[fmax_idx]).collect();
    let ds = edm_data::Dataset::unlabeled(raw);
    let scaler = edm_data::StandardScaler::fit(&ds);
    let x_all: Vec<Vec<f64>> = ds.rows().iter().map(|r| scaler.transform_sample(r)).collect();

    let n_train = 1_000;
    let (x_train, x_test) = x_all.split_at(n_train);
    let (y_train, y_test) = y_all.split_at(n_train);

    // Train the five families (paper ref [20]'s lineup).
    let knn = KnnRegressor::fit(15, x_train, y_train).expect("knn");
    let lsf = LeastSquares::fit(x_train, y_train).expect("lsf");
    let ridge = Ridge::fit(x_train, y_train, 10.0).expect("ridge");
    let svr = SvrTrainer::new(SvrParams::default().with_c(10.0).with_epsilon(0.02))
        .kernel(RbfKernel::new(0.1))
        .fit(x_train, y_train)
        .expect("svr");
    let gp_train = 400; // GP is O(n³); condition on a subset
    let gp =
        GpRegressor::fit(&x_train[..gp_train], &y_train[..gp_train], RbfKernel::new(0.05), 0.1)
            .expect("gp");

    let evaluate = |name: &str, pred: Vec<f64>| -> (String, f64, f64) {
        (name.to_string(), rmse(y_test, &pred), r2(y_test, &pred))
    };
    let results = vec![
        evaluate("nearest neighbor", x_test.iter().map(|x| knn.predict(x)).collect()),
        evaluate("LSF", x_test.iter().map(|x| lsf.predict(x)).collect()),
        evaluate("regularized LSF", x_test.iter().map(|x| ridge.predict(x)).collect()),
        evaluate("SVR (RBF)", x_test.iter().map(|x| svr.predict(x)).collect()),
        evaluate("Gaussian process", x_test.iter().map(|x| gp.predict(x)).collect()),
    ];

    let y_sigma = edm_linalg::variance(y_test).sqrt();
    println!("train {} devices, test {}   (fmax sigma = {:.3})", n_train, x_test.len(), y_sigma);
    println!("{:<20} {:>10} {:>8}", "model", "RMSE", "R2");
    for (name, e, r) in &results {
        println!("{name:<20} {e:>10.4} {r:>8.3}");
    }
    // GP predictive uncertainty (the family's differentiator in [20]).
    let (mean, var) = gp.predict_with_variance(&x_test[0]);
    println!(
        "\nGP predictive interval example: {:.3} ± {:.3} (truth {:.3})",
        mean,
        2.0 * var.sqrt(),
        y_test[0]
    );

    let all_beat_sigma = results.iter().all(|(_, e, _)| *e < y_sigma);
    let all_positive_r2 = results.iter().all(|(_, _, r)| *r > 0.3);
    let claims = [
        claim("every family beats the trivial (mean) predictor", all_beat_sigma),
        claim("every family explains a meaningful share of variance (R2 > 0.3)", all_positive_r2),
        claim("GP predictive variance is positive and finite", var > 0.0 && var.is_finite()),
    ];
    edm_bench::emit_trace("ref20_fmax_regressors", 20);
    finish(&claims);
}
