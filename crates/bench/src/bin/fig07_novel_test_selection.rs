//! Fig. 7 — novel test selection: reach the baseline's maximum LSU
//! coverage while simulating a small fraction of the constrained-random
//! stream (the paper: 6 K tests → 310 tests, ≈ 95 % of server-farm
//! simulation time saved).

use edm_bench::{claim, finish, header, pct};
use edm_core::noveltest::{self, NovelSelectionConfig};
use edm_verif::lsu::LsuSimulator;
use edm_verif::template::MixtureTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    edm_bench::init_trace();
    header("Figure 7: novel test selection vs simulate-everything");
    // The production randomizer draws from a mixture of scenario modes
    // (overwhelmingly the generic one); the unit under test has a 6-deep
    // store buffer, so the buffer-full point is only reachable through
    // the rare store-storm mode — the paper's regime, where the baseline
    // needs thousands of random tests to reach maximum coverage.
    let template = MixtureTemplate::verification_plan();
    let sim = LsuSimulator::new(edm_verif::lsu::LsuConfig {
        store_buffer_depth: 6,
        ..Default::default()
    });
    let config = NovelSelectionConfig {
        n_tests: 8000,
        nu: 0.15,
        ngram: 3,
        length_weight: 2.0,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let tests: Vec<_> = (0..config.n_tests).map(|_| template.generate(&mut rng)).collect();
    let result = noveltest::run_stream(&tests, &sim, &config).expect("flow runs");

    println!("stream length: {} tests", config.n_tests);
    println!("max coverage reached by baseline: {} points", result.max_coverage);
    println!();
    println!("{:<34} {:>12} {:>16}", "flow", "tests sim'd", "cycles to max");
    println!(
        "{:<34} {:>12} {:>16}",
        "baseline (simulate everything)",
        result.baseline_tests_to_max,
        result.baseline_cycles_to_max
    );
    match (result.filtered_tests_to_max, result.filtered_cycles_to_max) {
        (Some(t), Some(c)) => {
            println!("{:<34} {t:>12} {c:>16}", "novelty-filtered");
            let saving = result.simulation_saving().unwrap_or(0.0);
            println!("\nsimulation saving at equal coverage: {}", pct(saving));
            println!(
                "test reduction: {} -> {} ({})",
                result.baseline_tests_to_max,
                t,
                pct(1.0 - t as f64 / result.baseline_tests_to_max as f64)
            );
            // Sample the curves like the figure's axes.
            println!("\ncoverage growth (tests simulated -> points covered):");
            for &at in &[10usize, 50, 100, 200, 500, 1000] {
                let b = result
                    .baseline
                    .iter()
                    .find(|p| p.simulated >= at)
                    .map(|p| p.covered)
                    .unwrap_or(result.max_coverage);
                let f = result
                    .filtered
                    .iter()
                    .find(|p| p.simulated >= at.min(result.filtered.len()))
                    .map(|p| p.covered)
                    .unwrap_or_else(|| result.filtered.last().map(|p| p.covered).unwrap_or(0));
                println!("  after {at:>4} sims: baseline {b}  filtered {f}");
            }
            let claims = [
                claim("filtered flow reaches the baseline's max coverage", true),
                claim(
                    "filtered flow simulates far fewer tests (>= 4x reduction)",
                    t * 4 <= result.baseline_tests_to_max,
                ),
                claim("simulation saving is large (>= 60%)", saving >= 0.60),
            ];
            edm_bench::emit_trace("fig07_novel_test_selection", 7);
            finish(&claims);
        }
        _ => {
            let reached = result.filtered.last().map(|p| p.covered).unwrap_or(0);
            println!("novelty-filtered flow stalled at {reached}/{} points", result.max_coverage);
            edm_bench::emit_trace("fig07_novel_test_selection", 7);
            finish(&[claim("filtered flow reaches the baseline's max coverage", false)]);
        }
    }
}
