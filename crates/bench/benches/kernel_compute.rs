//! Criterion microbenchmarks of the parallel kernel-compute layer and
//! the SMO Q-row cache (wired to `cargo bench -p edm-bench`):
//!
//! * Gram-matrix build (the `O(n²·d)` hot loop behind every kernel
//!   learner) at two sizes;
//! * dense matrix product and `AᵀA`;
//! * on-demand Q-row fill (what the SMO solver pays on a cache miss);
//! * full SVC training with the row cache on vs off.
//!
//! The heavyweight scaling runs (n up to 8000, thread sweeps, JSON
//! output) live in the `bench_kernel_compute` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edm_kernels::{gram_matrix, RbfKernel};
use edm_linalg::Matrix;
use edm_svm::{CachedQ, KernelQ, QMatrix, SvcParams, SvcTrainer};

/// Deterministic SplitMix64 point cloud (no RNG dependency needed).
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Two shifted blobs with ±1 labels — easy to separate, so SVC
/// converges in few iterations and the benchmark isolates kernel
/// compute rather than optimizer pathology.
fn blobs(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = points(7, n, d);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.5;
        }
    }
    (x, y)
}

fn bench_gram(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_compute_gram");
    for n in [256usize, 512] {
        let pts = points(1, n, 32);
        g.bench_function(format!("rbf_gram_n{n}_d32"), |b| {
            b.iter(|| gram_matrix(&RbfKernel::new(0.5), black_box(&pts)))
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let flat = points(2, 128, 128);
    let a = Matrix::from_rows(&flat);
    let b_mat = a.transpose();
    let mut g = c.benchmark_group("kernel_compute_matmul");
    g.bench_function("mat_mul_128", |b| b.iter(|| black_box(&a).mat_mul(black_box(&b_mat))));
    g.bench_function("gram_ata_128", |b| b.iter(|| black_box(&a).gram()));
    g.finish();
}

/// Naive row-major transpose: strided writes, no blocking. Kept here
/// (not in the library) purely as the comparison point for the
/// cache-blocked `Matrix::transpose`.
fn transpose_naive(a: &Matrix) -> Matrix {
    let mut t = Matrix::zeros(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            t[(c, r)] = a[(r, c)];
        }
    }
    t
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_compute_transpose");
    for n in [256usize, 1024] {
        let flat = points(3, n, n);
        let a = Matrix::from_rows(&flat);
        g.bench_function(format!("transpose_naive_{n}"), |b| {
            b.iter(|| transpose_naive(black_box(&a)))
        });
        g.bench_function(format!("transpose_blocked_{n}"), |b| {
            b.iter(|| black_box(&a).transpose())
        });
    }
    g.finish();
}

fn bench_q_row_fill(c: &mut Criterion) {
    let (x, y) = blobs(2000, 32);
    let k = RbfKernel::new(0.5);
    let mut g = c.benchmark_group("kernel_compute_q_row");
    g.bench_function("q_row_fill_n2000_d32_miss", |b| {
        // Cache disabled: every access is a full on-demand row fill.
        let q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, Some(&y)), 0);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % x.len();
            q.row(black_box(i))
        })
    });
    g.bench_function("q_row_fill_n2000_d32_hit", |b| {
        // Ample cache: after warmup every access is a hit.
        let q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, Some(&y)), 64 << 20);
        q.row(17);
        b.iter(|| q.row(black_box(17)))
    });
    g.finish();
}

fn bench_svc_cache(c: &mut Criterion) {
    let (x, y) = blobs(500, 32);
    let mut g = c.benchmark_group("kernel_compute_svc_train");
    g.bench_function("svc_train_n500_cache_on", |b| {
        let t = SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(0.5));
        b.iter(|| t.fit(black_box(&x), black_box(&y)).unwrap())
    });
    g.bench_function("svc_train_n500_cache_off", |b| {
        let t =
            SvcTrainer::new(SvcParams::default().with_cache_bytes(0)).kernel(RbfKernel::new(0.5));
        b.iter(|| t.fit(black_box(&x), black_box(&y)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gram,
    bench_matmul,
    bench_transpose,
    bench_q_row_fill,
    bench_svc_cache
);
criterion_main!(benches);
