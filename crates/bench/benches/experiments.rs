//! Criterion microbenchmarks of each experiment's computational core,
//! grouped per paper figure/table. These measure the *cost* side of the
//! flows (the result side lives in the `src/bin/` harnesses):
//!
//! * fig03 — SVC training across kernels
//! * fig05 — polynomial least squares at growing degree
//! * fig07 — LSU simulation, spectrum-profile scoring, one-class solve
//! * table1 — constrained-random generation + CN2-SD rule induction
//! * fig09 — golden litho analysis vs HI-kernel model prediction per clip
//! * fig10 — STA population timing + clustering
//! * fig11 — device generation + Mahalanobis screening
//! * fig12 — correlation analysis over a production window

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use edm_kernels::{
    gram_matrix, HistogramIntersectionKernel, LinearKernel, PolyKernel, RbfKernel, SpectrumKernel,
    SpectrumProfile,
};
use edm_svm::{solve_one_class, OneClassParams, SvcParams, SvcTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ring_disc(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let r = 0.8 * rng.gen::<f64>();
        let a = rng.gen::<f64>() * std::f64::consts::TAU;
        x.push(vec![r * a.cos(), r * a.sin()]);
        y.push(-1.0);
        let r = 1.6 + 0.6 * rng.gen::<f64>();
        x.push(vec![r * a.cos(), r * a.sin()]);
        y.push(1.0);
    }
    (x, y)
}

fn bench_fig03(c: &mut Criterion) {
    let (x, y) = ring_disc(40, 3);
    let mut g = c.benchmark_group("fig03_kernel_trick");
    g.bench_function("svc_linear", |b| {
        b.iter(|| {
            SvcTrainer::new(SvcParams::default())
                .kernel(LinearKernel::new())
                .fit(black_box(&x), black_box(&y))
                .unwrap()
        })
    });
    g.bench_function("svc_poly2", |b| {
        b.iter(|| {
            SvcTrainer::new(SvcParams::default())
                .kernel(PolyKernel::homogeneous(2))
                .fit(black_box(&x), black_box(&y))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fig05(c: &mut Criterion) {
    use edm_learn::linreg::{polynomial_features, LeastSquares};
    let x: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 * 0.2 - 3.0]).collect();
    let y: Vec<f64> = x.iter().map(|v| (1.8 * v[0]).sin()).collect();
    let mut g = c.benchmark_group("fig05_overfitting");
    for degree in [2u32, 8, 14] {
        g.bench_function(format!("poly_fit_deg{degree}"), |b| {
            b.iter(|| {
                let xt = polynomial_features(black_box(&x), degree);
                LeastSquares::fit(&xt, black_box(&y)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_fig07(c: &mut Criterion) {
    use edm_verif::lsu::LsuSimulator;
    use edm_verif::template::TestTemplate;
    let template = TestTemplate::default();
    let sim = LsuSimulator::default_config();
    let mut rng = StdRng::seed_from_u64(7);
    let tests: Vec<_> = (0..64).map(|_| template.generate(&mut rng)).collect();
    let kernel = SpectrumKernel::weighted(3, 2.0);
    let profiles: Vec<SpectrumProfile> =
        tests.iter().map(|t| SpectrumProfile::build(&t.tokens(), &kernel)).collect();

    let mut g = c.benchmark_group("fig07_novel_test_selection");
    g.bench_function("generate_test", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| template.generate(black_box(&mut rng)))
    });
    g.bench_function("simulate_test", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % tests.len();
            sim.simulate(black_box(&tests[i]))
        })
    });
    g.bench_function("spectrum_profile_build", |b| {
        let tokens = tests[0].tokens();
        b.iter(|| SpectrumProfile::build(black_box(&tokens), &kernel))
    });
    g.bench_function("novelty_score_vs_64", |b| {
        let cand = &profiles[0];
        b.iter(|| profiles.iter().map(|p| cand.cosine(black_box(p))).sum::<f64>())
    });
    g.bench_function("one_class_solve_64", |b| {
        let gram = {
            let n = profiles.len();
            let mut m = edm_linalg::Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = profiles[i].cosine(&profiles[j]);
                }
            }
            m
        };
        let params = OneClassParams::default().with_nu(0.2);
        b.iter(|| solve_one_class(black_box(&gram), &params).unwrap())
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    use edm_learn::rules::cn2sd::{learn_rules, Cn2SdParams};
    use edm_verif::lsu::LsuSimulator;
    use edm_verif::program::Program;
    use edm_verif::template::TestTemplate;
    let template = TestTemplate::default();
    let sim = LsuSimulator::default_config();
    let mut rng = StdRng::seed_from_u64(11);
    let tests: Vec<_> = (0..120).map(|_| template.generate(&mut rng)).collect();
    let features: Vec<Vec<f64>> = tests.iter().map(Program::features).collect();
    let labels: Vec<i32> =
        tests.iter().map(|t| i32::from(sim.simulate(t).coverage.n_covered() > 2)).collect();
    let mut g = c.benchmark_group("table1_template_refinement");
    g.bench_function("cn2sd_learn_rules_120", |b| {
        let params = Cn2SdParams { max_rules: 2, max_conditions: 2, ..Default::default() };
        b.iter(|| learn_rules(black_box(&features), black_box(&labels), 1, params).unwrap())
    });
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    use edm_litho::features::{density_histogram, HistogramSpec};
    use edm_litho::layout::LayoutGenerator;
    use edm_litho::variability::VariabilityAnalyzer;
    let generator = LayoutGenerator::default();
    let analyzer = VariabilityAnalyzer::default();
    let mut rng = StdRng::seed_from_u64(9);
    let mut clips: Vec<_> = (0..16).map(|_| generator.generate_random(&mut rng).1).collect();
    // Guarantee both labels for SVC training: a stable fat line and an
    // at-the-limit grating.
    clips.push(edm_litho::layout::LayoutClip::new(
        1024,
        vec![edm_litho::geometry::Rect::new(256, 0, 768, 1024)],
    ));
    clips.push(edm_litho::layout::LayoutClip::new(
        1024,
        (0..11).map(|i| edm_litho::geometry::Rect::new(i * 96, 0, i * 96 + 48, 1024)).collect(),
    ));
    let spec = HistogramSpec::default();
    // A small trained model for the prediction benchmark.
    let hists: Vec<Vec<f64>> = clips.iter().map(|cl| density_histogram(cl, &spec)).collect();
    let labels: Vec<f64> = clips
        .iter()
        .map(|cl| {
            if analyzer.analyze(cl).label == edm_litho::variability::VariabilityLabel::Bad {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let model = SvcTrainer::new(SvcParams::default().with_c(10.0))
        .kernel(HistogramIntersectionKernel::new())
        .fit(&hists, &labels)
        .expect("both labels present in the sample");

    let mut g = c.benchmark_group("fig09_litho_variability");
    g.bench_function("golden_process_window_per_clip", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % clips.len();
            analyzer.analyze(black_box(&clips[i]))
        })
    });
    g.bench_function("model_prediction_per_clip", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % clips.len();
            let h = density_histogram(black_box(&clips[i]), &spec);
            model.predict(&h)
        })
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    use edm_cluster::kmeans::kmeans;
    use edm_timing::path::PathGenerator;
    use edm_timing::silicon::SiliconModel;
    use edm_timing::sta::Timer;
    let generator = PathGenerator::default();
    let mut rng = StdRng::seed_from_u64(10);
    let paths = generator.generate_population(400, &mut rng);
    let timer = Timer::default();
    let silicon = SiliconModel::default();
    let mut g = c.benchmark_group("fig10_dstc");
    g.bench_function("sta_population_400", |b| {
        b.iter(|| timer.analyze_population(black_box(&paths)))
    });
    g.bench_function("silicon_measure_400", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| silicon.measure_population(black_box(&paths), &mut rng))
    });
    g.bench_function("kmeans_mismatch_400", |b| {
        let pred = timer.analyze_population(&paths);
        let mut rng = StdRng::seed_from_u64(2);
        let meas = silicon.measure_population(&paths, &mut rng);
        let pts: Vec<Vec<f64>> =
            pred.iter().zip(&meas).map(|(&p, &m)| vec![(m - p) / p.max(1.0)]).collect();
        let mut krng = StdRng::seed_from_u64(3);
        b.iter_batched(
            || pts.clone(),
            |pts| kmeans(&pts, 2, 100, &mut krng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    use edm_mfgtest::product::ProductModel;
    use edm_novelty::{MahalanobisDetector, NoveltyDetector};
    let product = ProductModel::automotive();
    let mut rng = StdRng::seed_from_u64(11);
    let lot = product.generate_lot(0, 2_000, &mut rng);
    let z: Vec<Vec<f64>> = lot.iter().map(|d| d.measurements[4..7].to_vec()).collect();
    let detector = MahalanobisDetector::fit(&z, 0.999).expect("fit");
    let mut g = c.benchmark_group("fig11_customer_returns");
    g.bench_function("generate_device", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            product.generate_device(id, 0, &mut rng)
        })
    });
    g.bench_function("screen_device", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % z.len();
            detector.score(black_box(&z[i]))
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    use edm_linalg::stats;
    use edm_mfgtest::product::ProductModel;
    let product = ProductModel::automotive();
    let mut rng = StdRng::seed_from_u64(12);
    let lot = product.generate_lot(0, 5_000, &mut rng);
    let a: Vec<f64> = lot.iter().map(|d| d.measurements[0]).collect();
    let t1: Vec<f64> = lot.iter().map(|d| d.measurements[1]).collect();
    let mut g = c.benchmark_group("fig12_difficult_case");
    g.bench_function("pearson_5000", |b| b.iter(|| stats::pearson(black_box(&a), black_box(&t1))));
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pts: Vec<Vec<f64>> =
        (0..128).map(|_| (0..16).map(|_| rng.gen::<f64>()).collect()).collect();
    let mut g = c.benchmark_group("kernel_gram");
    g.bench_function("rbf_gram_128", |b| {
        b.iter(|| gram_matrix(&RbfKernel::new(1.0), black_box(&pts)))
    });
    g.bench_function("hi_gram_128", |b| {
        b.iter(|| gram_matrix(&HistogramIntersectionKernel::new(), black_box(&pts)))
    });
    g.finish();
}

fn bench_toolkit_extras(c: &mut Criterion) {
    use edm_mfgtest::wafer::{SpatialSignature, WaferMap};
    use edm_transform::{Cca, KernelPca, Pls};
    let mut rng = StdRng::seed_from_u64(42);
    let x: Vec<Vec<f64>> = (0..200).map(|_| (0..6).map(|_| rng.gen::<f64>()).collect()).collect();
    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] + r[1], r[2] - r[3]]).collect();
    let mut g = c.benchmark_group("toolkit_extras");
    g.bench_function("pls_fit_200x6", |b| {
        b.iter(|| Pls::fit(black_box(&x), black_box(&y), 2).unwrap())
    });
    g.bench_function("cca_fit_200x6", |b| {
        b.iter(|| Cca::fit(black_box(&x), black_box(&y), 2, 1e-6).unwrap())
    });
    g.bench_function("kpca_fit_100", |b| {
        b.iter(|| KernelPca::fit(black_box(&x[..100]), RbfKernel::new(1.0), 4).unwrap())
    });
    g.bench_function("wafer_spatial_features", |b| {
        let mut wrng = StdRng::seed_from_u64(1);
        let w = WaferMap::new(25)
            .with_random_defects(0.05, &mut wrng)
            .with_signature(SpatialSignature::EdgeRing { inner: 0.85, fail_prob: 0.8 }, &mut wrng);
        b.iter(|| w.spatial_features())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig03,
    bench_fig05,
    bench_fig07,
    bench_table1,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_kernels,
    bench_toolkit_extras
);
criterion_main!(benches);
