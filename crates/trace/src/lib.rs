//! # edm-trace — telemetry for the edm workspace
//!
//! Zero-external-dependency instrumentation: hierarchical **spans**
//! (RAII guards with monotonic timing), atomic **counters**, and
//! fixed-bucket (power-of-two) **histograms**, aggregated in a global
//! thread-safe registry and exportable as a JSON [`TraceReport`].
//!
//! ## Runtime knob
//!
//! The `EDM_TRACE` environment variable selects the level on first
//! probe hit (or call [`set_level`] / [`init_from_env_or`] explicitly):
//!
//! * `off` (default) — probes are a single relaxed atomic load;
//! * `summary` — counters, span aggregates, histograms;
//! * `full` — additionally a bounded per-span event log and
//!   high-frequency probes ([`record_full`], e.g. the SMO solver's
//!   per-iteration KKT gap trajectory).
//!
//! ## Compile-time knob
//!
//! With the `trace` cargo feature disabled (workspace
//! `--no-default-features`), every probe in this crate is an inline
//! empty function and the registry is not compiled at all — callers
//! need no `cfg` of their own.
//!
//! ## Probe taxonomy
//!
//! Names are dot-separated `crate.component.metric` (e.g.
//! `svm.smo.iterations`, `par.worker.busy_ns`); span paths additionally
//! nest by call structure with `/` (e.g. `fig05/train/svm.smo.solve`).
//!
//! ## Adding a probe
//!
//! ```
//! let _span = edm_trace::span("myflow.stage");   // timed until drop
//! edm_trace::counter_add("myflow.widgets", 3);
//! edm_trace::record("myflow.latency_ns", 1234.0);
//! ```
//!
//! Probes must never perturb numerics: they may observe values but not
//! change control flow or floating-point results (property-tested at
//! the workspace root: models train bitwise-identically at `full` vs
//! `off`).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Telemetry level, in increasing order of detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Probes disabled (one relaxed atomic load each).
    Off,
    /// Counters, span aggregates, histograms.
    Summary,
    /// Summary plus the bounded span event log and high-frequency
    /// [`record_full`] probes.
    Full,
}

impl Level {
    /// Canonical lowercase name (the `EDM_TRACE` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Full => "full",
        }
    }

    /// Parses an `EDM_TRACE` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(Level::Off),
            "summary" | "1" | "on" => Some(Level::Summary),
            "full" | "2" => Some(Level::Full),
            _ => None,
        }
    }
}

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// `/`-joined hierarchical path (nesting by call structure).
    pub path: String,
    /// Completed activations.
    pub count: u64,
    /// Total wall time across activations, nanoseconds.
    pub total_ns: u64,
    /// Shortest activation, nanoseconds.
    pub min_ns: u64,
    /// Longest activation, nanoseconds.
    pub max_ns: u64,
}

/// One named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Probe name (`crate.component.metric`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One fixed-bucket histogram: buckets are powers of two, bucket
/// exponent `e` covering `[2^e, 2^(e+1))`, clamped to `e ∈ [−32, 31]`
/// (non-positive samples land in the lowest bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Probe name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(exponent, count)` pairs, ascending.
    pub buckets: Vec<(i64, u64)>,
}

/// One completed span activation (collected only at [`Level::Full`],
/// capped at [`EVENT_CAP`] events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Hierarchical span path.
    pub path: String,
    /// Start offset from the registry epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Maximum events retained at [`Level::Full`]; later events are counted
/// in [`TraceReport::dropped_events`] instead of stored.
pub const EVENT_CAP: usize = 8192;

/// A point-in-time snapshot of the registry, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Level at snapshot time (`"off"`, `"summary"`, `"full"`; probes
    /// compiled out report `"off"`).
    pub level: String,
    /// Whether probe machinery was compiled in (the `trace` feature).
    pub compiled: bool,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Individual span activations ([`Level::Full`] only).
    pub events: Vec<SpanEvent>,
    /// Events discarded after [`EVENT_CAP`] was reached.
    pub dropped_events: u64,
}

impl TraceReport {
    /// A report with no data (the compiled-out and freshly-reset states).
    pub fn empty() -> Self {
        TraceReport {
            level: Level::Off.as_str().to_string(),
            compiled: compiled(),
            spans: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Serializes to compact JSON.
    ///
    /// # Errors
    ///
    /// Propagates the (practically unreachable: all floats stored are
    /// finite) serializer error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// The value of counter `name`, or 0 if it never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Sum of `count` over spans whose path's last `/`-segment equals
    /// `leaf` (a span may appear under several parent paths).
    pub fn span_count(&self, leaf: &str) -> u64 {
        self.spans.iter().filter(|s| s.path.rsplit('/').next() == Some(leaf)).map(|s| s.count).sum()
    }

    /// Renders the span aggregates in Brendan Gregg's collapsed-stack
    /// ("folded") format, one `stack;frames self_ns` line per span,
    /// ready for `flamegraph.pl` / `inferno-flamegraph`.
    ///
    /// The sample value of each line is the span's **self** time: its
    /// `total_ns` minus the `total_ns` of its direct children (clamped
    /// at zero, since child totals can slightly exceed the parent's
    /// when activations straddle the snapshot). Spans fully accounted
    /// for by their children produce no line, per the format's
    /// convention. Lines appear in path order, so the output is
    /// deterministic for a given report.
    pub fn to_collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let child_total: u64 = self
                .spans
                .iter()
                .filter(|c| {
                    c.path
                        .strip_prefix(&s.path)
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|leaf| !leaf.contains('/'))
                })
                .map(|c| c.total_ns)
                .sum();
            let self_ns = s.total_ns.saturating_sub(child_total);
            if self_ns > 0 {
                out.push_str(&s.path.replace('/', ";"));
                out.push(' ');
                out.push_str(&self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the registry snapshot in the OpenMetrics text
    /// exposition format for scrape-based monitoring.
    ///
    /// * Counters map directly: probe `svm.smo.iterations` becomes the
    ///   family `edm_svm_smo_iterations` with one `_total` sample.
    /// * Power-of-two histograms map to cumulative `le` buckets: the
    ///   bucket with exponent `e` covers `[2^e, 2^(e+1))`, so its upper
    ///   bound is `le="2^(e+1)"`; `_sum`, `_count`, and the mandatory
    ///   `le="+Inf"` bucket follow.
    /// * Span aggregates become two labeled counter families,
    ///   `edm_span_activations` and `edm_span_time_ns`, with the
    ///   hierarchical path as the `path` label.
    ///
    /// Output ends with the `# EOF` terminator and is deterministic for
    /// a given report (families in the report's sorted order).
    pub fn to_openmetrics(&self) -> String {
        fn metric_name(probe: &str) -> String {
            let mut name = String::with_capacity(probe.len() + 4);
            name.push_str("edm_");
            for c in probe.chars() {
                name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            name
        }
        fn label_value(path: &str) -> String {
            path.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        let mut out = String::new();
        for c in &self.counters {
            let name = metric_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name}_total {}\n", c.value));
        }
        for h in &self.histograms {
            let name = metric_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for &(exponent, count) in &h.buckets {
                cumulative += count;
                let le = 2f64.powi(exponent as i32 + 1);
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE edm_span_activations counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "edm_span_activations_total{{path=\"{}\"}} {}\n",
                    label_value(&s.path),
                    s.count
                ));
            }
            out.push_str("# TYPE edm_span_time_ns counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "edm_span_time_ns_total{{path=\"{}\"}} {}\n",
                    label_value(&s.path),
                    s.total_ns
                ));
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// True when the probe machinery is compiled in (`trace` feature).
pub const fn compiled() -> bool {
    cfg!(feature = "trace")
}

// edm-allow-file(unordered-iteration): the registry maps are keyed by
// probe name for O(1) hot-path updates and are only ever iterated by
// snapshot(), which sorts every family by name before reporting.
#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::Instant;

    const UNINIT: u8 = u8::MAX;
    static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
    static ENV_WARN: Once = Once::new();

    fn level_from_u8(v: u8) -> Level {
        match v {
            1 => Level::Summary,
            2 => Level::Full,
            _ => Level::Off,
        }
    }

    /// Current level, initializing from `EDM_TRACE` on first use.
    pub fn level() -> Level {
        let v = LEVEL.load(Ordering::Relaxed);
        if v == UNINIT {
            init_level_from_env()
        } else {
            level_from_u8(v)
        }
    }

    #[cold]
    fn init_level_from_env() -> Level {
        let lvl = match std::env::var("EDM_TRACE") {
            Ok(s) => Level::parse(&s).unwrap_or_else(|| {
                ENV_WARN.call_once(|| {
                    eprintln!(
                        "edm-trace: unrecognized EDM_TRACE value {s:?} \
                         (expected off|summary|full); tracing stays off"
                    );
                });
                Level::Off
            }),
            Err(_) => Level::Off,
        };
        LEVEL.store(lvl as u8, Ordering::Relaxed);
        lvl
    }

    /// Sets the level programmatically (overrides `EDM_TRACE`).
    pub fn set_level(lvl: Level) {
        LEVEL.store(lvl as u8, Ordering::Relaxed);
    }

    /// Initializes the level from `EDM_TRACE` when set and parseable,
    /// else to `default`. Harness entry points call this so their run
    /// manifests have data even when the variable is unset.
    pub fn init_from_env_or(default: Level) {
        let lvl = std::env::var("EDM_TRACE").ok().and_then(|s| Level::parse(&s)).unwrap_or(default);
        set_level(lvl);
    }

    /// True when probes record (level ≥ `summary`). The disabled path
    /// is this one relaxed atomic load.
    #[inline]
    pub fn enabled() -> bool {
        level() != Level::Off
    }

    /// True when high-frequency probes record (level = `full`).
    #[inline]
    pub fn full_enabled() -> bool {
        level() == Level::Full
    }

    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    struct Hist {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        buckets: [u64; 64],
    }

    impl Hist {
        fn new() -> Self {
            Hist {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                buckets: [0; 64],
            }
        }
    }

    /// Bucket index for value `v`: exponent `floor(log2 v)` clamped to
    /// `[−32, 31]`, offset by 32. Non-positive and non-finite-negative
    /// samples land in bucket 0.
    fn bucket_index(v: f64) -> usize {
        if v > 0.0 {
            (v.log2().floor().clamp(-32.0, 31.0) as i64 + 32) as usize
        } else {
            0
        }
    }

    struct Registry {
        epoch: Instant,
        spans: Mutex<HashMap<String, SpanAgg>>,
        counters: Mutex<HashMap<&'static str, u64>>,
        hists: Mutex<HashMap<&'static str, Hist>>,
        events: Mutex<(Vec<SpanEvent>, u64)>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Registry {
            epoch: Instant::now(),
            spans: Mutex::new(HashMap::new()),
            counters: Mutex::new(HashMap::new()),
            hists: Mutex::new(HashMap::new()),
            events: Mutex::new((Vec::new(), 0)),
        })
    }

    thread_local! {
        static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    struct ActiveSpan {
        path: String,
        depth: usize,
        start: Instant,
    }

    /// RAII span guard: times from creation to drop and records under
    /// the hierarchical path current at creation. Obtain via [`span`].
    pub struct Span(Option<ActiveSpan>);

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(active) = self.0.take() else { return };
            let dur_ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                s.truncate(active.depth.saturating_sub(1));
            });
            let reg = registry();
            {
                let mut spans = reg.spans.lock().expect("span registry poisoned");
                let agg = spans.entry(active.path.clone()).or_default();
                if agg.count == 0 {
                    agg.min_ns = dur_ns;
                    agg.max_ns = dur_ns;
                } else {
                    agg.min_ns = agg.min_ns.min(dur_ns);
                    agg.max_ns = agg.max_ns.max(dur_ns);
                }
                agg.count += 1;
                agg.total_ns += dur_ns;
            }
            if full_enabled() {
                let start_ns = active
                    .start
                    .saturating_duration_since(reg.epoch)
                    .as_nanos()
                    .min(u64::MAX as u128) as u64;
                let mut ev = reg.events.lock().expect("event log poisoned");
                if ev.0.len() < EVENT_CAP {
                    ev.0.push(SpanEvent { path: active.path, start_ns, dur_ns });
                } else {
                    ev.1 += 1;
                }
            }
        }
    }

    /// Opens a span named `name`, nested under any span already open on
    /// this thread. Off-level cost: one relaxed atomic load.
    pub fn span(name: &'static str) -> Span {
        if !enabled() {
            return Span(None);
        }
        let (path, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            (s.join("/"), s.len())
        });
        Span(Some(ActiveSpan { path, depth, start: Instant::now() }))
    }

    /// Adds `delta` to counter `name`. Off-level cost: one relaxed
    /// atomic load.
    pub fn counter_add(name: &'static str, delta: u64) {
        if !enabled() {
            return;
        }
        let mut counters = registry().counters.lock().expect("counter registry poisoned");
        *counters.entry(name).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name`. Off-level cost: one
    /// relaxed atomic load.
    pub fn record(name: &'static str, value: f64) {
        if !enabled() {
            return;
        }
        record_unchecked(name, value);
    }

    /// Records `value` into histogram `name` only at [`Level::Full`] —
    /// for high-frequency probes (per-iteration trajectories) too hot
    /// for `summary` runs.
    pub fn record_full(name: &'static str, value: f64) {
        if !full_enabled() {
            return;
        }
        record_unchecked(name, value);
    }

    fn record_unchecked(name: &'static str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut hists = registry().hists.lock().expect("histogram registry poisoned");
        let h = hists.entry(name).or_insert_with(Hist::new);
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[bucket_index(value)] += 1;
    }

    /// Clears all spans, counters, histograms, and events (the level is
    /// untouched). Harnesses call this between measured sections.
    pub fn reset() {
        let reg = registry();
        reg.spans.lock().expect("span registry poisoned").clear();
        reg.counters.lock().expect("counter registry poisoned").clear();
        reg.hists.lock().expect("histogram registry poisoned").clear();
        let mut ev = reg.events.lock().expect("event log poisoned");
        ev.0.clear();
        ev.1 = 0;
    }

    /// Snapshots the registry into a sorted, serializable report.
    pub fn collect() -> TraceReport {
        let reg = registry();
        let mut spans: Vec<SpanStat> = reg
            .spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(path, a)| SpanStat {
                path: path.clone(),
                count: a.count,
                total_ns: a.total_ns,
                min_ns: a.min_ns,
                max_ns: a.max_ns,
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        let mut counters: Vec<CounterStat> = reg
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(&name, &value)| CounterStat { name: name.to_string(), value })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramStat> = reg
            .hists
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(&name, h)| HistogramStat {
                name: name.to_string(),
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0.0 } else { h.min },
                max: if h.count == 0 { 0.0 } else { h.max },
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i as i64 - 32, c))
                    .collect(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let (events, dropped_events) = {
            let ev = reg.events.lock().expect("event log poisoned");
            (ev.0.clone(), ev.1)
        };
        TraceReport {
            level: level().as_str().to_string(),
            compiled: true,
            spans,
            counters,
            histograms,
            events,
            dropped_events,
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{Level, TraceReport};

    /// Compiled-out span guard: a zero-sized no-op.
    pub struct Span(());

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// Always [`Level::Off`] (probes compiled out).
    #[inline(always)]
    pub fn level() -> Level {
        Level::Off
    }

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn set_level(_lvl: Level) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn init_from_env_or(_default: Level) {}

    /// Always false (probes compiled out).
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Always false (probes compiled out).
    #[inline(always)]
    pub fn full_enabled() -> bool {
        false
    }

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn record(_name: &'static str, _value: f64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn record_full(_name: &'static str, _value: f64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn reset() {}

    /// Always [`TraceReport::empty`] (probes compiled out).
    #[inline(always)]
    pub fn collect() -> TraceReport {
        TraceReport::empty()
    }
}

pub use imp::{
    collect, counter_add, enabled, full_enabled, init_from_env_or, level, record, record_full,
    reset, set_level, span, Span,
};

#[cfg(test)]
mod collapse_tests {
    use super::*;

    fn stat(path: &str, total_ns: u64) -> SpanStat {
        SpanStat { path: path.to_string(), count: 1, total_ns, min_ns: total_ns, max_ns: total_ns }
    }

    /// Folded output: `/` becomes `;`, values are self time (total
    /// minus direct children), zero-self and over-accounted spans are
    /// omitted, order follows the report's path order.
    #[test]
    fn collapsed_stacks_formatting() {
        let mut r = TraceReport::empty();
        r.spans = vec![
            stat("other", 10),
            stat("solve", 100),
            stat("solve/select", 30),
            stat("solve/select/row", 30), // fully accounts for its parent
            stat("solve/update", 20),
        ];
        assert_eq!(
            r.to_collapsed_stacks(),
            "other 10\nsolve 50\nsolve;select;row 30\nsolve;update 20\n"
        );

        // Child totals exceeding the parent's clamp to zero rather than
        // wrapping.
        r.spans = vec![stat("a", 5), stat("a/b", 9)];
        assert_eq!(r.to_collapsed_stacks(), "a;b 9\n");

        assert_eq!(TraceReport::empty().to_collapsed_stacks(), "");
    }
}

#[cfg(test)]
mod openmetrics_tests {
    use super::*;

    /// Counters map directly; probe dots become metric-name
    /// underscores; the counter sample carries the `_total` suffix.
    #[test]
    fn counters_map_directly() {
        let mut r = TraceReport::empty();
        r.counters = vec![
            CounterStat { name: "svm.smo.iterations".to_string(), value: 42 },
            CounterStat { name: "svm.qcache.hits".to_string(), value: 7 },
        ];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_svm_smo_iterations counter\n\
             edm_svm_smo_iterations_total 42\n\
             # TYPE edm_svm_qcache_hits counter\n\
             edm_svm_qcache_hits_total 7\n\
             # EOF\n"
        );
    }

    /// Power-of-two buckets become cumulative `le` buckets at the
    /// bucket's upper bound `2^(e+1)`, closed by `+Inf`, `_sum`,
    /// `_count`.
    #[test]
    fn histogram_buckets_are_cumulative_le() {
        let mut r = TraceReport::empty();
        r.histograms = vec![HistogramStat {
            name: "t.hist".to_string(),
            count: 4,
            sum: 1035.0,
            min: 0.25,
            max: 1024.0,
            // [2^-3, 2^-2): 1 sample; [2^1, 2^2): 2; [2^10, 2^11): 1
            buckets: vec![(-3, 1), (1, 2), (10, 1)],
        }];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_t_hist histogram\n\
             edm_t_hist_bucket{le=\"0.25\"} 1\n\
             edm_t_hist_bucket{le=\"4\"} 3\n\
             edm_t_hist_bucket{le=\"2048\"} 4\n\
             edm_t_hist_bucket{le=\"+Inf\"} 4\n\
             edm_t_hist_sum 1035\n\
             edm_t_hist_count 4\n\
             # EOF\n"
        );
    }

    /// Spans become two labeled counter families; quotes and
    /// backslashes in paths are escaped per the exposition format.
    #[test]
    fn spans_become_labeled_counters() {
        let mut r = TraceReport::empty();
        r.spans = vec![
            SpanStat { path: "solve".to_string(), count: 2, total_ns: 90, min_ns: 40, max_ns: 50 },
            SpanStat {
                path: "solve/q\"r\\w".to_string(),
                count: 1,
                total_ns: 30,
                min_ns: 30,
                max_ns: 30,
            },
        ];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_span_activations counter\n\
             edm_span_activations_total{path=\"solve\"} 2\n\
             edm_span_activations_total{path=\"solve/q\\\"r\\\\w\"} 1\n\
             # TYPE edm_span_time_ns counter\n\
             edm_span_time_ns_total{path=\"solve\"} 90\n\
             edm_span_time_ns_total{path=\"solve/q\\\"r\\\\w\"} 30\n\
             # EOF\n"
        );
    }

    /// An empty report is just the terminator.
    #[test]
    fn empty_report_is_only_eof() {
        assert_eq!(TraceReport::empty().to_openmetrics(), "# EOF\n");
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    /// One sequential lifecycle test: the registry and level are global,
    /// so interleaved tests would race each other's counts.
    #[test]
    fn lifecycle_spans_counters_histograms_report() {
        set_level(Level::Off);
        reset();

        // Off: nothing records.
        {
            let _s = span("off.span");
            counter_add("off.counter", 5);
            record("off.hist", 1.0);
        }
        let r = collect();
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.histograms.is_empty());
        assert!(r.compiled);
        assert_eq!(r.level, "off");

        // Summary: aggregates but no events.
        set_level(Level::Summary);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                counter_add("t.count", 2);
                counter_add("t.count", 3);
                record("t.hist", 3.5); // exponent 1
                record("t.hist", 1024.0); // exponent 10
                record_full("t.hot", 1.0); // full-only: must not record
            }
            {
                let _inner2 = span("inner");
            }
        }
        let r = collect();
        assert_eq!(r.counter("t.count"), 5);
        assert_eq!(r.span_count("inner"), 2);
        let outer = r.spans.iter().find(|s| s.path == "outer").expect("outer span");
        assert_eq!(outer.count, 1);
        let nested = r.spans.iter().find(|s| s.path == "outer/inner").expect("nested path");
        assert_eq!(nested.count, 2);
        assert!(nested.min_ns <= nested.max_ns && nested.total_ns >= nested.max_ns);
        let h = r.histograms.iter().find(|h| h.name == "t.hist").expect("histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1027.5);
        assert_eq!(h.min, 3.5);
        assert_eq!(h.max, 1024.0);
        assert_eq!(h.buckets, vec![(1, 1), (10, 1)]);
        assert!(r.histograms.iter().all(|h| h.name != "t.hot"), "record_full off at summary");
        assert!(r.events.is_empty(), "no events at summary level");

        // Full: events appear; record_full records.
        set_level(Level::Full);
        {
            let _s = span("full.span");
            record_full("t.hot", 2.0);
        }
        let r = collect();
        assert!(r.events.iter().any(|e| e.path == "full.span"));
        assert_eq!(r.histograms.iter().find(|h| h.name == "t.hot").map(|h| h.count), Some(1));

        // JSON round-trips through the workspace serde_json compat.
        let json = r.to_json().expect("serializable");
        let back: TraceReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, r);

        // Reset clears data but not the level.
        reset();
        let r = collect();
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.events.is_empty());
        assert_eq!(r.level, "full");
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn level_parse_vocabulary() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("  SUMMARY "), Some(Level::Summary));
        assert_eq!(Level::parse("full"), Some(Level::Full));
        assert_eq!(Level::parse("1"), Some(Level::Summary));
        assert_eq!(Level::parse(""), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn empty_report_serializes() {
        let r = TraceReport::empty();
        let json = r.to_json().expect("serializable");
        let back: TraceReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, r);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.span_count("absent"), 0);
    }
}
