//! # edm-trace — telemetry for the edm workspace
//!
//! Zero-external-dependency instrumentation: hierarchical **spans**
//! (RAII guards with monotonic timing), atomic **counters** (optionally
//! labeled), fixed-bucket (power-of-two) **histograms**, and a bounded
//! per-thread **timeline event ring**, aggregated in a global
//! thread-safe registry and exportable as a JSON [`TraceReport`].
//!
//! ## Runtime knob
//!
//! The `EDM_TRACE` environment variable selects the level on first
//! probe hit (or call [`set_level`] / [`init_from_env_or`] explicitly):
//!
//! * `off` (default) — probes are a single relaxed atomic load;
//! * `summary` — counters, span aggregates, histograms;
//! * `full` — additionally the per-thread timeline ring (span
//!   begin/end + counter events) and high-frequency probes
//!   ([`record_full`], e.g. the SMO solver's per-iteration KKT gap
//!   trajectory).
//!
//! ## Timeline ring
//!
//! At `full`, every span begin/end and every unlabeled counter update
//! appends a timestamped event to the calling thread's ring buffer.
//! Rings are bounded (default [`EVENT_CAP`] events per thread,
//! override with `EDM_TRACE_EVENTS` or [`set_event_capacity`]) and
//! **drop-oldest**: a full ring discards its oldest event and counts
//! it in [`TraceReport::dropped_events`]. Timestamps are nanoseconds
//! since the registry epoch, measured with the monotonic
//! [`std::time::Instant`] clock (no ambient wall-clock entropy).
//! Threads can name their ring via [`name_thread`]; `edm-par` workers
//! do this so exported timelines carry worker identities.
//! [`TraceReport::to_chrome_trace`] renders the timeline in the Chrome
//! Trace Event Format, loadable in Perfetto or `chrome://tracing`.
//!
//! ## Compile-time knob
//!
//! With the `trace` cargo feature disabled (workspace
//! `--no-default-features`), every probe in this crate is an inline
//! empty function and the registry is not compiled at all — callers
//! need no `cfg` of their own.
//!
//! ## Probe taxonomy
//!
//! Names are dot-separated `crate.component.metric` (e.g.
//! `svm.smo.iterations`, `par.worker.busy_ns`); span paths additionally
//! nest by call structure with `/` (e.g. `fig05/train/svm.smo.solve`).
//! Labeled forms ([`counter_add_labeled`], [`record_labeled`]) attach
//! `key="value"` dimensions (e.g. per-model, per-endpoint) that
//! surface as OpenMetrics labels.
//!
//! ## Adding a probe
//!
//! ```
//! let _span = edm_trace::span("myflow.stage");   // timed until drop
//! edm_trace::counter_add("myflow.widgets", 3);
//! edm_trace::record("myflow.latency_ns", 1234.0);
//! edm_trace::counter_add_labeled("myflow.requests", &[("model", "svc")], 1);
//! ```
//!
//! Probes must never perturb numerics: they may observe values but not
//! change control flow or floating-point results (property-tested at
//! the workspace root: models train bitwise-identically at `full` vs
//! `off`).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Telemetry level, in increasing order of detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Probes disabled (one relaxed atomic load each).
    Off,
    /// Counters, span aggregates, histograms.
    Summary,
    /// Summary plus the per-thread timeline ring and high-frequency
    /// [`record_full`] probes.
    Full,
}

impl Level {
    /// Canonical lowercase name (the `EDM_TRACE` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Full => "full",
        }
    }

    /// Parses an `EDM_TRACE` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(Level::Off),
            "summary" | "1" | "on" => Some(Level::Summary),
            "full" | "2" => Some(Level::Full),
            _ => None,
        }
    }
}

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// `/`-joined hierarchical path (nesting by call structure).
    pub path: String,
    /// Completed activations.
    pub count: u64,
    /// Total wall time across activations, nanoseconds.
    pub total_ns: u64,
    /// Shortest activation, nanoseconds.
    pub min_ns: u64,
    /// Longest activation, nanoseconds.
    pub max_ns: u64,
}

/// One named monotonic counter (one row per distinct label set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Probe name (`crate.component.metric`).
    pub name: String,
    /// Label dimensions as `(key, value)` pairs, sorted by key; empty
    /// for unlabeled counters.
    pub labels: Vec<(String, String)>,
    /// Accumulated value.
    pub value: u64,
}

/// One fixed-bucket histogram: buckets are powers of two, bucket
/// exponent `e` covering `[2^e, 2^(e+1))`, clamped to `e ∈ [−32, 31]`
/// (non-positive samples land in the lowest bucket). One row per
/// distinct label set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Probe name.
    pub name: String,
    /// Label dimensions as `(key, value)` pairs, sorted by key; empty
    /// for unlabeled histograms.
    pub labels: Vec<(String, String)>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(exponent, count)` pairs, ascending.
    pub buckets: Vec<(i64, u64)>,
}

/// Phase of one timeline event, mirroring the Chrome Trace Event
/// Format `ph` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names ARE the Chrome `ph` vocabulary
pub enum EventKind {
    /// A span opened.
    B,
    /// A span closed.
    E,
    /// A counter changed; `value` is the new cumulative total.
    C,
}

/// One timestamped event from a thread's timeline ring
/// ([`Level::Full`] only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Recording thread's id (registration ordinal; see
    /// [`TraceReport::threads`] for names).
    pub tid: u64,
    /// Event phase.
    pub ph: EventKind,
    /// Span leaf name ([`EventKind::B`]/[`EventKind::E`]) or
    /// counter name ([`EventKind::C`]).
    pub name: String,
    /// Nanoseconds since the registry epoch (monotonic clock).
    pub ts_ns: u64,
    /// Cumulative counter value for [`EventKind::C`]; 0 otherwise.
    pub value: f64,
}

/// Identity of one thread that recorded timeline events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// Thread id as it appears in [`TimelineEvent::tid`].
    pub tid: u64,
    /// Human-readable name (set via [`name_thread`], or `thread-<tid>`).
    pub name: String,
}

/// Default per-thread timeline ring capacity at [`Level::Full`];
/// override with `EDM_TRACE_EVENTS` or [`set_event_capacity`]. A full
/// ring drops its **oldest** event and counts it in
/// [`TraceReport::dropped_events`].
pub const EVENT_CAP: usize = 8192;

/// A point-in-time snapshot of the registry, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Level at snapshot time (`"off"`, `"summary"`, `"full"`; probes
    /// compiled out report `"off"`).
    pub level: String,
    /// Whether probe machinery was compiled in (the `trace` feature).
    pub compiled: bool,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name then labels.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name then labels.
    pub histograms: Vec<HistogramStat>,
    /// Timeline ring contents ([`Level::Full`] only), ordered by
    /// thread id, then append order (timestamps are monotone
    /// non-decreasing within a thread).
    pub timeline: Vec<TimelineEvent>,
    /// Threads contributing timeline events, sorted by id.
    pub threads: Vec<ThreadInfo>,
    /// Timeline events discarded (drop-oldest) after a thread's ring
    /// filled.
    pub dropped_events: u64,
}

impl TraceReport {
    /// A report with no data (the compiled-out and freshly-reset states).
    pub fn empty() -> Self {
        TraceReport {
            level: Level::Off.as_str().to_string(),
            compiled: compiled(),
            spans: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
            timeline: Vec::new(),
            threads: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Serializes to compact JSON.
    ///
    /// # Errors
    ///
    /// Propagates the (practically unreachable: all floats stored are
    /// finite) serializer error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// The value of counter `name` summed across its label sets, or 0
    /// if it never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// Sum of `count` over spans whose path's last `/`-segment equals
    /// `leaf` (a span may appear under several parent paths).
    pub fn span_count(&self, leaf: &str) -> u64 {
        self.spans.iter().filter(|s| s.path.rsplit('/').next() == Some(leaf)).map(|s| s.count).sum()
    }

    /// Renders the span aggregates in Brendan Gregg's collapsed-stack
    /// ("folded") format, one `stack;frames self_ns` line per span,
    /// ready for `flamegraph.pl` / `inferno-flamegraph`.
    ///
    /// The sample value of each line is the span's **self** time: its
    /// `total_ns` minus the `total_ns` of its direct children (clamped
    /// at zero, since child totals can slightly exceed the parent's
    /// when activations straddle the snapshot). Spans fully accounted
    /// for by their children produce no line, per the format's
    /// convention. Lines appear in path order, so the output is
    /// deterministic for a given report.
    pub fn to_collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let child_total: u64 = self
                .spans
                .iter()
                .filter(|c| {
                    c.path
                        .strip_prefix(&s.path)
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|leaf| !leaf.contains('/'))
                })
                .map(|c| c.total_ns)
                .sum();
            let self_ns = s.total_ns.saturating_sub(child_total);
            if self_ns > 0 {
                out.push_str(&s.path.replace('/', ";"));
                out.push(' ');
                out.push_str(&self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the timeline ring in the Chrome Trace Event Format
    /// (JSON object form), loadable in Perfetto / `chrome://tracing`.
    ///
    /// * Each [`ThreadInfo`] becomes a `ph:"M"` `thread_name` metadata
    ///   event, so `edm-par` worker identities label the tracks.
    /// * [`EventKind::B`]/[`EventKind::E`] map to duration events
    ///   `ph:"B"`/`ph:"E"`; [`EventKind::C`] maps to `ph:"C"`
    ///   with the cumulative value in `args.value`.
    /// * Timestamps are microseconds (`ts_ns / 1000`, 3 decimals kept).
    /// * Nesting is sanitized per thread: an `E` whose opening `B` was
    ///   dropped from the ring is skipped, so begin/end pairing is
    ///   always well-formed. Unclosed `B`s (spans still open at
    ///   snapshot time) are legal in the format and kept.
    ///
    /// Output is deterministic for a given report.
    pub fn to_chrome_trace(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut events: Vec<String> = Vec::with_capacity(self.threads.len() + self.timeline.len());
        for t in &self.threads {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                esc(&t.name)
            ));
        }
        let mut depth: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &self.timeline {
            let ts_us = e.ts_ns as f64 / 1000.0;
            match e.ph {
                EventKind::B => {
                    *depth.entry(e.tid).or_insert(0) += 1;
                    events.push(format!(
                        "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\"}}",
                        e.tid,
                        ts_us,
                        esc(&e.name)
                    ));
                }
                EventKind::E => {
                    let d = depth.entry(e.tid).or_insert(0);
                    if *d == 0 {
                        // The matching B fell off the ring; emitting
                        // this E would corrupt the track's nesting.
                        continue;
                    }
                    *d -= 1;
                    events.push(format!(
                        "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\"}}",
                        e.tid,
                        ts_us,
                        esc(&e.name)
                    ));
                }
                EventKind::C => {
                    events.push(format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\",\
                         \"args\":{{\"value\":{}}}}}",
                        e.tid,
                        ts_us,
                        esc(&e.name),
                        e.value
                    ));
                }
            }
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Renders the registry snapshot in the OpenMetrics text
    /// exposition format, **without** the `# EOF` terminator — for
    /// callers (like `edm-serve`) that append their own families
    /// before closing the exposition. [`TraceReport::to_openmetrics`]
    /// is the self-terminating form.
    ///
    /// * Counters map directly: probe `svm.smo.iterations` becomes the
    ///   family `edm_svm_smo_iterations` with one `_total` sample per
    ///   label set (`# TYPE` emitted once per family).
    /// * Power-of-two histograms map to cumulative `le` buckets: the
    ///   bucket with exponent `e` covers `[2^e, 2^(e+1))`, so its upper
    ///   bound is `le="2^(e+1)"`; `_sum`, `_count`, and the mandatory
    ///   `le="+Inf"` bucket follow. Probe labels precede `le`.
    /// * Span aggregates become two labeled counter families,
    ///   `edm_span_activations` and `edm_span_time_ns`, with the
    ///   hierarchical path as the `path` label.
    ///
    /// Output is deterministic for a given report (families in the
    /// report's sorted order).
    pub fn openmetrics_body(&self) -> String {
        fn metric_name(probe: &str) -> String {
            let mut name = String::with_capacity(probe.len() + 4);
            name.push_str("edm_");
            for c in probe.chars() {
                name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            name
        }
        fn label_value(path: &str) -> String {
            path.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        fn label_set(labels: &[(String, String)]) -> String {
            if labels.is_empty() {
                return String::new();
            }
            let inner: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{}\"", label_value(v))).collect();
            format!("{{{}}}", inner.join(","))
        }
        fn labels_with_le(labels: &[(String, String)], le: &str) -> String {
            let mut inner: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{}\"", label_value(v))).collect();
            inner.push(format!("le=\"{le}\""));
            format!("{{{}}}", inner.join(","))
        }
        let mut out = String::new();
        for (i, c) in self.counters.iter().enumerate() {
            let name = metric_name(&c.name);
            if i == 0 || self.counters[i - 1].name != c.name {
                out.push_str(&format!("# TYPE {name} counter\n"));
            }
            out.push_str(&format!("{name}_total{} {}\n", label_set(&c.labels), c.value));
        }
        for (i, h) in self.histograms.iter().enumerate() {
            let name = metric_name(&h.name);
            if i == 0 || self.histograms[i - 1].name != h.name {
                out.push_str(&format!("# TYPE {name} histogram\n"));
            }
            let mut cumulative = 0u64;
            for &(exponent, count) in &h.buckets {
                cumulative += count;
                let le = 2f64.powi(exponent as i32 + 1);
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    labels_with_le(&h.labels, &le.to_string())
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{} {}\n",
                labels_with_le(&h.labels, "+Inf"),
                h.count
            ));
            let set = label_set(&h.labels);
            out.push_str(&format!("{name}_sum{set} {}\n{name}_count{set} {}\n", h.sum, h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE edm_span_activations counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "edm_span_activations_total{{path=\"{}\"}} {}\n",
                    label_value(&s.path),
                    s.count
                ));
            }
            out.push_str("# TYPE edm_span_time_ns counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "edm_span_time_ns_total{{path=\"{}\"}} {}\n",
                    label_value(&s.path),
                    s.total_ns
                ));
            }
        }
        out
    }

    /// Renders the registry snapshot in the OpenMetrics text
    /// exposition format for scrape-based monitoring, ending with the
    /// mandatory `# EOF` terminator. See
    /// [`TraceReport::openmetrics_body`] for the family mapping.
    pub fn to_openmetrics(&self) -> String {
        let mut out = self.openmetrics_body();
        out.push_str("# EOF\n");
        out
    }
}

/// True when the probe machinery is compiled in (`trace` feature).
pub const fn compiled() -> bool {
    cfg!(feature = "trace")
}

// edm-allow-file(unordered-iteration): the registry maps are keyed by
// probe name for O(1) hot-path updates and are only ever iterated by
// snapshot(), which sorts every family by name before reporting.
#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use edm_sync::{DbgMutex, SyncEvent};
    use std::cell::RefCell;
    use std::collections::{HashMap, VecDeque};
    use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, Once, OnceLock};
    use std::time::Instant;

    const UNINIT: u8 = u8::MAX;
    static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
    static ENV_WARN: Once = Once::new();

    fn level_from_u8(v: u8) -> Level {
        match v {
            1 => Level::Summary,
            2 => Level::Full,
            _ => Level::Off,
        }
    }

    /// Current level, initializing from `EDM_TRACE` on first use.
    pub fn level() -> Level {
        let v = LEVEL.load(Ordering::Relaxed);
        if v == UNINIT {
            init_level_from_env()
        } else {
            level_from_u8(v)
        }
    }

    #[cold]
    fn init_level_from_env() -> Level {
        let lvl = match std::env::var("EDM_TRACE") {
            Ok(s) => Level::parse(&s).unwrap_or_else(|| {
                ENV_WARN.call_once(|| {
                    eprintln!(
                        "edm-trace: unrecognized EDM_TRACE value {s:?} \
                         (expected off|summary|full); tracing stays off"
                    );
                });
                Level::Off
            }),
            Err(_) => Level::Off,
        };
        LEVEL.store(lvl as u8, Ordering::Relaxed);
        lvl
    }

    /// Sets the level programmatically (overrides `EDM_TRACE`).
    pub fn set_level(lvl: Level) {
        LEVEL.store(lvl as u8, Ordering::Relaxed);
    }

    /// Initializes the level from `EDM_TRACE` when set and parseable,
    /// else to `default`. Harness entry points call this so their run
    /// manifests have data even when the variable is unset.
    pub fn init_from_env_or(default: Level) {
        let lvl = std::env::var("EDM_TRACE").ok().and_then(|s| Level::parse(&s)).unwrap_or(default);
        set_level(lvl);
    }

    /// True when probes record (level ≥ `summary`). The disabled path
    /// is this one relaxed atomic load.
    #[inline]
    pub fn enabled() -> bool {
        level() != Level::Off
    }

    /// True when high-frequency probes record (level = `full`).
    #[inline]
    pub fn full_enabled() -> bool {
        level() == Level::Full
    }

    const CAP_UNINIT: usize = usize::MAX;
    static EVENT_CAPACITY: AtomicUsize = AtomicUsize::new(CAP_UNINIT);

    /// Per-thread timeline ring capacity, initializing from
    /// `EDM_TRACE_EVENTS` on first use ([`EVENT_CAP`] default).
    pub fn event_capacity() -> usize {
        let v = EVENT_CAPACITY.load(Ordering::Relaxed);
        if v != CAP_UNINIT {
            return v;
        }
        init_event_capacity()
    }

    #[cold]
    fn init_event_capacity() -> usize {
        let cap = std::env::var("EDM_TRACE_EVENTS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(EVENT_CAP)
            .min(CAP_UNINIT - 1);
        EVENT_CAPACITY.store(cap, Ordering::Relaxed);
        cap
    }

    /// Sets the per-thread timeline ring capacity programmatically
    /// (overrides `EDM_TRACE_EVENTS`; 0 drops every event). Applies to
    /// subsequent pushes; existing rings shrink lazily.
    pub fn set_event_capacity(cap: usize) {
        EVENT_CAPACITY.store(cap.min(CAP_UNINIT - 1), Ordering::Relaxed);
    }

    #[derive(Default)]
    struct SpanAgg {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    struct Hist {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        buckets: [u64; 64],
    }

    impl Hist {
        fn new() -> Self {
            Hist {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                buckets: [0; 64],
            }
        }
    }

    /// Bucket index for value `v`: exponent `floor(log2 v)` clamped to
    /// `[−32, 31]`, offset by 32. Non-positive and non-finite-negative
    /// samples land in bucket 0.
    fn bucket_index(v: f64) -> usize {
        if v > 0.0 {
            (v.log2().floor().clamp(-32.0, 31.0) as i64 + 32) as usize
        } else {
            0
        }
    }

    /// Canonical label key: owned pairs sorted by key so call-site
    /// argument order never splits a series.
    fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut owned: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        owned.sort();
        owned
    }

    #[derive(Clone, Copy)]
    struct RingEvent {
        ph: EventKind,
        name: &'static str,
        ts_ns: u64,
        value: f64,
    }

    struct RingBuf {
        buf: VecDeque<RingEvent>,
        dropped: u64,
    }

    struct Shard {
        tid: u64,
        label: Mutex<String>,
        ring: Mutex<RingBuf>,
    }

    type ProbeKey = (&'static str, Vec<(String, String)>);

    // Registry cells are `Arc`'d so pre-resolved probe handles
    // ([`counter_handle`] & co.) can update a series with one atomic or
    // one short per-series lock instead of taking the global registry
    // mutex (and re-hashing the name) on every hot-path event.
    struct Registry {
        epoch: Instant,
        spans: DbgMutex<HashMap<String, Arc<Mutex<SpanAgg>>>>,
        counters: DbgMutex<HashMap<ProbeKey, Arc<AtomicU64>>>,
        hists: DbgMutex<HashMap<ProbeKey, Arc<Mutex<Hist>>>>,
        shards: DbgMutex<Vec<Arc<Shard>>>,
        next_tid: AtomicU64,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            // The debug sync layer's warnings become trace counters, so
            // held-too-long locks and order inversions show up in run
            // manifests and the `/metrics` exposition (the hook runs
            // under edm-sync's reentrancy latch, so its own registry
            // locks are never re-checked).
            edm_sync::set_report_hook(Box::new(|event| match event {
                SyncEvent::HeldTooLong { .. } => counter_add("sync.lock.held_too_long", 1),
                SyncEvent::OrderInversion { .. } => counter_add("sync.lock.order_warnings", 1),
            }));
            Registry {
                epoch: Instant::now(),
                spans: DbgMutex::new("trace.registry.spans", HashMap::new()),
                counters: DbgMutex::new("trace.registry.counters", HashMap::new()),
                hists: DbgMutex::new("trace.registry.hists", HashMap::new()),
                shards: DbgMutex::new("trace.registry.shards", Vec::new()),
                next_tid: AtomicU64::new(0),
            }
        })
    }

    fn now_ns(reg: &Registry) -> u64 {
        reg.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    thread_local! {
        static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        static SHARD: RefCell<Option<Arc<Shard>>> = const { RefCell::new(None) };
        static PENDING_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// The calling thread's ring shard, created (and registered
    /// globally, so it outlives the thread) on first use.
    fn shard_for_thread() -> Arc<Shard> {
        SHARD.with(|s| {
            let mut slot = s.borrow_mut();
            if let Some(shard) = slot.as_ref() {
                return shard.clone();
            }
            let reg = registry();
            let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
            let label = PENDING_LABEL
                .with(|p| p.borrow_mut().take())
                .unwrap_or_else(|| format!("thread-{tid}"));
            let shard = Arc::new(Shard {
                tid,
                label: Mutex::new(label),
                ring: Mutex::new(RingBuf { buf: VecDeque::new(), dropped: 0 }),
            });
            reg.shards.lock().expect("shard registry poisoned").push(shard.clone());
            *slot = Some(shard.clone());
            shard
        })
    }

    /// Names the calling thread's timeline ring (shown as the track
    /// name in Chrome-trace exports). `edm-par` workers call this at
    /// spawn; harness mains may too. Cheap and safe at any level.
    pub fn name_thread(label: &str) {
        let existing = SHARD.with(|s| s.borrow().clone());
        match existing {
            Some(shard) => {
                *shard.label.lock().expect("shard label poisoned") = label.to_string();
            }
            None => PENDING_LABEL.with(|p| *p.borrow_mut() = Some(label.to_string())),
        }
    }

    fn push_event(ph: EventKind, name: &'static str, ts_ns: u64, value: f64) {
        let cap = event_capacity();
        let shard = shard_for_thread();
        let mut ring = shard.ring.lock().expect("ring poisoned");
        if cap == 0 {
            ring.dropped += 1;
            return;
        }
        while ring.buf.len() + 1 > cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(RingEvent { ph, name, ts_ns, value });
    }

    struct ActiveSpan {
        path: String,
        name: &'static str,
        depth: usize,
        start: Instant,
    }

    /// RAII span guard: times from creation to drop and records under
    /// the hierarchical path current at creation. Obtain via [`span`].
    pub struct Span(Option<ActiveSpan>);

    fn span_agg_update(agg: &Mutex<SpanAgg>, dur_ns: u64) {
        let mut agg = agg.lock().expect("span series poisoned");
        if agg.count == 0 {
            agg.min_ns = dur_ns;
            agg.max_ns = dur_ns;
        } else {
            agg.min_ns = agg.min_ns.min(dur_ns);
            agg.max_ns = agg.max_ns.max(dur_ns);
        }
        agg.count += 1;
        agg.total_ns += dur_ns;
    }

    fn span_cell(path: String) -> Arc<Mutex<SpanAgg>> {
        let mut spans = registry().spans.lock().expect("span registry poisoned");
        Arc::clone(spans.entry(path).or_default())
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(active) = self.0.take() else { return };
            let dur_ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                s.truncate(active.depth.saturating_sub(1));
            });
            span_agg_update(&span_cell(active.path), dur_ns);
            if full_enabled() {
                push_event(EventKind::E, active.name, now_ns(registry()), 0.0);
            }
        }
    }

    /// Opens a span named `name`, nested under any span already open on
    /// this thread. Off-level cost: one relaxed atomic load.
    pub fn span(name: &'static str) -> Span {
        if !enabled() {
            return Span(None);
        }
        let (path, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            (s.join("/"), s.len())
        });
        if full_enabled() {
            push_event(EventKind::B, name, now_ns(registry()), 0.0);
        }
        Span(Some(ActiveSpan { path, name, depth, start: Instant::now() }))
    }

    /// Adds `delta` to counter `name`. Off-level cost: one relaxed
    /// atomic load. At [`Level::Full`] also appends a timeline event
    /// carrying the new cumulative value.
    pub fn counter_add(name: &'static str, delta: u64) {
        if !enabled() {
            return;
        }
        let reg = registry();
        let cell = {
            let mut counters = reg.counters.lock().expect("counter registry poisoned");
            Arc::clone(counters.entry((name, Vec::new())).or_default())
        };
        let cumulative = cell.fetch_add(delta, Ordering::Relaxed) + delta;
        if full_enabled() {
            push_event(EventKind::C, name, now_ns(reg), cumulative as f64);
        }
    }

    /// Adds `delta` to counter `name` under the given label set (e.g.
    /// `&[("model", "svc"), ("endpoint", "predict")]`). Label order is
    /// canonicalized, so call sites may list keys in any order.
    /// Labeled counters do not emit timeline events.
    pub fn counter_add_labeled(name: &'static str, labels: &[(&str, &str)], delta: u64) {
        if !enabled() {
            return;
        }
        let key = canonical_labels(labels);
        let cell = {
            let mut counters = registry().counters.lock().expect("counter registry poisoned");
            Arc::clone(counters.entry((name, key)).or_default())
        };
        cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Records `value` into histogram `name`. Off-level cost: one
    /// relaxed atomic load.
    pub fn record(name: &'static str, value: f64) {
        if !enabled() {
            return;
        }
        record_inner(name, Vec::new(), value);
    }

    /// Records `value` into histogram `name` under the given label set.
    /// Label order is canonicalized, so call sites may list keys in any
    /// order.
    pub fn record_labeled(name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !enabled() {
            return;
        }
        record_inner(name, canonical_labels(labels), value);
    }

    /// Records `value` into histogram `name` only at [`Level::Full`] —
    /// for high-frequency probes (per-iteration trajectories) too hot
    /// for `summary` runs.
    pub fn record_full(name: &'static str, value: f64) {
        if !full_enabled() {
            return;
        }
        record_inner(name, Vec::new(), value);
    }

    fn hist_update(cell: &Mutex<Hist>, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut h = cell.lock().expect("histogram series poisoned");
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[bucket_index(value)] += 1;
    }

    fn hist_cell(name: &'static str, labels: Vec<(String, String)>) -> Arc<Mutex<Hist>> {
        let mut hists = registry().hists.lock().expect("histogram registry poisoned");
        Arc::clone(hists.entry((name, labels)).or_insert_with(|| Arc::new(Mutex::new(Hist::new()))))
    }

    fn record_inner(name: &'static str, labels: Vec<(String, String)>, value: f64) {
        hist_update(&hist_cell(name, labels), value);
    }

    /// Pre-resolved counter series: [`CounterHandle::add`] is one
    /// relaxed atomic add — no registry lock, no label allocation. For
    /// hot paths (per-request serving loops); resolve once, reuse.
    ///
    /// The handle stays wired to [`collect`] reports for its lifetime.
    /// [`reset`] zeroes the series in place when a handle is live.
    #[derive(Clone)]
    pub struct CounterHandle(Arc<AtomicU64>);

    impl CounterHandle {
        /// Adds `delta` when tracing is enabled (one atomic add).
        #[inline]
        pub fn add(&self, delta: u64) {
            if enabled() {
                self.0.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    /// Resolves a [`CounterHandle`] for `name` + `labels` (one registry
    /// lock, here, once).
    pub fn counter_handle(name: &'static str, labels: &[(&str, &str)]) -> CounterHandle {
        let key = canonical_labels(labels);
        let mut counters = registry().counters.lock().expect("counter registry poisoned");
        CounterHandle(Arc::clone(counters.entry((name, key)).or_default()))
    }

    /// Pre-resolved histogram series: [`HistHandle::record`] takes one
    /// short per-series lock — no registry lock, no label allocation.
    #[derive(Clone)]
    pub struct HistHandle(Arc<Mutex<Hist>>);

    impl HistHandle {
        /// Records `value` when tracing is enabled.
        #[inline]
        pub fn record(&self, value: f64) {
            if enabled() {
                hist_update(&self.0, value);
            }
        }
    }

    /// Resolves a [`HistHandle`] for `name` + `labels` (one registry
    /// lock, here, once).
    pub fn hist_handle(name: &'static str, labels: &[(&str, &str)]) -> HistHandle {
        HistHandle(hist_cell(name, canonical_labels(labels)))
    }

    /// Pre-resolved span series for a *top-level* hot-path span (the
    /// recorded path is `name` alone, with no parent prefix — resolve
    /// handles only for spans opened at the top of a thread's stack,
    /// e.g. a server worker's per-request span). Children opened inside
    /// a running [`HandleSpan`] still nest under `name` normally.
    #[derive(Clone)]
    pub struct SpanHandle {
        name: &'static str,
        agg: Arc<Mutex<SpanAgg>>,
    }

    impl SpanHandle {
        /// Opens the span; timing stops when the guard drops.
        pub fn start(&self) -> HandleSpan {
            if !enabled() {
                return HandleSpan(None);
            }
            let depth = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                s.push(self.name);
                s.len()
            });
            if full_enabled() {
                push_event(EventKind::B, self.name, now_ns(registry()), 0.0);
            }
            HandleSpan(Some(ActiveHandleSpan {
                agg: Arc::clone(&self.agg),
                name: self.name,
                depth,
                start: Instant::now(),
            }))
        }
    }

    /// Resolves a [`SpanHandle`] for top-level span `name`.
    pub fn span_handle(name: &'static str) -> SpanHandle {
        SpanHandle { name, agg: span_cell(name.to_string()) }
    }

    struct ActiveHandleSpan {
        agg: Arc<Mutex<SpanAgg>>,
        name: &'static str,
        depth: usize,
        start: Instant,
    }

    /// RAII guard for a [`SpanHandle`] span.
    pub struct HandleSpan(Option<ActiveHandleSpan>);

    impl Drop for HandleSpan {
        fn drop(&mut self) {
            let Some(active) = self.0.take() else { return };
            let dur_ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                s.truncate(active.depth.saturating_sub(1));
            });
            span_agg_update(&active.agg, dur_ns);
            if full_enabled() {
                push_event(EventKind::E, active.name, now_ns(registry()), 0.0);
            }
        }
    }

    /// Clears all spans, counters, histograms, and timeline rings (the
    /// level, ring capacity, and thread names are untouched). Harnesses
    /// call this between measured sections.
    pub fn reset() {
        let reg = registry();
        // Series with live probe handles are zeroed in place (dropping
        // them would silently detach the handle from future reports);
        // everything else is removed.
        reg.spans.lock().expect("span registry poisoned").retain(|_, cell| {
            if Arc::strong_count(cell) > 1 {
                *cell.lock().expect("span series poisoned") = SpanAgg::default();
                true
            } else {
                false
            }
        });
        reg.counters.lock().expect("counter registry poisoned").retain(|_, cell| {
            if Arc::strong_count(cell) > 1 {
                cell.store(0, Ordering::Relaxed);
                true
            } else {
                false
            }
        });
        reg.hists.lock().expect("histogram registry poisoned").retain(|_, cell| {
            if Arc::strong_count(cell) > 1 {
                *cell.lock().expect("histogram series poisoned") = Hist::new();
                true
            } else {
                false
            }
        });
        let shards = reg.shards.lock().expect("shard registry poisoned");
        for shard in shards.iter() {
            let mut ring = shard.ring.lock().expect("ring poisoned");
            ring.buf.clear();
            ring.dropped = 0;
        }
    }

    /// Snapshots the registry into a sorted, serializable report. When
    /// any timeline events were dropped, a synthetic
    /// `trace.ring.dropped` counter carries the total.
    pub fn collect() -> TraceReport {
        let reg = registry();
        // Span/histogram series that have never recorded an event are
        // skipped: resolving a handle merely *wires* a series, it
        // should not make an all-zero row appear in reports. (Counters
        // keep zero rows — a zero cumulative counter is meaningful.)
        let mut spans: Vec<SpanStat> = reg
            .spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(path, cell)| {
                let a = cell.lock().expect("span series poisoned");
                SpanStat {
                    path: path.clone(),
                    count: a.count,
                    total_ns: a.total_ns,
                    min_ns: a.min_ns,
                    max_ns: a.max_ns,
                }
            })
            .filter(|s| s.count > 0)
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        let mut counters: Vec<CounterStat> = reg
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|((name, labels), cell)| CounterStat {
                name: name.to_string(),
                labels: labels.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let mut histograms: Vec<HistogramStat> = reg
            .hists
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|((name, labels), cell)| {
                let h = cell.lock().expect("histogram series poisoned");
                HistogramStat {
                    name: name.to_string(),
                    labels: labels.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0.0 } else { h.min },
                    max: if h.count == 0 { 0.0 } else { h.max },
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| (i as i64 - 32, c))
                        .collect(),
                }
            })
            .filter(|h| h.count > 0)
            .collect();
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let (timeline, threads, dropped_events) = {
            let mut shards: Vec<Arc<Shard>> =
                reg.shards.lock().expect("shard registry poisoned").clone();
            shards.sort_by_key(|s| s.tid);
            let mut timeline = Vec::new();
            let mut threads = Vec::new();
            let mut dropped = 0u64;
            for shard in &shards {
                let ring = shard.ring.lock().expect("ring poisoned");
                dropped += ring.dropped;
                if ring.buf.is_empty() && ring.dropped == 0 {
                    continue;
                }
                threads.push(ThreadInfo {
                    tid: shard.tid,
                    name: shard.label.lock().expect("shard label poisoned").clone(),
                });
                timeline.extend(ring.buf.iter().map(|e| TimelineEvent {
                    tid: shard.tid,
                    ph: e.ph,
                    name: e.name.to_string(),
                    ts_ns: e.ts_ns,
                    value: e.value,
                }));
            }
            (timeline, threads, dropped)
        };
        if dropped_events > 0 {
            counters.push(CounterStat {
                name: "trace.ring.dropped".to_string(),
                labels: Vec::new(),
                value: dropped_events,
            });
        }
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        TraceReport {
            level: level().as_str().to_string(),
            compiled: true,
            spans,
            counters,
            histograms,
            timeline,
            threads,
            dropped_events,
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{Level, TraceReport, EVENT_CAP};

    /// Compiled-out span guard: a zero-sized no-op.
    pub struct Span(());

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// Always [`Level::Off`] (probes compiled out).
    #[inline(always)]
    pub fn level() -> Level {
        Level::Off
    }

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn set_level(_lvl: Level) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn init_from_env_or(_default: Level) {}

    /// Always false (probes compiled out).
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Always false (probes compiled out).
    #[inline(always)]
    pub fn full_enabled() -> bool {
        false
    }

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn counter_add_labeled(_name: &'static str, _labels: &[(&str, &str)], _delta: u64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn record(_name: &'static str, _value: f64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn record_labeled(_name: &'static str, _labels: &[(&str, &str)], _value: f64) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn record_full(_name: &'static str, _value: f64) {}

    /// Compiled-out counter handle: a zero-sized no-op.
    #[derive(Clone)]
    pub struct CounterHandle(());

    impl CounterHandle {
        /// No-op (probes compiled out).
        #[inline(always)]
        pub fn add(&self, _delta: u64) {}
    }

    /// No-op handle (probes compiled out).
    #[inline(always)]
    pub fn counter_handle(_name: &'static str, _labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle(())
    }

    /// Compiled-out histogram handle: a zero-sized no-op.
    #[derive(Clone)]
    pub struct HistHandle(());

    impl HistHandle {
        /// No-op (probes compiled out).
        #[inline(always)]
        pub fn record(&self, _value: f64) {}
    }

    /// No-op handle (probes compiled out).
    #[inline(always)]
    pub fn hist_handle(_name: &'static str, _labels: &[(&str, &str)]) -> HistHandle {
        HistHandle(())
    }

    /// Compiled-out span handle: a zero-sized no-op.
    #[derive(Clone)]
    pub struct SpanHandle(());

    impl SpanHandle {
        /// No-op (probes compiled out).
        #[inline(always)]
        pub fn start(&self) -> HandleSpan {
            HandleSpan(())
        }
    }

    /// No-op handle (probes compiled out).
    #[inline(always)]
    pub fn span_handle(_name: &'static str) -> SpanHandle {
        SpanHandle(())
    }

    /// Compiled-out span guard: a zero-sized no-op.
    pub struct HandleSpan(());

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn name_thread(_label: &str) {}

    /// Always [`EVENT_CAP`] (probes compiled out).
    #[inline(always)]
    pub fn event_capacity() -> usize {
        EVENT_CAP
    }

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn set_event_capacity(_cap: usize) {}

    /// No-op (probes compiled out).
    #[inline(always)]
    pub fn reset() {}

    /// Always [`TraceReport::empty`] (probes compiled out).
    #[inline(always)]
    pub fn collect() -> TraceReport {
        TraceReport::empty()
    }
}

pub use imp::{
    collect, counter_add, counter_add_labeled, counter_handle, enabled, event_capacity,
    full_enabled, hist_handle, init_from_env_or, level, name_thread, record, record_full,
    record_labeled, reset, set_event_capacity, set_level, span, span_handle, CounterHandle,
    HandleSpan, HistHandle, Span, SpanHandle,
};

#[cfg(test)]
mod collapse_tests {
    use super::*;

    fn stat(path: &str, total_ns: u64) -> SpanStat {
        SpanStat { path: path.to_string(), count: 1, total_ns, min_ns: total_ns, max_ns: total_ns }
    }

    /// Folded output: `/` becomes `;`, values are self time (total
    /// minus direct children), zero-self and over-accounted spans are
    /// omitted, order follows the report's path order.
    #[test]
    fn collapsed_stacks_formatting() {
        let mut r = TraceReport::empty();
        r.spans = vec![
            stat("other", 10),
            stat("solve", 100),
            stat("solve/select", 30),
            stat("solve/select/row", 30), // fully accounts for its parent
            stat("solve/update", 20),
        ];
        assert_eq!(
            r.to_collapsed_stacks(),
            "other 10\nsolve 50\nsolve;select;row 30\nsolve;update 20\n"
        );

        // Child totals exceeding the parent's clamp to zero rather than
        // wrapping.
        r.spans = vec![stat("a", 5), stat("a/b", 9)];
        assert_eq!(r.to_collapsed_stacks(), "a;b 9\n");

        assert_eq!(TraceReport::empty().to_collapsed_stacks(), "");
    }
}

#[cfg(test)]
mod chrome_trace_tests {
    use super::*;

    fn ev(tid: u64, ph: EventKind, name: &str, ts_ns: u64, value: f64) -> TimelineEvent {
        TimelineEvent { tid, ph, name: name.to_string(), ts_ns, value }
    }

    /// Threads become `M` metadata rows; B/E/C events carry µs
    /// timestamps; names are JSON-escaped.
    #[test]
    fn chrome_trace_formatting() {
        let mut r = TraceReport::empty();
        r.threads = vec![ThreadInfo { tid: 0, name: "main".to_string() }];
        r.timeline = vec![
            ev(0, EventKind::B, "solve", 1500, 0.0),
            ev(0, EventKind::C, "iters", 2000, 42.0),
            ev(0, EventKind::E, "solve", 2500, 0.0),
        ];
        assert_eq!(
            r.to_chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"main\"}},\
             {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"name\":\"solve\"},\
             {\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2.000,\"name\":\"iters\",\
             \"args\":{\"value\":42}},\
             {\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":2.500,\"name\":\"solve\"}]}"
        );
    }

    /// An `E` whose opening `B` fell off the ring is skipped so the
    /// exported track nests cleanly; unclosed `B`s are kept.
    #[test]
    fn chrome_trace_sanitizes_dangling_ends() {
        let mut r = TraceReport::empty();
        r.timeline = vec![
            ev(3, EventKind::E, "lost", 100, 0.0), // opener dropped
            ev(3, EventKind::B, "kept", 200, 0.0),
            ev(3, EventKind::E, "kept", 300, 0.0),
            ev(3, EventKind::B, "open", 400, 0.0), // still open
        ];
        let out = r.to_chrome_trace();
        assert!(!out.contains("lost"), "dangling E must be skipped: {out}");
        assert!(out.contains("\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":0.200"));
        assert!(out.contains("\"ph\":\"E\",\"pid\":1,\"tid\":3,\"ts\":0.300"));
        assert!(out.contains("\"ts\":0.400,\"name\":\"open\""));
    }

    /// Empty reports export an empty-but-valid trace.
    #[test]
    fn chrome_trace_empty() {
        assert_eq!(
            TraceReport::empty().to_chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    /// Special characters in names survive as valid JSON escapes.
    #[test]
    fn chrome_trace_escapes_names() {
        let mut r = TraceReport::empty();
        r.threads = vec![ThreadInfo { tid: 0, name: "a\"b\\c\nd".to_string() }];
        assert!(r.to_chrome_trace().contains("{\"name\":\"a\\\"b\\\\c\\nd\"}"));
    }
}

#[cfg(test)]
mod openmetrics_tests {
    use super::*;

    /// Counters map directly; probe dots become metric-name
    /// underscores; the counter sample carries the `_total` suffix.
    #[test]
    fn counters_map_directly() {
        let mut r = TraceReport::empty();
        r.counters = vec![
            CounterStat { name: "svm.smo.iterations".to_string(), labels: vec![], value: 42 },
            CounterStat { name: "svm.qcache.hits".to_string(), labels: vec![], value: 7 },
        ];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_svm_smo_iterations counter\n\
             edm_svm_smo_iterations_total 42\n\
             # TYPE edm_svm_qcache_hits counter\n\
             edm_svm_qcache_hits_total 7\n\
             # EOF\n"
        );
    }

    /// Label sets render as `{k="v",...}` selectors; rows of the same
    /// family share one `# TYPE` header.
    #[test]
    fn labeled_counters_share_a_family() {
        let mut r = TraceReport::empty();
        let lbl = |m: &str, e: &str| {
            vec![("endpoint".to_string(), e.to_string()), ("model".to_string(), m.to_string())]
        };
        r.counters = vec![
            CounterStat {
                name: "serve.request.count".to_string(),
                labels: lbl("knn", "predict"),
                value: 3,
            },
            CounterStat {
                name: "serve.request.count".to_string(),
                labels: lbl("svc", "predict"),
                value: 9,
            },
        ];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_serve_request_count counter\n\
             edm_serve_request_count_total{endpoint=\"predict\",model=\"knn\"} 3\n\
             edm_serve_request_count_total{endpoint=\"predict\",model=\"svc\"} 9\n\
             # EOF\n"
        );
    }

    /// Power-of-two buckets become cumulative `le` buckets at the
    /// bucket's upper bound `2^(e+1)`, closed by `+Inf`, `_sum`,
    /// `_count`; probe labels precede `le`.
    #[test]
    fn histogram_buckets_are_cumulative_le() {
        let mut r = TraceReport::empty();
        r.histograms = vec![HistogramStat {
            name: "t.hist".to_string(),
            labels: vec![],
            count: 4,
            sum: 1035.0,
            min: 0.25,
            max: 1024.0,
            // [2^-3, 2^-2): 1 sample; [2^1, 2^2): 2; [2^10, 2^11): 1
            buckets: vec![(-3, 1), (1, 2), (10, 1)],
        }];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_t_hist histogram\n\
             edm_t_hist_bucket{le=\"0.25\"} 1\n\
             edm_t_hist_bucket{le=\"4\"} 3\n\
             edm_t_hist_bucket{le=\"2048\"} 4\n\
             edm_t_hist_bucket{le=\"+Inf\"} 4\n\
             edm_t_hist_sum 1035\n\
             edm_t_hist_count 4\n\
             # EOF\n"
        );
    }

    /// Labeled histograms put probe labels before `le` and suffix
    /// `_sum`/`_count` with the plain label set.
    #[test]
    fn labeled_histograms_interleave_le() {
        let mut r = TraceReport::empty();
        r.histograms = vec![HistogramStat {
            name: "serve.request.handle_ns".to_string(),
            labels: vec![("model".to_string(), "svc".to_string())],
            count: 2,
            sum: 6.0,
            min: 2.0,
            max: 4.0,
            buckets: vec![(1, 1), (2, 1)],
        }];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_serve_request_handle_ns histogram\n\
             edm_serve_request_handle_ns_bucket{model=\"svc\",le=\"4\"} 1\n\
             edm_serve_request_handle_ns_bucket{model=\"svc\",le=\"8\"} 2\n\
             edm_serve_request_handle_ns_bucket{model=\"svc\",le=\"+Inf\"} 2\n\
             edm_serve_request_handle_ns_sum{model=\"svc\"} 6\n\
             edm_serve_request_handle_ns_count{model=\"svc\"} 2\n\
             # EOF\n"
        );
    }

    /// Spans become two labeled counter families; quotes and
    /// backslashes in paths are escaped per the exposition format.
    #[test]
    fn spans_become_labeled_counters() {
        let mut r = TraceReport::empty();
        r.spans = vec![
            SpanStat { path: "solve".to_string(), count: 2, total_ns: 90, min_ns: 40, max_ns: 50 },
            SpanStat {
                path: "solve/q\"r\\w".to_string(),
                count: 1,
                total_ns: 30,
                min_ns: 30,
                max_ns: 30,
            },
        ];
        assert_eq!(
            r.to_openmetrics(),
            "# TYPE edm_span_activations counter\n\
             edm_span_activations_total{path=\"solve\"} 2\n\
             edm_span_activations_total{path=\"solve/q\\\"r\\\\w\"} 1\n\
             # TYPE edm_span_time_ns counter\n\
             edm_span_time_ns_total{path=\"solve\"} 90\n\
             edm_span_time_ns_total{path=\"solve/q\\\"r\\\\w\"} 30\n\
             # EOF\n"
        );
    }

    /// The body form omits `# EOF` so callers can append their own
    /// families; the terminating form is body + `# EOF`.
    #[test]
    fn body_composes_with_eof() {
        let mut r = TraceReport::empty();
        r.counters = vec![CounterStat { name: "a.b".to_string(), labels: vec![], value: 1 }];
        let body = r.openmetrics_body();
        assert!(!body.contains("# EOF"));
        assert_eq!(r.to_openmetrics(), format!("{body}# EOF\n"));
    }

    /// An empty report is just the terminator.
    #[test]
    fn empty_report_is_only_eof() {
        assert_eq!(TraceReport::empty().to_openmetrics(), "# EOF\n");
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    /// One sequential lifecycle test: the registry and level are global,
    /// so interleaved tests would race each other's counts.
    #[test]
    fn lifecycle_spans_counters_histograms_report() {
        set_level(Level::Off);
        reset();

        // Off: nothing records.
        {
            let _s = span("off.span");
            counter_add("off.counter", 5);
            counter_add_labeled("off.labeled", &[("k", "v")], 5);
            record("off.hist", 1.0);
        }
        let r = collect();
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.histograms.is_empty());
        assert!(r.compiled);
        assert_eq!(r.level, "off");

        // Summary: aggregates but no timeline events.
        set_level(Level::Summary);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                counter_add("t.count", 2);
                counter_add("t.count", 3);
                counter_add_labeled("t.labeled", &[("model", "svc"), ("endpoint", "p")], 4);
                counter_add_labeled("t.labeled", &[("endpoint", "p"), ("model", "svc")], 1);
                record("t.hist", 3.5); // exponent 1
                record("t.hist", 1024.0); // exponent 10
                record_labeled("t.lhist", &[("model", "svc")], 2.0);
                record_full("t.hot", 1.0); // full-only: must not record
            }
            {
                let _inner2 = span("inner");
            }
        }
        let r = collect();
        assert_eq!(r.counter("t.count"), 5);
        // Key order at the call site never splits a labeled series.
        let labeled = r.counters.iter().find(|c| c.name == "t.labeled").expect("labeled counter");
        assert_eq!(labeled.value, 5);
        assert_eq!(
            labeled.labels,
            vec![
                ("endpoint".to_string(), "p".to_string()),
                ("model".to_string(), "svc".to_string())
            ]
        );
        let lh = r.histograms.iter().find(|h| h.name == "t.lhist").expect("labeled histogram");
        assert_eq!(lh.labels, vec![("model".to_string(), "svc".to_string())]);
        assert_eq!(r.span_count("inner"), 2);
        let outer = r.spans.iter().find(|s| s.path == "outer").expect("outer span");
        assert_eq!(outer.count, 1);
        let nested = r.spans.iter().find(|s| s.path == "outer/inner").expect("nested path");
        assert_eq!(nested.count, 2);
        assert!(nested.min_ns <= nested.max_ns && nested.total_ns >= nested.max_ns);
        let h = r.histograms.iter().find(|h| h.name == "t.hist").expect("histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1027.5);
        assert_eq!(h.min, 3.5);
        assert_eq!(h.max, 1024.0);
        assert_eq!(h.buckets, vec![(1, 1), (10, 1)]);
        assert!(r.histograms.iter().all(|h| h.name != "t.hot"), "record_full off at summary");
        assert!(r.timeline.is_empty(), "no timeline events at summary level");

        // Pre-resolved handles: same series as the by-name calls, and
        // an unused handle never surfaces an all-zero span/histogram.
        let hc = counter_handle("t.count", &[]);
        hc.add(10);
        let hl = counter_handle("t.labeled", &[("endpoint", "p"), ("model", "svc")]);
        hl.add(5);
        let hh = hist_handle("t.hist", &[]);
        hh.record(3.5);
        let hs = span_handle("h.span");
        drop(hs.start());
        let idle_hist = hist_handle("h.idle", &[]);
        let idle_span = span_handle("h.idle.span");
        let r = collect();
        assert_eq!(r.counter("t.count"), 15, "handle adds join the by-name series");
        let labeled = r.counters.iter().find(|c| c.name == "t.labeled").expect("labeled counter");
        assert_eq!(labeled.value, 10, "labeled handle joins the canonicalized series");
        assert_eq!(r.histograms.iter().find(|h| h.name == "t.hist").map(|h| h.count), Some(3));
        assert_eq!(r.span_count("h.span"), 1);
        assert!(r.histograms.iter().all(|h| h.name != "h.idle"), "idle hist handle hidden");
        assert!(r.spans.iter().all(|s| s.path != "h.idle.span"), "idle span handle hidden");
        // Reset keeps handle-held series wired (zeroed, not detached).
        reset();
        hc.add(2);
        hh.record(1.0);
        let r = collect();
        assert_eq!(r.counter("t.count"), 2, "post-reset handle still reports");
        assert_eq!(r.histograms.iter().find(|h| h.name == "t.hist").map(|h| h.count), Some(1));
        assert!(r.spans.is_empty(), "unreferenced span series dropped by reset");
        // Dropped handles release their series for the next reset.
        drop((hc, hl, hh, hs, idle_hist, idle_span));

        // Full: timeline events appear; record_full records.
        set_level(Level::Full);
        {
            let _s = span("full.span");
            counter_add("full.count", 7);
            record_full("t.hot", 2.0);
        }
        let r = collect();
        let begins: Vec<_> =
            r.timeline.iter().filter(|e| e.ph == EventKind::B && e.name == "full.span").collect();
        assert_eq!(begins.len(), 1, "one B event for full.span");
        assert!(
            r.timeline.iter().any(|e| e.ph == EventKind::E && e.name == "full.span"),
            "E event for full.span"
        );
        let c_ev = r
            .timeline
            .iter()
            .find(|e| e.ph == EventKind::C && e.name == "full.count")
            .expect("counter timeline event");
        assert_eq!(c_ev.value, 7.0, "C event carries cumulative value");
        assert!(!r.threads.is_empty(), "recording thread listed");
        assert_eq!(r.histograms.iter().find(|h| h.name == "t.hot").map(|h| h.count), Some(1));

        // JSON round-trips through the workspace serde_json compat.
        let json = r.to_json().expect("serializable");
        let back: TraceReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, r);

        // Reset clears data but not the level.
        reset();
        let r = collect();
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.timeline.is_empty());
        assert_eq!(r.dropped_events, 0);
        assert_eq!(r.level, "full");
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn level_parse_vocabulary() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("  SUMMARY "), Some(Level::Summary));
        assert_eq!(Level::parse("full"), Some(Level::Full));
        assert_eq!(Level::parse("1"), Some(Level::Summary));
        assert_eq!(Level::parse(""), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn empty_report_serializes() {
        let r = TraceReport::empty();
        let json = r.to_json().expect("serializable");
        let back: TraceReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, r);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.span_count("absent"), 0);
    }
}
