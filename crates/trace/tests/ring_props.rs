//! Property tests for the bounded per-thread event ring.
//!
//! The trace level, event capacity, and registry are process-global,
//! so everything lives in a single `#[test]` function: proptest runs
//! its cases sequentially on one thread, which keeps every case's
//! events on one shard and away from concurrent mutation.
//!
//! Properties checked per case:
//! - the retained timeline never exceeds the configured capacity;
//! - `dropped_events` accounts for every evicted event exactly
//!   (`retained + dropped == attempted`);
//! - begin/end nesting stays well-formed: because the ring drops its
//!   **oldest** events, the retained stream is a suffix of a balanced
//!   sequence — depth never goes negative except via dangling `E`
//!   events at depth zero (possible only when drops occurred), and all
//!   spans close by the end.

use edm_trace::EventKind;
use proptest::prelude::*;

/// Open `depth` nested spans and let them all close on unwind.
fn nest(depth: usize) {
    if depth == 0 {
        return;
    }
    let _guard = edm_trace::span("props.ring.nest");
    nest(depth - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_bounds_drops_and_nesting(
        cap in 1usize..96,
        flat_spans in 0usize..40,
        nest_depth in 0usize..6,
        counters in 0usize..60,
    ) {
        edm_trace::set_level(edm_trace::Level::Full);
        edm_trace::set_event_capacity(cap);
        edm_trace::reset();

        let mut attempted: u64 = 0;
        for i in 0..flat_spans {
            drop(edm_trace::span("props.ring.span"));
            attempted += 2;
            if i % 3 == 0 {
                nest(nest_depth);
                attempted += 2 * nest_depth as u64;
            }
        }
        for _ in 0..counters {
            edm_trace::counter_add("props.ring.count", 1);
            attempted += 1;
        }

        let report = edm_trace::collect();
        let retained = report.timeline.len() as u64;

        // Bounded: never more events than the configured capacity.
        prop_assert!(retained <= cap as u64, "retained {retained} > cap {cap}");
        // Exact accounting: every attempted event is either retained
        // or counted as dropped — nothing vanishes silently.
        prop_assert_eq!(retained + report.dropped_events, attempted);
        prop_assert_eq!(retained, attempted.min(cap as u64));
        // The synthesized counter mirrors the report field.
        let synth = report
            .counters
            .iter()
            .find(|c| c.name == "trace.ring.dropped")
            .map(|c| c.value);
        if report.dropped_events > 0 {
            prop_assert_eq!(synth, Some(report.dropped_events));
        }

        // Nesting: walk the retained suffix. E at depth zero is a
        // dangling end whose B was evicted — legal only if something
        // was actually dropped. Everything else must balance.
        let mut depth: u64 = 0;
        let mut dangling: u64 = 0;
        for ev in &report.timeline {
            match ev.ph {
                EventKind::B => depth += 1,
                EventKind::E => {
                    if depth == 0 {
                        dangling += 1;
                    } else {
                        depth -= 1;
                    }
                }
                EventKind::C => {}
            }
        }
        prop_assert!(
            dangling == 0 || report.dropped_events > 0,
            "dangling E without any drops"
        );
        prop_assert_eq!(depth, 0, "spans left open in the retained suffix");

        // Timestamps are monotone non-decreasing in ring order.
        for pair in report.timeline.windows(2) {
            prop_assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }

        edm_trace::reset();
        edm_trace::set_event_capacity(edm_trace::EVENT_CAP);
        edm_trace::set_level(edm_trace::Level::Off);
    }
}
