//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this crate re-implements exactly the `rand 0.8` API surface the
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream's ChaCha12, but with the
//! same determinism contract: a given seed always yields the same
//! sequence on every platform.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` / `shuffle` over slices, mirroring `rand::seq`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-128..128);
            assert!((-128..128).contains(&v));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut counts = [0usize; 4];
        let opts = [0usize, 1, 2, 3];
        for _ in 0..4000 {
            counts[*opts.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "counts {counts:?}");
    }
}
