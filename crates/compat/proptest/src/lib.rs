//! Workspace-local stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! line), range strategies over ints and floats,
//! [`collection::vec`], [`Strategy`] combinator-free composition via
//! functions returning `impl Strategy`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-case seed (reproducible without a persistence
//! file), and failing cases are reported without shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with the given length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                // Mix the test name into the seed so sibling tests see
                // different streams; deterministic across runs.
                let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ (case as u64).wrapping_mul(0x1000_0001_b3);
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
                }
                let mut rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "proptest case {case} of {} failed with inputs: {}",
                        stringify!($name),
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ")
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f64>> {
        collection::vec(-1.0..1.0f64, 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in collection::vec(0u8..5, 0..7), w in pair()) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 2);
        }
    }

    #[test]
    fn determinism_same_seed_same_value() {
        let s = collection::vec(0.0..1.0f64, 5);
        let a = s.generate(&mut crate::TestRng::new(9));
        let b = s.generate(&mut crate::TestRng::new(9));
        assert_eq!(a, b);
    }
}
