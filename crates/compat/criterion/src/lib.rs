//! Workspace-local stand-in for `criterion`.
//!
//! Implements the harness subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over a fixed number of samples whose per-iteration counts are sized
//! so a sample takes roughly a millisecond; the median per-iteration
//! time is reported on stdout. No statistical analysis, plots, or
//! baseline storage — this is a smoke-capable timer so `cargo bench`
//! runs offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const SAMPLES: usize = 15;
const TARGET_SAMPLE: Duration = Duration::from_millis(2);
const WARMUP: Duration = Duration::from_millis(50);

/// How per-batch setup cost relates to the routine (sizing hint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batches of many iterations are fine.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and reports `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Warm-up: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || warm_start.elapsed() >= WARMUP {
            if b.elapsed < TARGET_SAMPLE && b.elapsed > Duration::ZERO {
                let scale = TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64();
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<48} time: [{}]", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1.0f64; 16], |v| v.iter().sum::<f64>(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran);
    }
}
