//! Workspace-local stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-model traits of the sibling `serde` stub, using only the
//! built-in `proc_macro` API (no `syn`/`quote`, which are unavailable in
//! this offline build). Supports what the workspace actually derives:
//!
//! * structs with named fields (including generic parameters, with a
//!   `Serialize`/`Deserialize` bound added per type parameter);
//! * tuple structs (newtypes serialize transparently);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Unsupported shapes (`where` clauses, unions) panic at expansion time
//! with a clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic parameter.
struct GenericParam {
    /// `'a`, `T`, or `N` (for const params).
    name: String,
    /// Declaration with bounds but without defaults, e.g. `T: Clone`.
    decl: String,
    /// Whether a serde bound should be attached (type params only).
    is_type: bool,
}

struct Field {
    name: String,
}

enum Body {
    /// Named fields.
    Struct(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// No fields.
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// --- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other}"),
    };
    i += 1;

    let generics = if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let (params, next) = parse_generics(&toks, i + 1);
        i = next;
        params
    } else {
        Vec::new()
    };

    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde stub derive: `where` clauses are not supported (on `{name}`)");
    }

    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde stub derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };

    Item { name, generics, body }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses generic params starting just after `<`; returns the params and
/// the index just after the matching `>`.
fn parse_generics(toks: &[TokenTree], mut i: usize) -> (Vec<GenericParam>, usize) {
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut raw_params: Vec<Vec<TokenTree>> = Vec::new();
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(toks[i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        raw_params.push(std::mem::take(&mut current));
                    }
                    i += 1;
                    break;
                }
                current.push(toks[i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                raw_params.push(std::mem::take(&mut current));
            }
            t => current.push(t.clone()),
        }
        i += 1;
    }
    let params = raw_params.iter().map(|p| parse_generic_param(p)).collect();
    (params, i)
}

fn parse_generic_param(toks: &[TokenTree]) -> GenericParam {
    // Lifetime: leading `'`.
    if matches!(&toks[0], TokenTree::Punct(p) if p.as_char() == '\'') {
        let name = format!("'{}", toks[1]);
        return GenericParam { name: name.clone(), decl: tokens_to_string(toks), is_type: false };
    }
    // Const param: `const N: usize`.
    if matches!(&toks[0], TokenTree::Ident(id) if id.to_string() == "const") {
        let name = toks[1].to_string();
        return GenericParam { name, decl: tokens_to_string(toks), is_type: false };
    }
    // Type param: `T`, `T: Bounds`, `T = Default`, `T: Bounds = Default`.
    let name = toks[0].to_string();
    let before_default: Vec<TokenTree> = {
        let mut out = Vec::new();
        let mut depth = 0usize;
        for t in toks {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == '=' && depth == 0 => break,
                _ => {}
            }
            out.push(t.clone());
        }
        out
    };
    GenericParam { name, decl: tokens_to_string(&before_default), is_type: true }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other}"),
        }
        // Skip the type up to a top-level comma.
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name });
    }
    fields
}

/// Counts tuple-struct fields: top-level commas + 1 (ignoring a trailing
/// comma), 0 for an empty stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < toks.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other}"),
        };
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip a discriminant (`= expr`) and the separating comma.
        let mut depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in toks {
        s.push_str(&t.to_string());
        s.push(' ');
    }
    // A lifetime tick tokenizes separately from its identifier; re-join
    // them so the emitted text parses (`' a` -> `'a`).
    s.replace("' ", "'")
}

// --- expansion -------------------------------------------------------

/// `impl <...> Trait for Name <...>` headers with serde bounds added to
/// every type parameter.
fn impl_header(item: &Item, trait_path: &str) -> String {
    let impl_generics: Vec<String> = item
        .generics
        .iter()
        .map(|g| {
            if g.is_type {
                let has_bounds = g.decl.contains(':');
                if has_bounds {
                    format!("{} + {trait_path}", g.decl)
                } else {
                    format!("{}: {trait_path}", g.decl)
                }
            } else {
                g.decl.clone()
            }
        })
        .collect();
    let ty_generics: Vec<String> = item.generics.iter().map(|g| g.name.clone()).collect();
    let ig = if impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_generics.join(", "))
    };
    let tg = if ty_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", ty_generics.join(", "))
    };
    format!("impl {ig} {trait_path} for {} {tg}", item.name)
}

fn expand_serialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let entries: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let ename = &item.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{ename}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let vals: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", vals.join(", "))
                            };
                            format!(
                                "{ename}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantBody::Struct(fields) => {
                            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{ename}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn expand_deserialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(::serde::get_field(m, \"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::DeError(::std::format!(\"expected map for struct {name}, got {{v:?}}\")))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let inits: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?")).collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::DeError(::std::format!(\"expected array for tuple struct {name}, got {{v:?}}\")))?; \
                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(::std::format!(\"expected {n} elements for {name}, got {{}}\", s.len()))); }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::Unit => format!("let _ = v; ::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantBody::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let s = payload.as_seq().ok_or_else(|| ::serde::DeError(::std::format!(\"expected array payload for {name}::{vname}\")))?; \
                                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(::std::format!(\"expected {n} elements for {name}::{vname}, got {{}}\", s.len()))); }} \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantBody::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{0}: ::serde::Deserialize::from_value(::serde::get_field(fm, \"{0}\")?)?",
                                        f.name
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let fm = payload.as_map().ok_or_else(|| ::serde::DeError(::std::format!(\"expected map payload for {name}::{vname}\")))?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ {unit} _ => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown unit variant `{{s}}` for {name}\"))) }}, \
                   ::serde::Value::Map(m) if m.len() == 1 => {{ \
                     let (tag, payload) = &m[0]; \
                     let _ = payload; \
                     match tag.as_str() {{ {data} _ => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{tag}}` for {name}\"))) }} \
                   }}, \
                   other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unexpected value for enum {name}: {{other:?}}\"))) \
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "#[automatically_derived] {header} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
