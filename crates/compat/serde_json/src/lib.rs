//! Workspace-local stand-in for `serde_json`.
//!
//! Serializes the `serde` stub's [`Value`] model to JSON text and parses
//! it back. Floats are written with Rust's shortest-round-trip `{}`
//! formatting and parsed with `str::parse::<f64>`, both of which are
//! exact, so `f64` values survive `to_string` → `from_str` bit-for-bit
//! (the `float_roundtrip` guarantee of the real crate).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Fails if the value contains a non-finite float (JSON has no
/// representation for NaN/infinity, matching the real serde_json).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} cannot be serialized")));
            }
            // Rust's `{}` float formatting is shortest-round-trip; add a
            // `.0` to integral values so they parse back as floats.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at offset {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at offset {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at offset {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid keyword at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc =
                        rest.get(1).copied().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for &x in
            &[0.1, 1.0 / 3.0, std::f64::consts::PI, 1e-300, -2.5e17, f64::MIN_POSITIVE, 0.0, -0.0]
        {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "value {x} via {json}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1.5, 2.0], vec![-3.25]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
        let pairs = vec![(1u32, "a".to_string()), (2, "b\"quoted\"".to_string())];
        let back2: Vec<(u32, String)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(pairs, back2);
    }

    #[test]
    fn nan_is_rejected() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
