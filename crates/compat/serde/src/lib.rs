//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no network access, so this crate provides
//! the serialization machinery the workspace needs without the real
//! serde: a JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits that convert through it, and re-exported
//! derive macros (from the sibling `serde_derive` stub) mirroring
//! serde's default representations:
//!
//! * structs with named fields → maps keyed by field name;
//! * newtype structs → the inner value, transparently;
//! * tuple structs → sequences;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → a single-entry map
//!   `{"Variant": payload}` (externally tagged).
//!
//! `f64` round-trips are exact: the JSON writer in the sibling
//! `serde_json` stub prints floats with Rust's shortest-round-trip
//! formatting.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the interchange format between
/// [`Serialize`], [`Deserialize`], and the `serde_json` stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if any, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The integer value, if any, as `i128` (lossless for both `i64` and
    /// `u64`, and for floats that are exact integers).
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::I64(v) => Some(v as i128),
            Value::U64(v) => Some(v as i128),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 2e18 => Some(v as i128),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field by name (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] if the field is absent.
pub fn get_field<'v>(map: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i128()
                    .ok_or_else(|| DeError(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            _ => Err(DeError(format!("expected single-char string, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let got = items.len();
        items.try_into().map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| DeError(format!("expected tuple array, got {v:?}")))?;
                const LEN: usize = [$($n),+].len();
                if s.len() != LEN {
                    return Err(DeError(format!("expected {LEN}-tuple, got {} elements", s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u8::from_value(&7u8.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (3usize, 4.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
