//! Scenario: train the fast layout-variability predictor against the
//! golden lithography simulation, then use it to screen a batch of new
//! layout clips at a tiny fraction of the simulation cost (the paper's
//! Fig. 8/9 usage model).
//!
//! Run with `cargo run --release --example litho_hotspots`.

use edm::core::variability::{self, VariabilityConfig};
use edm::litho::layout::{ClipStyle, LayoutGenerator};
use edm::litho::variability::{VariabilityAnalyzer, VariabilityLabel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = LayoutGenerator::default();
    let analyzer = VariabilityAnalyzer::default();
    let mut rng = StdRng::seed_from_u64(3);

    // Train against the golden simulator.
    let config = VariabilityConfig { n_train: 150, n_test: 60, ..Default::default() };
    let (result, predictor) = variability::run(&generator, &analyzer, &config, &mut rng)?;
    println!(
        "trained on {} clips: accuracy {:.0}%, hotspot recall {:.0}%, {:.0}x faster than sim",
        config.n_train,
        100.0 * result.svc.accuracy,
        100.0 * result.svc.bad_recall,
        result.speedup()
    );

    // Screen a fresh batch, style by style.
    println!("\nscreening new clips (model vs golden):");
    for style in ClipStyle::ALL {
        let clip = generator.generate(style, &mut rng);
        let fast = predictor.predict_bad(&clip);
        let golden = analyzer.analyze(&clip).label == VariabilityLabel::Bad;
        println!(
            "  {:?}: model says {}, golden says {} {}",
            style,
            if fast { "HOTSPOT" } else { "ok     " },
            if golden { "HOTSPOT" } else { "ok" },
            if fast == golden { "(agree)" } else { "(DISAGREE)" }
        );
    }
    Ok(())
}
