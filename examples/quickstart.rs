//! Quickstart: the three learning idioms this workspace is built
//! around — a kernel SVM, a novelty detector, and readable rules.
//!
//! Run with `cargo run --release --example quickstart`.

use edm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. A kernel SVM (the paper's Eq. 2 model form).
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..40 {
        x.push(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
        y.push(-1.0);
        x.push(vec![rng.gen::<f64>() + 1.6, rng.gen::<f64>() + 1.6]);
        y.push(1.0);
    }
    let svm = SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(1.0)).fit(&x, &y)?;
    println!(
        "svm: {} support vectors, complexity Σα = {:.2}, predict(1.8,1.8) = {:+.0}",
        svm.n_support(),
        svm.complexity(),
        svm.predict(&[1.8, 1.8])
    );

    // 2. A novelty detector (higher score = more novel).
    let train: Vec<Vec<f64>> =
        (0..200).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()]).collect();
    let detector = MahalanobisDetector::fit(&train, 0.99)?;
    println!(
        "novelty: score(center) = {:.2}, score(far) = {:.2}, threshold = {:.2}",
        detector.score(&[0.5, 0.5, 0.5]),
        detector.score(&[4.0, -3.0, 4.0]),
        detector.threshold()
    );

    // 3. Subgroup-discovery rules an engineer can read.
    let features: Vec<Vec<f64>> =
        (0..100).map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0]).collect();
    let labels: Vec<i32> = features.iter().map(|f| i32::from(f[0] > 6.0 && f[1] > 5.0)).collect();
    let rules = learn_rules(&features, &labels, 1, Cn2SdParams::default())?;
    let names = vec!["via_count".to_string(), "wirelength".to_string()];
    for r in &rules {
        println!("rule: {}", r.display_with(&names));
    }

    // With EDM_TRACE=summary|full, show what the telemetry layer saw.
    let trace = edm::trace::collect();
    if !trace.spans.is_empty() {
        println!("trace (level {}):", trace.level);
        for s in &trace.spans {
            println!("  {} x{} ({} us total)", s.path, s.count, s.total_ns / 1_000);
        }
        for c in &trace.counters {
            println!("  {} = {}", c.name, c.value);
        }
    }
    Ok(())
}
