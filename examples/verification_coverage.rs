//! Scenario: a verification engineer wires the novelty filter between
//! the constrained-random generator and the LSU simulator, then uses
//! rule learning to understand what the hard-to-hit coverage points
//! need (the paper's Fig. 6 insertion points, at small scale).
//!
//! Run with `cargo run --release --example verification_coverage`.

use edm::core::noveltest::NoveltyFilter;
use edm::core::template_refine::{self, RefinementConfig};
use edm::verif::coverage::CoveragePoint;
use edm::verif::lsu::LsuSimulator;
use edm::verif::template::TestTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let template = TestTemplate::default();
    let simulator = LsuSimulator::default_config();
    let mut rng = StdRng::seed_from_u64(2);

    // Insertion point 1: filter the randomizer's stream before paying
    // for simulation.
    let mut filter = NoveltyFilter::weighted(3, 2.0, 0.2, 8);
    let mut simulated = 0usize;
    let mut skipped = 0usize;
    let mut coverage = edm::verif::coverage::CoverageMap::new();
    for _ in 0..400 {
        let test = template.generate(&mut rng);
        let tokens = test.tokens();
        if filter.n_accepted() >= 12 && filter.decision(&tokens) >= 0.0 {
            skipped += 1; // looks like something we already simulated
            continue;
        }
        filter.accept(tokens)?;
        coverage.merge(&simulator.simulate(&test).coverage);
        simulated += 1;
    }
    println!("novelty filter: simulated {simulated}, skipped {skipped}");
    println!("coverage after filtering: {coverage}");

    // Insertion point 2: learn rules from covering tests and refine the
    // template (one short Table-1-style pass).
    let config = RefinementConfig { tests_per_stage: vec![150, 60], ..Default::default() };
    let stages = template_refine::run(&simulator, &config, &mut rng)?;
    for s in &stages {
        let covered: Vec<String> = CoveragePoint::ALL
            .iter()
            .filter(|p| s.counts[p.index()] > 0)
            .map(|p| p.short_name())
            .collect();
        println!("{:<14} {:>4} tests -> covered {}", s.name, s.n_tests, covered.join(","));
        for r in &s.rules {
            println!("    learned: {r}");
        }
    }
    Ok(())
}
