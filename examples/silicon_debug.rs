//! Scenario: silicon debug after first silicon comes back slower than
//! signoff predicted on some paths. Cluster the correlation data, learn
//! rules over path structure, and compare against the injected ground
//! truth (the paper's Fig. 10 flow).
//!
//! Run with `cargo run --release --example silicon_debug`.

use edm::core::dstc::{self, DstcConfig};
use edm::timing::path::PathGenerator;
use edm::timing::silicon::{SiliconModel, SystematicEffect};
use edm::timing::sta::Timer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth the diagnosis must rediscover: M5 vias are resistive.
    let silicon = SiliconModel::default()
        .with_effect(SystematicEffect::ViaResistance { lower_layer: 4, extra_ps: 6.0 })
        .with_effect(SystematicEffect::ViaResistance { lower_layer: 5, extra_ps: 6.0 });

    let mut rng = StdRng::seed_from_u64(4);
    let config = DstcConfig { n_paths: 500, ..Default::default() };
    let result =
        dstc::run(&PathGenerator::default(), &Timer::default(), &silicon, &config, &mut rng)?;

    let slow = result.points.iter().filter(|p| p.cluster == 1).count();
    println!(
        "{} paths: {} slow-cluster (mismatch {:+.1} ps) vs {} fast (mismatch {:+.1} ps)",
        result.points.len(),
        slow,
        result.slow_cluster_mismatch,
        result.points.len() - slow,
        result.fast_cluster_mismatch,
    );
    println!("\ndiagnosis:");
    for r in &result.rules {
        println!("  {r}");
    }
    println!(
        "\nroot cause recovered: {}",
        if result.implicates("via45") || result.implicates("via56") {
            "YES — the rules point at the layer-4-5/5-6 vias"
        } else {
            "no — investigate further"
        }
    );
    Ok(())
}
