//! Scenario: quality engineering for an automotive product. Build an
//! outlier screen from the customer returns seen so far, then apply it
//! to incoming production as a "do not ship" flag (the paper's Fig. 11
//! usage model, including the negative lesson of Fig. 12 about
//! guaranteed results).
//!
//! Run with `cargo run --release --example burn_in_screening`.

use edm::core::returns::{self, ReturnScreeningConfig};
use edm::core::testcost::{self, TestCostConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);

    // Build and validate the return screen.
    let config = ReturnScreeningConfig {
        lot_size: 4_000,
        n_lots: 8,
        defect_rate: 1e-3,
        ..Default::default()
    };
    let result = returns::run(&config, &mut rng)?;
    println!(
        "screen built on {} returns in tests {:?}",
        result.n_baseline_returns, result.screen.selected_names
    );
    println!(
        "catches {}/{} later returns, {}/{} sister-product returns, {:.2}% overkill",
        result.later_caught,
        result.later_total,
        result.sister_caught,
        result.sister_total,
        100.0 * result.overkill_rate
    );

    // The cautionary tale: what NOT to promise from mined data.
    let cost = testcost::run(
        &TestCostConfig {
            phase1_chips: 50_000,
            phase2_chips: 50_000,
            tail_rate: 2e-4,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "\ntest-drop analysis: {} correlated {:.3}/{:.3} with its covers, {} unique catches",
        cost.analysis.test_name,
        cost.analysis.correlations[0].1,
        cost.analysis.correlations[1].1,
        cost.analysis.unique_catches,
    );
    println!(
        "dropping it anyway produced {} field escapes in the next {} chips — \
         the paper's point: don't mine guarantees from data that can't contain them",
        cost.escapes, cost.phase2_chips
    );
    Ok(())
}
