//! # edm — Data Mining in EDA
//!
//! A facade over the `edm` workspace, a Rust reproduction of
//! *“Data Mining In EDA — Basic Principles, Promises, and Constraints”*
//! (Li-C. Wang and Magdy S. Abadir, DAC 2014).
//!
//! The workspace has three layers:
//!
//! 1. **Learning toolkit** — [`linalg`], [`data`], [`kernels`], [`svm`],
//!    [`learn`], [`cluster`], [`transform`], [`novelty`]: every algorithm
//!    family the paper's Section 2 surveys.
//! 2. **EDA substrates** — [`verif`], [`litho`], [`timing`], [`mfgtest`]:
//!    synthetic stand-ins for the industrial environments the paper
//!    evaluated on.
//! 3. **Methodology flows** — [`core`]: the paper's contribution, six
//!    application flows tying learners + kernels + domain knowledge into
//!    engineer-facing usage models.
//!
//! # Quickstart
//!
//! Train a kernel SVM on a small dataset and inspect its complexity
//! (the paper's Eq. 2):
//!
//! ```
//! use edm::kernels::RbfKernel;
//! use edm::svm::{SvcParams, SvcTrainer};
//!
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.2], vec![0.9, 1.0], vec![1.0, 0.8],
//! ];
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let model = SvcTrainer::new(SvcParams::default())
//!     .kernel(RbfKernel::new(1.0))
//!     .fit(&x, &y)?;
//! assert_eq!(model.predict(&[0.05, 0.1]), -1.0);
//! assert!(model.complexity() > 0.0); // Σ αᵢ, the paper's model-complexity measure
//! # Ok::<(), edm::svm::SvmError>(())
//! ```
//!
//! See `examples/` for the domain scenarios (verification coverage,
//! litho hotspot screening, customer-return screening) and
//! `crates/bench/src/bin/` for the harnesses that regenerate every table
//! and figure of the paper.

#![forbid(unsafe_code)]

pub use edm_cluster as cluster;
pub use edm_core as core;
pub use edm_data as data;
pub use edm_kernels as kernels;
pub use edm_learn as learn;
pub use edm_linalg as linalg;
pub use edm_litho as litho;
pub use edm_mfgtest as mfgtest;
pub use edm_novelty as novelty;
pub use edm_svm as svm;
pub use edm_timing as timing;
pub use edm_trace as trace;
pub use edm_transform as transform;
pub use edm_verif as verif;
