//! # edm — Data Mining in EDA
//!
//! A facade over the `edm` workspace, a Rust reproduction of
//! *“Data Mining In EDA — Basic Principles, Promises, and Constraints”*
//! (Li-C. Wang and Magdy S. Abadir, DAC 2014).
//!
//! The workspace has three layers:
//!
//! 1. **Learning toolkit** — [`linalg`], [`data`], [`kernels`], [`svm`],
//!    [`learn`], [`cluster`], [`transform`], [`novelty`]: every algorithm
//!    family the paper's Section 2 surveys.
//! 2. **EDA substrates** — [`verif`], [`litho`], [`timing`], [`mfgtest`]:
//!    synthetic stand-ins for the industrial environments the paper
//!    evaluated on.
//! 3. **Methodology flows** — [`core`]: the paper's contribution, six
//!    application flows tying learners + kernels + domain knowledge into
//!    engineer-facing usage models.
//!
//! On top of those, the facade defines the cross-crate surface that flow
//! and serving code programs against: the [`Error`] sum type (every
//! per-crate error converts into it with `?`), the object-safe
//! [`Predictor`] trait (one scoring signature over every trained model,
//! which is what `edm-serve` dispatches through), and the [`prelude`].
//!
//! # Quickstart
//!
//! Train a kernel SVM on a small dataset and inspect its complexity
//! (the paper's Eq. 2):
//!
//! ```
//! use edm::prelude::*;
//!
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.2], vec![0.9, 1.0], vec![1.0, 0.8],
//! ];
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let model = SvcTrainer::new(SvcParams::default())
//!     .kernel(RbfKernel::new(1.0))
//!     .fit(&x, &y)?;
//! assert_eq!(model.predict(&[0.05, 0.1]), -1.0);
//! assert!(model.complexity() > 0.0); // Σ αᵢ, the paper's model-complexity measure
//!
//! // Every trained model also scores through the object-safe Predictor
//! // trait — the dispatch surface of the edm-serve scoring service.
//! let served: &dyn Predictor = &model;
//! assert_eq!(served.predict_batch(&x)?, y);
//! # Ok::<(), edm::Error>(())
//! ```
//!
//! See `examples/` for the domain scenarios (verification coverage,
//! litho hotspot screening, customer-return screening) and
//! `crates/bench/src/bin/` for the harnesses that regenerate every table
//! and figure of the paper.

#![forbid(unsafe_code)]

use std::fmt;

pub use edm_cluster as cluster;
pub use edm_core as core;
pub use edm_data as data;
pub use edm_kernels as kernels;
pub use edm_learn as learn;
pub use edm_linalg as linalg;
pub use edm_litho as litho;
pub use edm_mfgtest as mfgtest;
pub use edm_model_io as model_io;
pub use edm_novelty as novelty;
pub use edm_svm as svm;
pub use edm_timing as timing;
pub use edm_trace as trace;
pub use edm_transform as transform;
pub use edm_verif as verif;

pub mod persist;

pub use persist::{
    fit_family, load_predictor, load_predictor_from_bytes, LoadedModel, PersistentPredictor,
    FAMILIES,
};

/// The workspace-wide error sum type.
///
/// Every per-crate error enum converts into it via `From`, so flow code
/// and [`Predictor`] implementations can `?` across crate boundaries
/// and return one type. The original error stays reachable through
/// [`std::error::Error::source`] (and can be downcast back to the
/// concrete per-crate type).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// SVM training/scoring failed ([`svm::SvmError`]).
    Svm(svm::SvmError),
    /// A learner failed ([`learn::LearnError`]).
    Learn(learn::LearnError),
    /// A clustering algorithm failed ([`cluster::ClusterError`]).
    Cluster(cluster::ClusterError),
    /// A novelty detector failed ([`novelty::NoveltyError`]).
    Novelty(novelty::NoveltyError),
    /// A feature transform failed ([`transform::TransformError`]).
    Transform(transform::TransformError),
    /// A linear-algebra kernel failed ([`linalg::LinalgError`]).
    Linalg(linalg::LinalgError),
    /// CSV ingestion failed ([`data::csv::CsvError`]).
    Csv(data::csv::CsvError),
    /// Dataset assembly failed ([`data::DatasetError`]).
    Dataset(data::DatasetError),
    /// Model persistence failed ([`model_io::IoError`]): bad magic,
    /// unsupported schema version, checksum mismatch, truncation, a
    /// missing section, or a malformed payload.
    ModelIo(model_io::IoError),
    /// A scoring batch did not match the model's feature count — the
    /// shape contract [`Predictor::predict_batch`] enforces before
    /// touching the underlying model.
    Shape {
        /// Index of the offending row in the batch.
        row: usize,
        /// The model's feature count.
        expected: usize,
        /// The row's length.
        found: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Svm(e) => write!(f, "svm: {e}"),
            Error::Learn(e) => write!(f, "learn: {e}"),
            Error::Cluster(e) => write!(f, "cluster: {e}"),
            Error::Novelty(e) => write!(f, "novelty: {e}"),
            Error::Transform(e) => write!(f, "transform: {e}"),
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Csv(e) => write!(f, "csv: {e}"),
            Error::Dataset(e) => write!(f, "dataset: {e}"),
            Error::ModelIo(e) => write!(f, "model-io: {e}"),
            Error::Shape { row, expected, found } => {
                write!(f, "batch row {row} has {found} features, model expects {expected}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Svm(e) => Some(e),
            Error::Learn(e) => Some(e),
            Error::Cluster(e) => Some(e),
            Error::Novelty(e) => Some(e),
            Error::Transform(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Csv(e) => Some(e),
            Error::Dataset(e) => Some(e),
            Error::ModelIo(e) => Some(e),
            Error::Shape { .. } => None,
        }
    }
}

impl From<svm::SvmError> for Error {
    fn from(e: svm::SvmError) -> Self {
        Error::Svm(e)
    }
}

impl From<learn::LearnError> for Error {
    fn from(e: learn::LearnError) -> Self {
        Error::Learn(e)
    }
}

impl From<cluster::ClusterError> for Error {
    fn from(e: cluster::ClusterError) -> Self {
        Error::Cluster(e)
    }
}

impl From<novelty::NoveltyError> for Error {
    fn from(e: novelty::NoveltyError) -> Self {
        Error::Novelty(e)
    }
}

impl From<transform::TransformError> for Error {
    fn from(e: transform::TransformError) -> Self {
        Error::Transform(e)
    }
}

impl From<linalg::LinalgError> for Error {
    fn from(e: linalg::LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<data::csv::CsvError> for Error {
    fn from(e: data::csv::CsvError) -> Self {
        Error::Csv(e)
    }
}

impl From<data::DatasetError> for Error {
    fn from(e: data::DatasetError) -> Self {
        Error::Dataset(e)
    }
}

impl From<model_io::IoError> for Error {
    fn from(e: model_io::IoError) -> Self {
        Error::ModelIo(e)
    }
}

/// A trained model that scores feature-vector batches — the uniform
/// call surface the `edm-serve` scoring service dispatches through.
///
/// The trait is object-safe: a registry holds `dyn Predictor` trait
/// objects without caring which algorithm family produced them. Every
/// implementation validates the batch shape against
/// [`Predictor::n_features`] first (returning [`Error::Shape`] instead
/// of panicking) and then delegates to the model's inherent
/// `predict_batch`/`decision_function_batch` path, so scoring through
/// the trait object is bitwise identical to calling the concrete model
/// (pinned by proptests in `edm-serve`).
///
/// Output conventions per model family:
///
/// * classifiers (SVC, k-NN, forest) return their label as `f64`
///   (`±1.0` for SVC, the integer class for the others);
/// * regressors (SVR, OLS, ridge, GP, k-NN) return the predicted value;
/// * the one-class SVM returns `+1.0` for inliers and `−1.0` for novel
///   points (the sign of its decision function).
pub trait Predictor {
    /// Scores a batch: one output per input row.
    ///
    /// # Errors
    ///
    /// [`Error::Shape`] if any row's length differs from
    /// [`Predictor::n_features`].
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error>;

    /// Number of features each input row must have.
    fn n_features(&self) -> usize;

    /// A short static name for the model family (e.g. `"svc"`).
    fn name(&self) -> &'static str;
}

/// Shape gate shared by every [`Predictor`] implementation.
fn check_batch(xs: &[Vec<f64>], expected: usize) -> Result<(), Error> {
    for (row, x) in xs.iter().enumerate() {
        if x.len() != expected {
            return Err(Error::Shape { row, expected, found: x.len() });
        }
    }
    Ok(())
}

impl<K: kernels::Kernel<[f64]>> Predictor for svm::SvcModel<K> {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(svm::SvcModel::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        svm::SvcModel::n_features(self)
    }

    fn name(&self) -> &'static str {
        "svc"
    }
}

impl<K: kernels::Kernel<[f64]>> Predictor for svm::SvrModel<K> {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(svm::SvrModel::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        svm::SvrModel::n_features(self)
    }

    fn name(&self) -> &'static str {
        "svr"
    }
}

impl<K: kernels::Kernel<[f64]>> Predictor for svm::OneClassModel<K> {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(self
            .decision_function_batch(xs)
            .into_iter()
            .map(|d| if d < 0.0 { -1.0 } else { 1.0 })
            .collect())
    }

    fn n_features(&self) -> usize {
        svm::OneClassModel::n_features(self)
    }

    fn name(&self) -> &'static str {
        "one_class_svm"
    }
}

impl Predictor for learn::linreg::LeastSquares {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.coefficients().len())?;
        Ok(learn::linreg::LeastSquares::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        self.coefficients().len()
    }

    fn name(&self) -> &'static str {
        "least_squares"
    }
}

impl Predictor for learn::linreg::Ridge {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.coefficients().len())?;
        Ok(learn::linreg::Ridge::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        self.coefficients().len()
    }

    fn name(&self) -> &'static str {
        "ridge"
    }
}

impl<K: kernels::Kernel<[f64]> + Clone> Predictor for learn::gp::GpRegressor<K> {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(learn::gp::GpRegressor::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        learn::gp::GpRegressor::n_features(self)
    }

    fn name(&self) -> &'static str {
        "gp_regressor"
    }
}

impl Predictor for learn::knn::KnnClassifier {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(learn::knn::KnnClassifier::predict_batch(self, xs).into_iter().map(f64::from).collect())
    }

    fn n_features(&self) -> usize {
        learn::knn::KnnClassifier::n_features(self)
    }

    fn name(&self) -> &'static str {
        "knn_classifier"
    }
}

impl Predictor for learn::knn::KnnRegressor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(learn::knn::KnnRegressor::predict_batch(self, xs))
    }

    fn n_features(&self) -> usize {
        learn::knn::KnnRegressor::n_features(self)
    }

    fn name(&self) -> &'static str {
        "knn_regressor"
    }
}

impl Predictor for learn::forest::RandomForestClassifier {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        check_batch(xs, self.n_features())?;
        Ok(learn::forest::RandomForestClassifier::predict_batch(self, xs)
            .into_iter()
            .map(f64::from)
            .collect())
    }

    fn n_features(&self) -> usize {
        learn::forest::RandomForestClassifier::n_features(self)
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }
}

/// One-stop imports for the learning toolkit: the trainer, parameter,
/// model, kernel, [`Predictor`], and [`Error`] types every example
/// starts from.
///
/// ```
/// use edm::prelude::*;
/// ```
pub mod prelude {
    pub use crate::{Error, Predictor};

    pub use crate::persist::{fit_family, load_predictor, LoadedModel, PersistentPredictor};

    pub use crate::kernels::{Kernel, LinearKernel, PolyKernel, RbfKernel};

    pub use crate::svm::{
        OneClassModel, OneClassParams, OneClassSvm, SvcModel, SvcParams, SvcTrainer, SvmError,
        SvrModel, SvrParams, SvrTrainer,
    };

    pub use crate::learn::forest::{ForestParams, RandomForestClassifier};
    pub use crate::learn::gp::GpRegressor;
    pub use crate::learn::knn::{KnnClassifier, KnnRegressor};
    pub use crate::learn::linreg::{LeastSquares, Ridge};
    pub use crate::learn::rules::cn2sd::{learn_rules, Cn2SdParams};
    pub use crate::learn::LearnError;

    pub use crate::novelty::{
        KnnDistanceDetector, LofDetector, MahalanobisDetector, NoveltyDetector, NoveltyError,
        OneClassSvmDetector,
    };
}
