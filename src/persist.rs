//! Save/load for every [`Predictor`](crate::Predictor) family — the
//! facade layer over [`edm_model_io`]'s binary container.
//!
//! Each family encodes its parts (support vectors, weights, trees, …)
//! into named container sections; floats travel bitwise
//! ([`f64::to_bits`]), so `save → load → predict` is bitwise identical
//! to predicting with the in-memory model (pinned by proptests in
//! `tests/persist_roundtrip.rs` for all nine families).
//!
//! The write side is the object-safe [`PersistentPredictor`] trait: a
//! `&dyn PersistentPredictor` saves itself with its family tag in the
//! header. The read side is [`load_predictor`], which dispatches on
//! that tag through a closed registry — no downcasting anywhere.
//! Kernel-generic models (`SvcModel<K>` …) reload as
//! `Model<AnyKernel>`, whose delegated `eval` is bitwise identical to
//! the concrete kernel's.

use std::io::{Read, Write};

use crate::kernels::{
    AnyKernel, Chi2Kernel, HistogramIntersectionKernel, LinearKernel, PolyKernel, RbfKernel,
    SigmoidKernel,
};
use crate::learn::forest::RandomForestClassifier;
use crate::learn::gp::GpRegressor;
use crate::learn::knn::{KnnClassifier, KnnRegressor};
use crate::learn::linreg::{LeastSquares, Ridge};
use crate::learn::tree::{DecisionTreeClassifier, FlatNode};
use crate::linalg::{Cholesky, Matrix};
use crate::model_io::{Dec, Enc, IoError, ModelReader, ModelWriter};
use crate::svm::{CacheStats, OneClassModel, SvcModel, SvrModel};
use crate::{Error, Predictor};

/// A [`Predictor`] that can serialize itself into the workspace's
/// versioned binary container and be reloaded by [`load_predictor`].
///
/// The trait is object-safe: `edm-serve` persists `dyn` registry
/// entries without knowing their concrete type. The family tag written
/// to the container header is [`Predictor::name`], which is also the
/// dispatch key [`load_predictor`] uses.
pub trait PersistentPredictor: Predictor {
    /// Serializes the model (header, checksummed sections, file CRC)
    /// to `w`.
    ///
    /// # Errors
    ///
    /// [`Error::ModelIo`] if encoding or the underlying writer fails.
    fn save(&self, w: &mut dyn Write) -> Result<(), Error>;
}

/// A predictor reloaded from a container, with the file metadata the
/// serve layer reports.
pub struct LoadedModel {
    /// The reconstructed model, ready to score.
    pub model: Box<dyn PersistentPredictor + Send + Sync>,
    /// The container's whole-file CRC-32 — a stable fingerprint of the
    /// saved bytes.
    pub checksum: u32,
    /// The schema version the file was written with.
    pub version: u16,
}

impl std::fmt::Debug for LoadedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedModel")
            .field("family", &self.model.name())
            .field("n_features", &self.model.n_features())
            .field("checksum", &self.checksum)
            .field("version", &self.version)
            .finish()
    }
}

fn malformed(detail: String) -> Error {
    Error::ModelIo(IoError::Malformed { detail })
}

// ---- kernel codec -------------------------------------------------------

fn put_kernel(e: &mut Enc, k: &AnyKernel) {
    e.put_str(k.tag());
    match k {
        AnyKernel::Linear(_) | AnyKernel::HistogramIntersection(_) => {}
        AnyKernel::Poly(p) => {
            e.put_u32(p.degree());
            e.put_f64(p.gamma());
            e.put_f64(p.coef0());
        }
        AnyKernel::Rbf(r) => e.put_f64(r.gamma()),
        AnyKernel::Sigmoid(s) => {
            e.put_f64(s.gamma());
            e.put_f64(s.coef0());
        }
        AnyKernel::Chi2(c) => e.put_f64(c.gamma()),
    }
}

fn get_kernel(d: &mut Dec<'_>) -> Result<AnyKernel, Error> {
    let tag = d.get_str().map_err(Error::ModelIo)?;
    let k = match tag.as_str() {
        "linear" => AnyKernel::Linear(LinearKernel::new()),
        "hist_intersection" => AnyKernel::HistogramIntersection(HistogramIntersectionKernel::new()),
        "poly" => {
            let degree = d.get_u32().map_err(Error::ModelIo)?;
            let gamma = d.get_f64().map_err(Error::ModelIo)?;
            let coef0 = d.get_f64().map_err(Error::ModelIo)?;
            if degree == 0 || !(gamma > 0.0) {
                return Err(malformed(format!(
                    "poly kernel with degree {degree}, gamma {gamma}"
                )));
            }
            AnyKernel::Poly(PolyKernel::new(degree, gamma, coef0))
        }
        "rbf" => {
            let gamma = d.get_f64().map_err(Error::ModelIo)?;
            if !(gamma > 0.0) {
                return Err(malformed(format!("rbf kernel with gamma {gamma}")));
            }
            AnyKernel::Rbf(RbfKernel::new(gamma))
        }
        "sigmoid" => {
            let gamma = d.get_f64().map_err(Error::ModelIo)?;
            let coef0 = d.get_f64().map_err(Error::ModelIo)?;
            if !(gamma > 0.0) {
                return Err(malformed(format!("sigmoid kernel with gamma {gamma}")));
            }
            AnyKernel::Sigmoid(SigmoidKernel::new(gamma, coef0))
        }
        "chi2" => {
            let gamma = d.get_f64().map_err(Error::ModelIo)?;
            if !(gamma > 0.0) {
                return Err(malformed(format!("chi2 kernel with gamma {gamma}")));
            }
            AnyKernel::Chi2(Chi2Kernel::new(gamma))
        }
        other => return Err(malformed(format!("unknown kernel tag {other:?}"))),
    };
    Ok(k)
}

fn put_cache_stats(e: &mut Enc, s: CacheStats) {
    e.put_u64(s.hits);
    e.put_u64(s.misses);
    e.put_u64(s.evictions);
}

fn get_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats, Error> {
    Ok(CacheStats {
        hits: d.get_u64().map_err(Error::ModelIo)?,
        misses: d.get_u64().map_err(Error::ModelIo)?,
        evictions: d.get_u64().map_err(Error::ModelIo)?,
    })
}

fn write_container(
    family: &str,
    sections: Vec<(&'static str, Enc)>,
    w: &mut dyn Write,
) -> Result<(), Error> {
    let _span = edm_trace::span("model_io.save");
    let mut mw = ModelWriter::new(family);
    for (name, enc) in sections {
        mw.add_section(name, enc);
    }
    mw.write_to(w).map_err(Error::ModelIo)
}

// ---- support-vector machines -------------------------------------------

fn put_sv_model(
    e: &mut Enc,
    n_features: usize,
    support: &[Vec<f64>],
    coef: &[f64],
    rho: f64,
    complexity: Option<f64>,
    iterations: usize,
    cache: CacheStats,
) {
    e.put_usize(n_features);
    e.put_rows(support);
    e.put_f64s(coef);
    e.put_f64(rho);
    if let Some(c) = complexity {
        e.put_f64(c);
    }
    e.put_usize(iterations);
    put_cache_stats(e, cache);
}

impl<K> PersistentPredictor for SvcModel<K>
where
    K: crate::kernels::Kernel<[f64]> + Clone,
    AnyKernel: From<K>,
{
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut ke = Enc::new();
        put_kernel(&mut ke, &AnyKernel::from(self.kernel().clone()));
        let mut me = Enc::new();
        put_sv_model(
            &mut me,
            Predictor::n_features(self),
            self.support_vectors(),
            self.coefficients(),
            self.rho(),
            Some(self.complexity()),
            self.iterations(),
            self.cache_stats(),
        );
        write_container("svc", vec![("kernel", ke), ("model", me)], w)
    }
}

fn load_svc(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut kd = r.section("kernel").map_err(Error::ModelIo)?;
    let kernel = get_kernel(&mut kd)?;
    kd.finish().map_err(Error::ModelIo)?;
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let n_features = d.get_usize().map_err(Error::ModelIo)?;
    let support = d.get_rows().map_err(Error::ModelIo)?;
    let coef = d.get_f64s().map_err(Error::ModelIo)?;
    let rho = d.get_f64().map_err(Error::ModelIo)?;
    let complexity = d.get_f64().map_err(Error::ModelIo)?;
    let iterations = d.get_usize().map_err(Error::ModelIo)?;
    let cache = get_cache_stats(&mut d)?;
    d.finish().map_err(Error::ModelIo)?;
    if support.len() != coef.len() {
        return Err(malformed("support/coefficient length mismatch".into()));
    }
    Ok(Box::new(SvcModel::from_parts(
        kernel, n_features, support, coef, rho, complexity, iterations, cache,
    )))
}

impl<K> PersistentPredictor for SvrModel<K>
where
    K: crate::kernels::Kernel<[f64]> + Clone,
    AnyKernel: From<K>,
{
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut ke = Enc::new();
        put_kernel(&mut ke, &AnyKernel::from(self.kernel().clone()));
        let mut me = Enc::new();
        put_sv_model(
            &mut me,
            Predictor::n_features(self),
            self.support_vectors(),
            self.coefficients(),
            self.rho(),
            Some(self.complexity()),
            self.iterations(),
            self.cache_stats(),
        );
        write_container("svr", vec![("kernel", ke), ("model", me)], w)
    }
}

fn load_svr(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut kd = r.section("kernel").map_err(Error::ModelIo)?;
    let kernel = get_kernel(&mut kd)?;
    kd.finish().map_err(Error::ModelIo)?;
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let n_features = d.get_usize().map_err(Error::ModelIo)?;
    let support = d.get_rows().map_err(Error::ModelIo)?;
    let coef = d.get_f64s().map_err(Error::ModelIo)?;
    let rho = d.get_f64().map_err(Error::ModelIo)?;
    let complexity = d.get_f64().map_err(Error::ModelIo)?;
    let iterations = d.get_usize().map_err(Error::ModelIo)?;
    let cache = get_cache_stats(&mut d)?;
    d.finish().map_err(Error::ModelIo)?;
    if support.len() != coef.len() {
        return Err(malformed("support/coefficient length mismatch".into()));
    }
    Ok(Box::new(SvrModel::from_parts(
        kernel, n_features, support, coef, rho, complexity, iterations, cache,
    )))
}

impl<K> PersistentPredictor for OneClassModel<K>
where
    K: crate::kernels::Kernel<[f64]> + Clone,
    AnyKernel: From<K>,
{
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut ke = Enc::new();
        put_kernel(&mut ke, &AnyKernel::from(self.kernel().clone()));
        let mut me = Enc::new();
        put_sv_model(
            &mut me,
            Predictor::n_features(self),
            self.support_vectors(),
            self.coefficients(),
            self.rho(),
            None,
            self.iterations(),
            self.cache_stats(),
        );
        write_container("one_class_svm", vec![("kernel", ke), ("model", me)], w)
    }
}

fn load_one_class(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut kd = r.section("kernel").map_err(Error::ModelIo)?;
    let kernel = get_kernel(&mut kd)?;
    kd.finish().map_err(Error::ModelIo)?;
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let n_features = d.get_usize().map_err(Error::ModelIo)?;
    let support = d.get_rows().map_err(Error::ModelIo)?;
    let coef = d.get_f64s().map_err(Error::ModelIo)?;
    let rho = d.get_f64().map_err(Error::ModelIo)?;
    let iterations = d.get_usize().map_err(Error::ModelIo)?;
    let cache = get_cache_stats(&mut d)?;
    d.finish().map_err(Error::ModelIo)?;
    if support.len() != coef.len() {
        return Err(malformed("support/coefficient length mismatch".into()));
    }
    Ok(Box::new(OneClassModel::from_parts(
        kernel, n_features, support, coef, rho, iterations, cache,
    )))
}

// ---- linear models ------------------------------------------------------

impl PersistentPredictor for LeastSquares {
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut e = Enc::new();
        e.put_f64s(self.coefficients());
        e.put_f64(self.intercept());
        write_container("least_squares", vec![("model", e)], w)
    }
}

fn load_least_squares(
    r: &ModelReader,
) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let coef = d.get_f64s().map_err(Error::ModelIo)?;
    let intercept = d.get_f64().map_err(Error::ModelIo)?;
    d.finish().map_err(Error::ModelIo)?;
    Ok(Box::new(LeastSquares::from_parts(coef, intercept)))
}

impl PersistentPredictor for Ridge {
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut e = Enc::new();
        e.put_f64s(self.coefficients());
        e.put_f64(self.intercept());
        e.put_f64(self.lambda());
        write_container("ridge", vec![("model", e)], w)
    }
}

fn load_ridge(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let coef = d.get_f64s().map_err(Error::ModelIo)?;
    let intercept = d.get_f64().map_err(Error::ModelIo)?;
    let lambda = d.get_f64().map_err(Error::ModelIo)?;
    d.finish().map_err(Error::ModelIo)?;
    Ok(Box::new(Ridge::from_parts(coef, intercept, lambda)))
}

// ---- Gaussian process ---------------------------------------------------

impl<K> PersistentPredictor for GpRegressor<K>
where
    K: crate::kernels::Kernel<[f64]> + Clone,
    AnyKernel: From<K>,
{
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut ke = Enc::new();
        put_kernel(&mut ke, &AnyKernel::from(self.kernel().clone()));
        let mut me = Enc::new();
        me.put_rows(self.training_x());
        me.put_f64s(self.alpha());
        me.put_f64(self.y_mean());
        me.put_f64(self.noise());
        let mut ce = Enc::new();
        let l = self.cholesky().l();
        let rows: Vec<Vec<f64>> = (0..l.rows()).map(|i| l.row(i).to_vec()).collect();
        ce.put_rows(&rows);
        write_container("gp_regressor", vec![("kernel", ke), ("model", me), ("chol", ce)], w)
    }
}

fn load_gp(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut kd = r.section("kernel").map_err(Error::ModelIo)?;
    let kernel = get_kernel(&mut kd)?;
    kd.finish().map_err(Error::ModelIo)?;
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let x = d.get_rows().map_err(Error::ModelIo)?;
    let alpha = d.get_f64s().map_err(Error::ModelIo)?;
    let y_mean = d.get_f64().map_err(Error::ModelIo)?;
    let noise = d.get_f64().map_err(Error::ModelIo)?;
    d.finish().map_err(Error::ModelIo)?;
    let mut cd = r.section("chol").map_err(Error::ModelIo)?;
    let l_rows = cd.get_rows().map_err(Error::ModelIo)?;
    cd.finish().map_err(Error::ModelIo)?;
    if x.len() != alpha.len() || l_rows.len() != x.len() {
        return Err(malformed("GP training-set/alpha/Cholesky size mismatch".into()));
    }
    if l_rows.iter().any(|row| row.len() != l_rows.len()) {
        return Err(malformed("GP Cholesky factor is not square".into()));
    }
    let chol = Cholesky::from_factor(Matrix::from_rows(&l_rows));
    Ok(Box::new(GpRegressor::from_parts(kernel, x, alpha, chol, y_mean, noise)))
}

// ---- nearest neighbors --------------------------------------------------

impl PersistentPredictor for KnnClassifier {
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut e = Enc::new();
        e.put_usize(self.k());
        e.put_rows(self.training_x());
        e.put_i32s(self.training_y());
        e.put_bool(self.is_weighted());
        write_container("knn_classifier", vec![("model", e)], w)
    }
}

fn load_knn_classifier(
    r: &ModelReader,
) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let k = d.get_usize().map_err(Error::ModelIo)?;
    let x = d.get_rows().map_err(Error::ModelIo)?;
    let y = d.get_i32s().map_err(Error::ModelIo)?;
    let weighted = d.get_bool().map_err(Error::ModelIo)?;
    d.finish().map_err(Error::ModelIo)?;
    if k == 0 || x.is_empty() || x.len() != y.len() {
        return Err(malformed("knn classifier with empty or mismatched training set".into()));
    }
    Ok(Box::new(KnnClassifier::from_parts(k, x, y, weighted)))
}

impl PersistentPredictor for KnnRegressor {
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut e = Enc::new();
        e.put_usize(self.k());
        e.put_rows(self.training_x());
        e.put_f64s(self.training_y());
        write_container("knn_regressor", vec![("model", e)], w)
    }
}

fn load_knn_regressor(
    r: &ModelReader,
) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let k = d.get_usize().map_err(Error::ModelIo)?;
    let x = d.get_rows().map_err(Error::ModelIo)?;
    let y = d.get_f64s().map_err(Error::ModelIo)?;
    d.finish().map_err(Error::ModelIo)?;
    if k == 0 || x.is_empty() || x.len() != y.len() {
        return Err(malformed("knn regressor with empty or mismatched training set".into()));
    }
    Ok(Box::new(KnnRegressor::from_parts(k, x, y)))
}

// ---- random forest ------------------------------------------------------

const NODE_LEAF: u8 = 0;
const NODE_SPLIT: u8 = 1;

fn put_tree(e: &mut Enc, tree: &DecisionTreeClassifier) {
    let nodes = tree.flatten();
    e.put_usize(nodes.len());
    for node in &nodes {
        match node {
            FlatNode::Leaf { value, counts } => {
                e.put_u8(NODE_LEAF);
                e.put_f64(*value);
                e.put_usize(counts.len());
                for &(label, count) in counts {
                    e.put_i32(label);
                    e.put_u64(count as u64);
                }
            }
            FlatNode::Split { feature, threshold } => {
                e.put_u8(NODE_SPLIT);
                e.put_usize(*feature);
                e.put_f64(*threshold);
            }
        }
    }
}

fn get_tree(d: &mut Dec<'_>) -> Result<DecisionTreeClassifier, Error> {
    let n = d.get_usize().map_err(Error::ModelIo)?;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = d.get_u8().map_err(Error::ModelIo)?;
        match tag {
            NODE_LEAF => {
                let value = d.get_f64().map_err(Error::ModelIo)?;
                let n_counts = d.get_usize().map_err(Error::ModelIo)?;
                let mut counts = Vec::with_capacity(n_counts.min(1 << 20));
                for _ in 0..n_counts {
                    let label = d.get_i32().map_err(Error::ModelIo)?;
                    let count = d.get_u64().map_err(Error::ModelIo)?;
                    counts.push((label, count as usize));
                }
                nodes.push(FlatNode::Leaf { value, counts });
            }
            NODE_SPLIT => {
                let feature = d.get_usize().map_err(Error::ModelIo)?;
                let threshold = d.get_f64().map_err(Error::ModelIo)?;
                nodes.push(FlatNode::Split { feature, threshold });
            }
            other => return Err(malformed(format!("unknown tree node tag {other}"))),
        }
    }
    DecisionTreeClassifier::from_flat(&nodes)
        .map_err(|e| malformed(format!("invalid flattened tree: {e}")))
}

impl PersistentPredictor for RandomForestClassifier {
    fn save(&self, w: &mut dyn Write) -> Result<(), Error> {
        let mut e = Enc::new();
        e.put_usize(Predictor::n_features(self));
        e.put_usize(self.trees().len());
        for tree in self.trees() {
            put_tree(&mut e, tree);
        }
        write_container("random_forest", vec![("model", e)], w)
    }
}

fn load_forest(r: &ModelReader) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    let mut d = r.section("model").map_err(Error::ModelIo)?;
    let n_features = d.get_usize().map_err(Error::ModelIo)?;
    let n_trees = d.get_usize().map_err(Error::ModelIo)?;
    let mut trees = Vec::with_capacity(n_trees.min(1 << 16));
    for _ in 0..n_trees {
        trees.push(get_tree(&mut d)?);
    }
    d.finish().map_err(Error::ModelIo)?;
    if trees.is_empty() {
        return Err(malformed("forest with zero trees".into()));
    }
    Ok(Box::new(RandomForestClassifier::from_parts(trees, n_features)))
}

// ---- registry-dispatched load ------------------------------------------

/// The family tags [`load_predictor`] dispatches on, in registry order —
/// exactly the nine [`Predictor`](crate::Predictor) families.
pub const FAMILIES: [&str; 9] = [
    "svc",
    "svr",
    "one_class_svm",
    "least_squares",
    "ridge",
    "gp_regressor",
    "knn_classifier",
    "knn_regressor",
    "random_forest",
];

/// Reloads a model saved by [`PersistentPredictor::save`], dispatching
/// on the family tag in the container header.
///
/// # Errors
///
/// [`Error::ModelIo`] for container-level failures (bad magic,
/// unsupported schema version, checksum mismatch, truncation, missing
/// sections, unknown family) or structurally impossible payloads.
pub fn load_predictor(r: &mut dyn Read) -> Result<LoadedModel, Error> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(|e| Error::ModelIo(IoError::Io(e)))?;
    load_predictor_from_bytes(&bytes)
}

/// In-memory variant of [`load_predictor`].
///
/// # Errors
///
/// As for [`load_predictor`].
pub fn load_predictor_from_bytes(bytes: &[u8]) -> Result<LoadedModel, Error> {
    let _span = edm_trace::span("model_io.load");
    let reader = ModelReader::from_bytes(bytes).map_err(Error::ModelIo)?;
    let model = match reader.family() {
        "svc" => load_svc(&reader)?,
        "svr" => load_svr(&reader)?,
        "one_class_svm" => load_one_class(&reader)?,
        "least_squares" => load_least_squares(&reader)?,
        "ridge" => load_ridge(&reader)?,
        "gp_regressor" => load_gp(&reader)?,
        "knn_classifier" => load_knn_classifier(&reader)?,
        "knn_regressor" => load_knn_regressor(&reader)?,
        "random_forest" => load_forest(&reader)?,
        other => {
            return Err(malformed(format!("unknown model family {other:?}")));
        }
    };
    Ok(LoadedModel { model, checksum: reader.checksum(), version: reader.version() })
}

/// Trains a fresh model of the named family with that family's default
/// hyperparameters — the refit primitive behind `edm-serve`'s
/// `POST /v1/models/{name}:train`.
///
/// Label conventions follow [`Predictor`](crate::Predictor):
/// classifiers cast `y` to integer labels (SVC wants `±1.0`), the
/// one-class family ignores `y` entirely, and regressors take `y` as
/// given. Training is deterministic (the forest uses a fixed seed).
///
/// # Errors
///
/// The underlying family's fit error, or [`Error::ModelIo`] with a
/// [`IoError::Malformed`] detail for an unknown family tag.
pub fn fit_family(
    family: &str,
    x: &[Vec<f64>],
    y: &[f64],
) -> Result<Box<dyn PersistentPredictor + Send + Sync>, Error> {
    use rand::SeedableRng;
    let knn_k = |n: usize| 5usize.min(n.max(1));
    match family {
        "svc" => {
            let m = crate::svm::SvcTrainer::new(crate::svm::SvcParams::default())
                .kernel(AnyKernel::from(RbfKernel::new(1.0)))
                .fit(x, y)?;
            Ok(Box::new(m))
        }
        "svr" => {
            let m = crate::svm::SvrTrainer::new(crate::svm::SvrParams::default())
                .kernel(AnyKernel::from(RbfKernel::new(1.0)))
                .fit(x, y)?;
            Ok(Box::new(m))
        }
        "one_class_svm" => {
            let m = crate::svm::OneClassSvm::new(crate::svm::OneClassParams::default())
                .kernel(AnyKernel::from(RbfKernel::new(1.0)))
                .fit(x)?;
            Ok(Box::new(m))
        }
        "least_squares" => Ok(Box::new(LeastSquares::fit(x, y)?)),
        "ridge" => Ok(Box::new(Ridge::fit(x, y, 1.0)?)),
        "gp_regressor" => {
            let m = GpRegressor::fit(x, y, AnyKernel::from(RbfKernel::new(1.0)), 1e-6)?;
            Ok(Box::new(m))
        }
        "knn_classifier" => {
            let labels: Vec<i32> = y.iter().map(|&v| v as i32).collect();
            Ok(Box::new(KnnClassifier::fit(knn_k(x.len()), x, &labels)?))
        }
        "knn_regressor" => Ok(Box::new(KnnRegressor::fit(knn_k(x.len()), x, y)?)),
        "random_forest" => {
            let labels: Vec<i32> = y.iter().map(|&v| v as i32).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            let m = RandomForestClassifier::fit(
                x,
                &labels,
                crate::learn::forest::ForestParams::default(),
                &mut rng,
            )?;
            Ok(Box::new(m))
        }
        other => Err(malformed(format!("unknown model family {other:?}"))),
    }
}
