//! Integration tests spanning substrates, learners, and methodology
//! flows — small-scale versions of each paper experiment, end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig3_kernel_trick_end_to_end() {
    use edm::kernels::{LinearKernel, PolyKernel};
    use edm::svm::{SvcParams, SvcTrainer};
    // Ring vs disc.
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..20 {
        let a = i as f64 * std::f64::consts::TAU / 20.0;
        x.push(vec![0.5 * a.cos(), 0.5 * a.sin()]);
        y.push(-1.0);
        x.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
        y.push(1.0);
    }
    let lin = SvcTrainer::new(SvcParams::default().with_c(10.0))
        .kernel(LinearKernel::new())
        .fit(&x, &y)
        .unwrap();
    let poly = SvcTrainer::new(SvcParams::default().with_c(10.0))
        .kernel(PolyKernel::homogeneous(2))
        .fit(&x, &y)
        .unwrap();
    let errors =
        |m: &dyn Fn(&[f64]) -> f64| x.iter().zip(&y).filter(|(xi, &yi)| m(xi) != yi).count();
    assert!(errors(&|p| lin.predict(p)) > 0);
    assert_eq!(errors(&|p| poly.predict(p)), 0);
}

#[test]
fn fig7_novelty_filter_saves_simulations() {
    use edm::core::noveltest::{run_stream, NovelSelectionConfig};
    use edm::verif::lsu::LsuSimulator;
    use edm::verif::template::MixtureTemplate;
    let template = MixtureTemplate::verification_plan();
    let mut rng = StdRng::seed_from_u64(71);
    let tests: Vec<_> = (0..600).map(|_| template.generate(&mut rng)).collect();
    let config = NovelSelectionConfig {
        n_tests: 600,
        nu: 0.2,
        ngram: 3,
        length_weight: 2.0,
        ..Default::default()
    };
    let result = run_stream(&tests, &LsuSimulator::default_config(), &config).unwrap();
    let reached = result.filtered_tests_to_max.expect("reaches max");
    assert!(reached <= result.baseline_tests_to_max);
}

#[test]
fn table1_refinement_round_trip() {
    use edm::core::template_refine::{run, RefinementConfig};
    use edm::verif::lsu::LsuSimulator;
    let config = RefinementConfig { tests_per_stage: vec![150, 60], ..Default::default() };
    let mut rng = StdRng::seed_from_u64(72);
    let stages = run(&LsuSimulator::default_config(), &config, &mut rng).unwrap();
    assert_eq!(stages.len(), 2);
    // The refined template differs from the original.
    assert_ne!(stages[0].template, stages[1].template);
}

#[test]
fn fig9_predictor_serializes_and_restores() {
    use edm::core::variability::{run, VariabilityConfig};
    use edm::litho::layout::LayoutGenerator;
    use edm::litho::variability::VariabilityAnalyzer;
    let config = VariabilityConfig { n_train: 80, n_test: 30, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(73);
    let generator = LayoutGenerator::default();
    let (_, predictor) =
        run(&generator, &VariabilityAnalyzer::default(), &config, &mut rng).unwrap();
    // Round-trip the deployable artifact through serde (C-SERDE).
    let json = serde_json::to_string(&predictor).unwrap();
    let restored: edm::core::variability::VariabilityPredictor =
        serde_json::from_str(&json).unwrap();
    let clip = generator.generate_random(&mut rng).1;
    assert_eq!(predictor.predict_bad(&clip), restored.predict_bad(&clip));
}

#[test]
fn fig10_dstc_is_specific_to_the_injected_layer() {
    use edm::core::dstc::{run, DstcConfig};
    use edm::timing::path::PathGenerator;
    use edm::timing::silicon::{SiliconModel, SystematicEffect};
    use edm::timing::sta::Timer;
    // Inject on layer 2-3 instead: rules should NOT implicate via45/56.
    let silicon = SiliconModel::default()
        .with_effect(SystematicEffect::ViaResistance { lower_layer: 2, extra_ps: 8.0 });
    let mut rng = StdRng::seed_from_u64(74);
    let config = DstcConfig { n_paths: 500, ..Default::default() };
    let result =
        run(&PathGenerator::default(), &Timer::default(), &silicon, &config, &mut rng).unwrap();
    assert!(result.implicates("via23"), "should find the layer-2-3 effect, got {:?}", result.rules);
}

#[test]
fn fig11_screen_catches_planted_defect() {
    use edm::core::returns::{run, ReturnScreeningConfig};
    let config = ReturnScreeningConfig {
        lot_size: 2_000,
        n_lots: 6,
        defect_rate: 2e-3,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(75);
    let result = run(&config, &mut rng).unwrap();
    assert!(result.n_baseline_returns > 0);
    assert!(result.baseline_return_percentiles.iter().all(|&p| p > 0.9));
}

#[test]
fn fig12_escapes_scale_with_tail_rate() {
    use edm::core::testcost::{run, TestCostConfig};
    let mut rng = StdRng::seed_from_u64(76);
    let low = run(
        &TestCostConfig {
            phase1_chips: 30_000,
            phase2_chips: 30_000,
            tail_rate: 1e-4,
            ..Default::default()
        },
        &mut rng,
    );
    let high = run(
        &TestCostConfig {
            phase1_chips: 30_000,
            phase2_chips: 30_000,
            tail_rate: 2e-3,
            ..Default::default()
        },
        &mut rng,
    );
    assert!(high.escapes > low.escapes, "high {} low {}", high.escapes, low.escapes);
}

#[test]
fn learners_agree_on_an_easy_problem() {
    use edm::learn::discriminant::{Covariance, DiscriminantAnalysis};
    use edm::learn::forest::{ForestParams, RandomForestClassifier};
    use edm::learn::knn::KnnClassifier;
    use edm::learn::logistic::{LogisticParams, LogisticRegression};
    use edm::learn::nbayes::GaussianNb;
    use edm::learn::tree::{DecisionTreeClassifier, TreeParams};
    let mut rng = StdRng::seed_from_u64(77);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..50 {
        x.push(vec![
            edm::linalg::sample::standard_normal(&mut rng) * 0.5,
            edm::linalg::sample::standard_normal(&mut rng) * 0.5,
        ]);
        y.push(0);
        x.push(vec![
            3.0 + edm::linalg::sample::standard_normal(&mut rng) * 0.5,
            3.0 + edm::linalg::sample::standard_normal(&mut rng) * 0.5,
        ]);
        y.push(1);
    }
    let probe_lo = [0.0, 0.0];
    let probe_hi = [3.0, 3.0];

    let knn = KnnClassifier::fit(5, &x, &y).unwrap();
    let nb = GaussianNb::fit(&x, &y).unwrap();
    let lda = DiscriminantAnalysis::fit(&x, &y, Covariance::Pooled).unwrap();
    let tree = DecisionTreeClassifier::fit(&x, &y, TreeParams::default()).unwrap();
    let forest = RandomForestClassifier::fit(&x, &y, ForestParams::default(), &mut rng).unwrap();
    let logit = LogisticRegression::fit(&x, &y, LogisticParams::default()).unwrap();

    for (name, lo, hi) in [
        ("knn", knn.predict(&probe_lo), knn.predict(&probe_hi)),
        ("nb", nb.predict(&probe_lo), nb.predict(&probe_hi)),
        ("lda", lda.predict(&probe_lo), lda.predict(&probe_hi)),
        ("tree", tree.predict(&probe_lo), tree.predict(&probe_hi)),
        ("forest", forest.predict(&probe_lo), forest.predict(&probe_hi)),
        ("logit", logit.predict(&probe_lo), logit.predict(&probe_hi)),
    ] {
        assert_eq!(lo, 0, "{name} misclassified the low probe");
        assert_eq!(hi, 1, "{name} misclassified the high probe");
    }
}

#[test]
fn five_fmax_regressors_from_the_paper_all_fit() {
    // Paper ref [20] compared kNN, LSF, regularized LSF, SVR, GP for
    // Fmax prediction; verify all five train on the same data and make
    // sensible predictions.
    use edm::kernels::RbfKernel;
    use edm::learn::gp::GpRegressor;
    use edm::learn::knn::KnnRegressor;
    use edm::learn::linreg::{LeastSquares, Ridge};
    use edm::svm::{SvrParams, SvrTrainer};
    let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.1]).collect();
    let y: Vec<f64> = x.iter().map(|v| 2.0 + 0.8 * v[0]).collect();
    let probe = [2.0];
    let want = 2.0 + 0.8 * 2.0;

    let knn = KnnRegressor::fit(3, &x, &y).unwrap();
    let lsf = LeastSquares::fit(&x, &y).unwrap();
    let ridge = Ridge::fit(&x, &y, 0.1).unwrap();
    let svr = SvrTrainer::new(SvrParams::default().with_c(100.0).with_epsilon(0.01))
        .kernel(RbfKernel::new(0.5))
        .fit(&x, &y)
        .unwrap();
    let gp = GpRegressor::fit(&x, &y, RbfKernel::new(0.5), 1e-4).unwrap();

    for (name, pred) in [
        ("knn", knn.predict(&probe)),
        ("lsf", lsf.predict(&probe)),
        ("ridge", ridge.predict(&probe)),
        ("svr", svr.predict(&probe)),
        ("gp", gp.predict(&probe)),
    ] {
        assert!((pred - want).abs() < 0.3, "{name} predicted {pred}, want ~{want}");
    }
}
