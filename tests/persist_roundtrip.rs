//! Persistence contract tests: `save → load → predict` is bitwise
//! identical for every model family, and corrupted containers fail
//! with typed [`edm::Error::ModelIo`] variants instead of garbage
//! models.

use edm::model_io::IoError;
use edm::{fit_family, load_predictor_from_bytes, Error, FAMILIES};
use proptest::prelude::*;

/// Training targets that satisfy every family: regressors see the
/// continuous values, classifier families (svc, knn_classifier,
/// random_forest) truncate them to i32 labels, so keeping them at
/// exactly ±1.0 gives two well-formed classes.
fn labels(n: usize) -> Vec<f64> {
    (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect()
}

fn save_to_vec(model: &dyn edm::PersistentPredictor) -> Vec<u8> {
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("in-memory save cannot fail");
    bytes
}

fn feature_rows(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, d), n)
}

proptest! {
    // Each case fits, saves, and reloads all nine families; a handful
    // of cases already exercises the full byte layout.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_predict_is_bitwise_identical_for_every_family(
        x in feature_rows(12, 3),
        probes in feature_rows(5, 3),
    ) {
        let y = labels(x.len());
        for family in FAMILIES {
            // Separate labels from features so svc always sees both
            // classes regardless of the sampled geometry.
            let model = match fit_family(family, &x, &y) {
                Ok(m) => m,
                // Degenerate samples (e.g. duplicate points) may
                // legitimately fail to train; the persistence contract
                // only covers models that exist.
                Err(_) => continue,
            };
            let bytes = save_to_vec(model.as_ref());
            let loaded = load_predictor_from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{family}: fresh container failed to load: {e}"));
            prop_assert_eq!(loaded.model.name(), model.name());
            prop_assert_eq!(loaded.model.n_features(), model.n_features());
            let direct = model.predict_batch(&probes).expect("direct predictions");
            let reloaded = loaded.model.predict_batch(&probes).expect("reloaded predictions");
            prop_assert_eq!(direct.len(), reloaded.len());
            for (i, (d, r)) in direct.iter().zip(&reloaded).enumerate() {
                prop_assert_eq!(
                    d.to_bits(),
                    r.to_bits(),
                    "{} changed probe {} across the round trip: {} vs {}",
                    family, i, d, r
                );
            }
            // Saving the reloaded model reproduces the container
            // byte-for-byte: the format has one canonical encoding.
            let again = save_to_vec(loaded.model.as_ref());
            prop_assert_eq!(&bytes, &again, "{} re-save diverged", family);
        }
    }
}

fn ridge_container() -> Vec<u8> {
    let x = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.5, 1.0], vec![1.0, 1.0]];
    let y = vec![0.0, 1.0, 1.0, 2.0];
    let model = fit_family("ridge", &x, &y).expect("ridge fits");
    save_to_vec(model.as_ref())
}

#[test]
fn truncated_container_is_a_typed_error() {
    let bytes = ridge_container();
    for keep in [bytes.len() - 1, bytes.len() / 2, 9, 3, 0] {
        match load_predictor_from_bytes(&bytes[..keep]) {
            Err(Error::ModelIo(
                IoError::Truncated { .. } | IoError::FileChecksum { .. },
            )) => {}
            other => panic!("truncation at {keep} bytes gave {other:?}"),
        }
    }
}

#[test]
fn flipped_byte_fails_the_file_checksum() {
    let mut bytes = ridge_container();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match load_predictor_from_bytes(&bytes) {
        Err(Error::ModelIo(IoError::FileChecksum { expected, found })) => {
            assert_ne!(expected, found);
        }
        other => panic!("corrupted payload gave {other:?}"),
    }
}

#[test]
fn future_schema_version_is_refused_up_front() {
    let mut bytes = ridge_container();
    // Bytes 4..6 hold the little-endian schema version, checked before
    // the file checksum so old builds explain new files crisply.
    let future = (edm::model_io::SCHEMA_VERSION + 1).to_le_bytes();
    bytes[4] = future[0];
    bytes[5] = future[1];
    match load_predictor_from_bytes(&bytes) {
        Err(Error::ModelIo(IoError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, edm::model_io::SCHEMA_VERSION + 1);
            assert_eq!(supported, edm::model_io::SCHEMA_VERSION);
        }
        other => panic!("future version gave {other:?}"),
    }
}

#[test]
fn wrong_magic_is_not_a_model_file() {
    let mut bytes = ridge_container();
    bytes[0] = b'X';
    match load_predictor_from_bytes(&bytes) {
        Err(Error::ModelIo(IoError::BadMagic { found })) => assert_eq!(&found, b"XDMM"),
        other => panic!("bad magic gave {other:?}"),
    }
}
