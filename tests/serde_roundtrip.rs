//! Serde round-trips of deployable artifacts (C-SERDE).
//!
//! A mining methodology that "adds value to the existing flow" must let
//! a trained model be saved by one job and loaded by another; every
//! model a flow deploys must survive JSON serialization bit-for-bit in
//! its predictions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        x.push(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
        y.push(-1.0);
        x.push(vec![2.0 + rng.gen::<f64>(), 2.0 + rng.gen::<f64>()]);
        y.push(1.0);
    }
    (x, y)
}

fn probe_points() -> Vec<Vec<f64>> {
    vec![vec![0.3, 0.4], vec![2.5, 2.2], vec![1.4, 1.4]]
}

#[test]
fn svc_model_round_trips() {
    use edm::kernels::RbfKernel;
    use edm::svm::{SvcModel, SvcParams, SvcTrainer};
    let (x, y) = blobs(30, 1);
    let model =
        SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(1.0)).fit(&x, &y).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: SvcModel<RbfKernel> = serde_json::from_str(&json).unwrap();
    for p in probe_points() {
        assert_eq!(model.decision_function(&p), restored.decision_function(&p));
    }
}

#[test]
fn one_class_model_round_trips() {
    use edm::kernels::RbfKernel;
    use edm::svm::{OneClassModel, OneClassParams, OneClassSvm};
    let (x, _) = blobs(30, 2);
    let model =
        OneClassSvm::new(OneClassParams::default()).kernel(RbfKernel::new(1.0)).fit(&x).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: OneClassModel<RbfKernel> = serde_json::from_str(&json).unwrap();
    for p in probe_points() {
        assert_eq!(model.decision_function(&p), restored.decision_function(&p));
    }
}

#[test]
fn tree_and_forest_round_trip() {
    use edm::learn::forest::{ForestParams, RandomForestClassifier};
    use edm::learn::tree::{DecisionTreeClassifier, TreeParams};
    let (x, yf) = blobs(30, 3);
    let y: Vec<i32> = yf.iter().map(|&v| i32::from(v > 0.0)).collect();
    let tree = DecisionTreeClassifier::fit(&x, &y, TreeParams::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let forest = RandomForestClassifier::fit(&x, &y, ForestParams::default(), &mut rng).unwrap();
    let t2: DecisionTreeClassifier =
        serde_json::from_str(&serde_json::to_string(&tree).unwrap()).unwrap();
    let f2: RandomForestClassifier =
        serde_json::from_str(&serde_json::to_string(&forest).unwrap()).unwrap();
    for p in probe_points() {
        assert_eq!(tree.predict(&p), t2.predict(&p));
        assert_eq!(forest.predict(&p), f2.predict(&p));
    }
}

#[test]
fn gp_and_rules_round_trip() {
    use edm::kernels::RbfKernel;
    use edm::learn::gp::GpRegressor;
    use edm::learn::rules::cn2sd::{learn_rules, Cn2SdParams};
    use edm::learn::rules::Rule;
    let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
    let y: Vec<f64> = x.iter().map(|v| v[0].sin()).collect();
    let gp = GpRegressor::fit(&x, &y, RbfKernel::new(1.0), 1e-4).unwrap();
    let gp2: GpRegressor<RbfKernel> =
        serde_json::from_str(&serde_json::to_string(&gp).unwrap()).unwrap();
    assert_eq!(gp.predict(&[1.7]), gp2.predict(&[1.7]));

    let labels: Vec<i32> = x.iter().map(|v| i32::from(v[0] > 3.0)).collect();
    let rules = learn_rules(&x, &labels, 1, Cn2SdParams::default()).unwrap();
    let rules2: Vec<Rule> = serde_json::from_str(&serde_json::to_string(&rules).unwrap()).unwrap();
    assert_eq!(rules, rules2);
}

#[test]
fn detectors_round_trip() {
    use edm::novelty::{KnnDistanceDetector, LofDetector, MahalanobisDetector, NoveltyDetector};
    let (x, _) = blobs(40, 5);
    let maha = MahalanobisDetector::fit(&x, 0.99).unwrap();
    let knn = KnnDistanceDetector::fit(&x, 5, 0.99).unwrap();
    let lof = LofDetector::fit(&x, 5, 0.99).unwrap();
    let maha2: MahalanobisDetector =
        serde_json::from_str(&serde_json::to_string(&maha).unwrap()).unwrap();
    let knn2: KnnDistanceDetector =
        serde_json::from_str(&serde_json::to_string(&knn).unwrap()).unwrap();
    let lof2: LofDetector = serde_json::from_str(&serde_json::to_string(&lof).unwrap()).unwrap();
    let p = [5.0, -3.0];
    assert_eq!(maha.score(&p), maha2.score(&p));
    assert_eq!(knn.score(&p), knn2.score(&p));
    assert_eq!(lof.score(&p), lof2.score(&p));
}

#[test]
fn substrate_artifacts_round_trip() {
    use edm::timing::path::PathGenerator;
    use edm::timing::path::TimingPath;
    use edm::verif::program::Program;
    use edm::verif::template::TestTemplate;
    let mut rng = StdRng::seed_from_u64(6);
    // Verification test program.
    let program = TestTemplate::default().generate(&mut rng);
    let p2: Program = serde_json::from_str(&serde_json::to_string(&program).unwrap()).unwrap();
    assert_eq!(program, p2);
    // Timing path.
    let path = PathGenerator::default().generate(&mut rng);
    let path2: TimingPath = serde_json::from_str(&serde_json::to_string(&path).unwrap()).unwrap();
    assert_eq!(path, path2);
    // Template itself (so a refined template can be checked in).
    let t = TestTemplate::default();
    let t2: TestTemplate = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(t, t2);
}

#[test]
fn transforms_round_trip() {
    use edm::transform::{Pca, Pls};
    let mut rng = StdRng::seed_from_u64(7);
    let x: Vec<Vec<f64>> =
        (0..30).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()]).collect();
    let pca = Pca::fit(&x, 2).unwrap();
    let pca2: Pca = serde_json::from_str(&serde_json::to_string(&pca).unwrap()).unwrap();
    assert_eq!(pca.transform(&x[3]), pca2.transform(&x[3]));

    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] + r[2]]).collect();
    let pls = Pls::fit(&x, &y, 2).unwrap();
    let pls2: Pls = serde_json::from_str(&serde_json::to_string(&pls).unwrap()).unwrap();
    assert_eq!(pls.predict(&x[5]), pls2.predict(&x[5]));
}
