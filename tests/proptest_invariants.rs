//! Property-based tests of cross-crate invariants.

use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

fn point_cloud(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(small_vec(d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- linalg ------------------------------------------------------

    #[test]
    fn cholesky_round_trips_gram_matrices(rows in point_cloud(6, 3)) {
        use edm::linalg::Matrix;
        let a = Matrix::from_rows(&rows);
        let mut g = a.gram();
        for i in 0..g.rows() {
            g[(i, i)] += 1e-6; // PSD -> PD
        }
        let chol = g.cholesky().unwrap();
        let recon = chol.l().mat_mul(&chol.l().transpose());
        prop_assert!((&recon - &g).max_abs() < 1e-8);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(rows in point_cloud(5, 5)) {
        use edm::linalg::Matrix;
        let a = Matrix::from_rows(&rows);
        let sym = (&a + &a.transpose()).scaled(0.5);
        let e = sym.symmetric_eigen().unwrap();
        prop_assert!((&e.reconstruct() - &sym).max_abs() < 1e-8);
        // trace = eigenvalue sum
        let tr: f64 = e.eigenvalues().iter().sum();
        prop_assert!((tr - sym.trace()).abs() < 1e-8);
    }

    #[test]
    fn lu_solve_is_consistent(rows in point_cloud(4, 4), b in small_vec(4)) {
        use edm::linalg::Matrix;
        let mut a = Matrix::from_rows(&rows);
        for i in 0..4 {
            a[(i, i)] += 20.0; // diagonal dominance -> invertible
        }
        let x = a.solve(&b).unwrap();
        let back = a.mat_vec(&x);
        for (bi, bb) in back.iter().zip(&b) {
            prop_assert!((bi - bb).abs() < 1e-7);
        }
    }

    // --- kernels -----------------------------------------------------

    #[test]
    fn rbf_gram_is_psd(pts in point_cloud(8, 3), gamma in 0.05..5.0f64) {
        use edm::kernels::{gram_matrix, is_psd, RbfKernel};
        let g = gram_matrix(&RbfKernel::new(gamma), &pts);
        prop_assert!(is_psd(&g, 1e-8));
    }

    #[test]
    fn hi_kernel_is_psd_on_nonneg(
        pts in proptest::collection::vec(proptest::collection::vec(0.0..5.0f64, 4), 8)
    ) {
        use edm::kernels::{gram_matrix, is_psd, HistogramIntersectionKernel};
        let g = gram_matrix(&HistogramIntersectionKernel::new(), &pts);
        prop_assert!(is_psd(&g, 1e-8));
    }

    #[test]
    fn spectrum_profile_matches_kernel(
        a in proptest::collection::vec(0u8..6, 0..24),
        b in proptest::collection::vec(0u8..6, 0..24),
    ) {
        use edm::kernels::{Kernel, SpectrumKernel, SpectrumProfile};
        let k = SpectrumKernel::weighted(3, 2.0);
        let pa = SpectrumProfile::build(&a, &k);
        let pb = SpectrumProfile::build(&b, &k);
        prop_assert!((pa.dot(&pb) - k.eval(&a[..], &b[..])).abs() < 1e-9);
        // cosine is symmetric and bounded
        let c = pa.cosine(&pb);
        prop_assert!((pb.cosine(&pa) - c).abs() < 1e-12);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
    }

    // --- data --------------------------------------------------------

    #[test]
    fn scaler_round_trip(pts in point_cloud(6, 3)) {
        use edm::data::{Dataset, StandardScaler};
        let ds = Dataset::unlabeled(pts.clone());
        let sc = StandardScaler::fit(&ds);
        for p in &pts {
            let back = sc.inverse_sample(&sc.transform_sample(p));
            for (a, b) in back.iter().zip(p) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn split_partitions_exactly(n in 4usize..40, frac in 0.1..0.9f64, seed in 0u64..100) {
        use edm::data::{train_test_split, Dataset, Target};
        use rand::SeedableRng;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ds = Dataset::from_rows(rows, Target::Values((0..n).map(|i| i as f64).collect()));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tt = train_test_split(&ds, frac, &mut rng);
        prop_assert_eq!(tt.train.n_samples() + tt.test.n_samples(), n);
        // every original value appears exactly once across the split
        let mut vals: Vec<f64> = tt
            .train
            .values()
            .unwrap()
            .iter()
            .chain(tt.test.values().unwrap())
            .copied()
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(*v, i as f64);
        }
    }

    // --- verif -------------------------------------------------------

    #[test]
    fn coverage_merge_is_monotone(seed in 0u64..200) {
        use edm::verif::lsu::LsuSimulator;
        use edm::verif::template::TestTemplate;
        use rand::SeedableRng;
        let t = TestTemplate::default();
        let sim = LsuSimulator::default_config();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut total = edm::verif::coverage::CoverageMap::new();
        let mut last = 0;
        for _ in 0..5 {
            let out = sim.simulate(&t.generate(&mut rng));
            total.merge(&out.coverage);
            prop_assert!(total.n_covered() >= last);
            last = total.n_covered();
        }
    }

    #[test]
    fn simulation_is_deterministic(seed in 0u64..200) {
        use edm::verif::lsu::LsuSimulator;
        use edm::verif::template::TestTemplate;
        use rand::SeedableRng;
        let t = TestTemplate::default();
        let sim = LsuSimulator::default_config();
        let p = t.generate(&mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(sim.simulate(&p), sim.simulate(&p));
    }

    // --- litho -------------------------------------------------------

    #[test]
    fn rasterizer_conserves_area(
        x0 in 0i32..900, y0 in 0i32..900, w in 1i32..120, h in 1i32..120
    ) {
        use edm::litho::geometry::Rect;
        use edm::litho::layout::LayoutClip;
        use edm::litho::raster::rasterize;
        let clip = LayoutClip::new(1024, vec![Rect::new(x0, y0, x0 + w, y0 + h)]);
        let g = rasterize(&clip, 64);
        let mass: f64 = g.as_slice().iter().sum::<f64>() * (16.0 * 16.0);
        let drawn: i64 = clip.rects().iter().map(Rect::area).sum();
        prop_assert!((mass - drawn as f64).abs() < 1e-6);
    }

    #[test]
    fn density_histogram_is_a_distribution(seed in 0u64..100) {
        use edm::litho::features::{density_histogram, HistogramSpec};
        use edm::litho::layout::LayoutGenerator;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clip = LayoutGenerator::default().generate_random(&mut rng).1;
        let h = density_histogram(&clip, &HistogramSpec::default());
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(h.iter().all(|&v| v >= 0.0));
    }

    // --- timing ------------------------------------------------------

    #[test]
    fn sta_delay_is_additive_and_positive(seed in 0u64..200) {
        use edm::timing::path::PathGenerator;
        use edm::timing::sta::Timer;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut path = PathGenerator::default().generate(&mut rng);
        let t = Timer::default();
        let full = t.path_delay(&path);
        prop_assert!(full > 0.0);
        // removing the last stage can only reduce the delay
        path.stages.pop();
        if !path.stages.is_empty() {
            prop_assert!(t.path_delay(&path) < full);
        }
    }

    // --- mfgtest -----------------------------------------------------

    #[test]
    fn healthy_yield_is_high(seed in 0u64..50) {
        use edm::mfgtest::product::ProductModel;
        use edm::mfgtest::testflow::TestFlow;
        use rand::SeedableRng;
        let p = ProductModel::automotive().with_defect_rate(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let lot = p.generate_lot(0, 400, &mut rng);
        let flow = TestFlow::new(p.spec_limits().to_vec());
        let (shipped, _) = flow.screen(&lot);
        prop_assert!(shipped.len() >= 390, "yield {}", shipped.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // --- svm: KKT feasibility of the SMO solutions ---------------------

    #[test]
    fn svc_dual_solution_is_feasible(seed in 0u64..500, c in 0.1..20.0f64) {
        use edm::kernels::{gram_matrix, RbfKernel};
        use edm::svm::{solve_svc, SvcParams};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..12 {
            x.push(vec![
                edm::linalg::sample::standard_normal(&mut rng),
                edm::linalg::sample::standard_normal(&mut rng),
            ]);
            y.push(-1.0);
            x.push(vec![
                1.5 + edm::linalg::sample::standard_normal(&mut rng),
                1.5 + edm::linalg::sample::standard_normal(&mut rng),
            ]);
            y.push(1.0);
        }
        let gram = gram_matrix(&RbfKernel::new(0.7), &x);
        let params = SvcParams { c, ..Default::default() };
        let (alpha, _, _) = solve_svc(&gram, &y, &params).unwrap();
        // Box constraints: 0 <= alpha_i <= C.
        for &a in &alpha {
            prop_assert!((-1e-9..=c + 1e-9).contains(&a), "alpha {a} outside [0, {c}]");
        }
        // Equality constraint: sum y_i alpha_i = 0.
        let balance: f64 = alpha.iter().zip(&y).map(|(&a, &yi)| a * yi).sum();
        prop_assert!(balance.abs() < 1e-6, "sum y*alpha = {balance}");
    }

    #[test]
    fn one_class_dual_solution_is_feasible(seed in 0u64..500, nu in 0.05..0.9f64) {
        use edm::kernels::{gram_matrix, RbfKernel};
        use edm::svm::{solve_one_class, OneClassParams};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..20)
            .map(|_| vec![
                edm::linalg::sample::standard_normal(&mut rng),
                edm::linalg::sample::standard_normal(&mut rng),
            ])
            .collect();
        let gram = gram_matrix(&RbfKernel::new(0.5), &x);
        let params = OneClassParams { nu, ..Default::default() };
        let (alpha, _, _) = solve_one_class(&gram, &params).unwrap();
        for &a in &alpha {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&a), "alpha {a} outside [0, 1]");
        }
        // Equality constraint: sum alpha = nu * n.
        let total: f64 = alpha.iter().sum();
        prop_assert!((total - nu * x.len() as f64).abs() < 1e-6, "sum alpha = {total}");
    }

    #[test]
    fn pls_beats_mean_predictor_on_linear_targets(seed in 0u64..100) {
        use edm::transform::Pls;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.gen::<f64>() * 3.0, rng.gen::<f64>() * 3.0])
            .collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] - r[1]]).collect();
        let pls = Pls::fit(&x, &y, 2).unwrap();
        let mean_y = edm::linalg::mean(&y.iter().map(|r| r[0]).collect::<Vec<_>>());
        let mut err_model = 0.0;
        let mut err_mean = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            err_model += (pls.predict(xi)[0] - yi[0]).powi(2);
            err_mean += (mean_y - yi[0]).powi(2);
        }
        prop_assert!(err_model < err_mean * 0.05, "model {err_model} vs mean {err_mean}");
    }

    #[test]
    fn wafer_yield_bounded_and_features_finite(seed in 0u64..100, rate in 0.0..0.5f64) {
        use edm::mfgtest::wafer::WaferMap;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = WaferMap::new(15).with_random_defects(rate, &mut rng);
        let y = w.yield_fraction();
        prop_assert!((0.0..=1.0).contains(&y));
        for f in w.spatial_features() {
            prop_assert!(f.is_finite());
        }
    }
}
