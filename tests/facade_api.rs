//! Contract tests for the facade surface: the [`edm::Error`] sum type
//! (one round-trip test per variant) and the object-safe
//! [`edm::Predictor`] trait every served model family implements.

use std::error::Error as StdError;

use edm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts the `From` round trip for one variant: the converted error
/// displays with its domain prefix, and `source()` leads back to the
/// exact per-crate error it was built from.
macro_rules! assert_round_trip {
    ($inner:expr, $variant:path, $prefix:literal, $ty:ty) => {{
        let inner = $inner;
        let wrapped: edm::Error = inner.clone().into();
        assert!(matches!(wrapped, $variant(_)), "wrong variant: {wrapped:?}");
        let shown = wrapped.to_string();
        assert!(
            shown.starts_with(concat!($prefix, ": ")),
            "display {shown:?} lacks the {} prefix",
            $prefix
        );
        assert!(shown.ends_with(&inner.to_string()), "display {shown:?} drops the inner message");
        let source = wrapped.source().expect("wrapped errors expose a source");
        let recovered = source.downcast_ref::<$ty>().expect("source downcasts to the inner type");
        assert_eq!(recovered, &inner, "round trip changed the error");
    }};
}

#[test]
fn svm_error_round_trips() {
    assert_round_trip!(SvmError::SingleClass, edm::Error::Svm, "svm", SvmError);
}

#[test]
fn learn_error_round_trips() {
    assert_round_trip!(
        LearnError::InvalidInput("empty".into()),
        edm::Error::Learn,
        "learn",
        LearnError
    );
}

#[test]
fn cluster_error_round_trips() {
    use edm::cluster::ClusterError;
    assert_round_trip!(
        ClusterError::InvalidInput("no points".into()),
        edm::Error::Cluster,
        "cluster",
        ClusterError
    );
}

#[test]
fn novelty_error_round_trips() {
    assert_round_trip!(
        NoveltyError::Numeric("singular covariance".into()),
        edm::Error::Novelty,
        "novelty",
        NoveltyError
    );
}

#[test]
fn transform_error_round_trips() {
    use edm::transform::TransformError;
    assert_round_trip!(
        TransformError::InvalidInput("ragged rows".into()),
        edm::Error::Transform,
        "transform",
        TransformError
    );
}

#[test]
fn linalg_error_round_trips() {
    use edm::linalg::LinalgError;
    assert_round_trip!(
        LinalgError::NotSquare { rows: 2, cols: 3 },
        edm::Error::Linalg,
        "linalg",
        LinalgError
    );
}

#[test]
fn csv_error_round_trips() {
    // `CsvError` wraps `std::io::Error`, so it is neither `Clone` nor
    // `PartialEq`; check the same properties by hand.
    use edm::data::csv::CsvError;
    let wrapped: edm::Error = CsvError::Empty.into();
    assert!(matches!(wrapped, edm::Error::Csv(_)));
    let shown = wrapped.to_string();
    assert!(shown.starts_with("csv: "), "display was {shown:?}");
    assert!(shown.ends_with(&CsvError::Empty.to_string()));
    let source = wrapped.source().expect("source present");
    assert!(
        matches!(source.downcast_ref::<CsvError>(), Some(CsvError::Empty)),
        "source should downcast to CsvError::Empty"
    );
}

#[test]
fn dataset_error_round_trips() {
    use edm::data::DatasetError;
    assert_round_trip!(
        DatasetError::TargetLengthMismatch { samples: 4, target: 3 },
        edm::Error::Dataset,
        "dataset",
        DatasetError
    );
}

#[test]
fn question_mark_crosses_crate_boundaries() {
    // The whole point of the sum type: `?` on different per-crate error
    // types inside one function returning `edm::Error`.
    fn flow() -> Result<(), edm::Error> {
        let x = vec![vec![0.0, 0.0], vec![0.1, 0.2], vec![0.9, 1.0], vec![1.0, 0.8]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let _svc = SvcTrainer::new(SvcParams::default()).fit(&x, &y)?; // SvmError
        let _ridge = Ridge::fit(&x, &y, 0.5)?; // LearnError
        Ok(())
    }
    flow().expect("both trainers succeed on clean input");
}

fn two_blobs() -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..10 {
        let t = i as f64 * 0.13;
        x.push(vec![t, t + 0.1]);
        y.push(-1.0);
        x.push(vec![t + 3.0, t + 2.9]);
        y.push(1.0);
    }
    (x, y)
}

#[test]
fn trait_object_scores_match_inherent_paths() {
    let (x, y) = two_blobs();
    let svc =
        SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(0.7)).fit(&x, &y).unwrap();
    let ridge = Ridge::fit(&x, &y, 0.1).unwrap();

    let served: Vec<&dyn Predictor> = vec![&svc, &ridge];
    assert_eq!(served[0].name(), "svc");
    assert_eq!(served[1].name(), "ridge");
    for p in &served {
        assert_eq!(p.n_features(), 2);
    }
    assert_eq!(served[0].predict_batch(&x).unwrap(), svc.predict_batch(&x));
    assert_eq!(served[1].predict_batch(&x).unwrap(), ridge.predict_batch(&x));
}

#[test]
fn shape_mismatch_is_an_error_not_a_panic() {
    let (x, y) = two_blobs();
    let ridge = Ridge::fit(&x, &y, 0.1).unwrap();
    let served: &dyn Predictor = &ridge;
    let bad = vec![vec![0.0, 0.0], vec![1.0, 2.0, 3.0]];
    match served.predict_batch(&bad) {
        Err(edm::Error::Shape { row, expected, found }) => {
            assert_eq!((row, expected, found), (1, 2, 3));
        }
        other => panic!("expected a Shape error, got {other:?}"),
    }
}

#[test]
fn one_class_predictor_uses_sign_convention() {
    let x: Vec<Vec<f64>> =
        (0..30).map(|i| vec![(i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1]).collect();
    let model = OneClassSvm::new(OneClassParams::default().with_nu(0.1))
        .kernel(RbfKernel::new(1.0))
        .fit(&x)
        .unwrap();
    let served: &dyn Predictor = &model;
    assert_eq!(served.name(), "one_class_svm");
    let probes = vec![vec![0.2, 0.2], vec![50.0, -40.0]];
    let out = served.predict_batch(&probes).unwrap();
    let novel = model.is_novel_batch(&probes);
    for (o, n) in out.iter().zip(&novel) {
        assert_eq!(*o, if *n { -1.0 } else { 1.0 });
    }
    assert_eq!(out[1], -1.0, "a far point must score as novel");
}

#[test]
fn classifier_predictors_return_integer_labels_as_f64() {
    let x = vec![vec![0.0, 0.0], vec![0.2, 0.1], vec![4.0, 4.0], vec![4.2, 4.1]];
    let labels = vec![3, 3, 9, 9];
    let knn = KnnClassifier::fit(1, &x, &labels).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let forest =
        RandomForestClassifier::fit(&x, &labels, ForestParams::default(), &mut rng).unwrap();
    for p in [&knn as &dyn Predictor, &forest] {
        let out = p.predict_batch(&x).unwrap();
        assert_eq!(out, vec![3.0, 3.0, 9.0, 9.0], "{} labels", p.name());
    }
}

#[test]
fn every_served_family_scores_through_the_trait() {
    let (x, y) = two_blobs();
    let labels: Vec<i32> = y.iter().map(|&v| v as i32).collect();
    let mut rng = StdRng::seed_from_u64(5);

    let svc = SvcTrainer::new(SvcParams::default()).fit(&x, &y).unwrap();
    let svr = SvrTrainer::new(SvrParams::default()).fit(&x, &y).unwrap();
    let one_class = OneClassSvm::new(OneClassParams::default().with_nu(0.2)).fit(&x).unwrap();
    let ols = LeastSquares::fit(&x, &y).unwrap();
    let ridge = Ridge::fit(&x, &y, 1.0).unwrap();
    let gp = GpRegressor::fit(&x, &y, RbfKernel::new(1.0), 1e-4).unwrap();
    let knn_c = KnnClassifier::fit(3, &x, &labels).unwrap();
    let knn_r = KnnRegressor::fit(3, &x, &y).unwrap();
    let forest =
        RandomForestClassifier::fit(&x, &labels, ForestParams::default(), &mut rng).unwrap();

    let served: Vec<&dyn Predictor> =
        vec![&svc, &svr, &one_class, &ols, &ridge, &gp, &knn_c, &knn_r, &forest];
    let names: Vec<&str> = served.iter().map(|p| p.name()).collect();
    assert_eq!(
        names,
        vec![
            "svc",
            "svr",
            "one_class_svm",
            "least_squares",
            "ridge",
            "gp_regressor",
            "knn_classifier",
            "knn_regressor",
            "random_forest"
        ]
    );
    for p in served {
        let out = p.predict_batch(&x).expect("clean batch scores");
        assert_eq!(out.len(), x.len(), "{}", p.name());
        assert!(out.iter().all(|v| v.is_finite()), "{}", p.name());
        assert_eq!(p.n_features(), 2, "{}", p.name());
    }
}
