//! Property tests of the telemetry layer's core contract: probes
//! observe, they never perturb. Training any learner with tracing at
//! `full` must produce a bitwise-identical model to training at `off`
//! — not epsilon-close, identical, because the probes only read values
//! the algorithms already computed and never reorder a floating-point
//! operation.
//!
//! The trace level is process-global, so a concurrently running test
//! may flip it mid-train. That is fine here — the property under test
//! is precisely that the level cannot affect results, so interference
//! can only make the test *more* demanding, never flaky.

use proptest::prelude::*;

use edm::trace::Level;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0..5.0f64, len)
}

fn point_cloud(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(small_vec(d), n)
}

/// Runs `f` twice — once at `off`, once at `full` — and returns both
/// results, leaving the level at `off` afterwards.
fn at_both_levels<T>(mut f: impl FnMut() -> T) -> (T, T) {
    edm::trace::set_level(Level::Off);
    let off = f();
    edm::trace::set_level(Level::Full);
    let full = f();
    edm::trace::set_level(Level::Off);
    (off, full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn svc_model_is_bitwise_identical_at_any_trace_level(
        pts in point_cloud(20, 3),
        gamma in 0.1..2.0f64,
    ) {
        use edm::kernels::RbfKernel;
        use edm::svm::{SvcParams, SvcTrainer};
        // Deterministic, class-balanced labels by x0 sign shift.
        let mut x = pts.clone();
        let y: Vec<f64> =
            (0..x.len()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        for (xi, &yi) in x.iter_mut().zip(&y) {
            xi[0] += yi * 2.0;
        }
        let trainer = SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(gamma));
        let (off, full) = at_both_levels(|| trainer.fit(&x, &y).unwrap());
        prop_assert_eq!(off.iterations(), full.iterations());
        prop_assert_eq!(off.rho().to_bits(), full.rho().to_bits());
        prop_assert_eq!(off.support_vectors(), full.support_vectors());
        for p in &x {
            prop_assert_eq!(
                off.decision_function(p).to_bits(),
                full.decision_function(p).to_bits()
            );
        }
    }

    #[test]
    fn svr_model_is_bitwise_identical_at_any_trace_level(
        pts in point_cloud(16, 2),
        gamma in 0.1..2.0f64,
    ) {
        use edm::kernels::RbfKernel;
        use edm::svm::{SvrParams, SvrTrainer};
        let y: Vec<f64> = pts.iter().map(|p| (p[0] * 0.7).sin() + p[1] * 0.1).collect();
        let trainer = SvrTrainer::new(SvrParams::default().with_c(5.0).with_epsilon(0.05))
            .kernel(RbfKernel::new(gamma));
        let (off, full) = at_both_levels(|| trainer.fit(&pts, &y).unwrap());
        prop_assert_eq!(off.iterations(), full.iterations());
        for p in &pts {
            prop_assert_eq!(off.predict(p).to_bits(), full.predict(p).to_bits());
        }
    }

    #[test]
    fn kmeans_result_is_bitwise_identical_at_any_trace_level(
        pts in point_cloud(24, 3),
        seed in 0u64..1024,
        k in 1usize..5,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (off, full) = at_both_levels(|| {
            edm::cluster::kmeans::kmeans(&pts, k, 50, &mut StdRng::seed_from_u64(seed)).unwrap()
        });
        // KMeansResult's PartialEq covers labels, centroids (exact f64
        // equality), inertia, and iteration count.
        prop_assert_eq!(off, full);
    }
}
